//! A small text format for describing mapping problems — the CLI's input.
//!
//! The format is line-oriented (`#` comments, blank lines ignored):
//!
//! ```text
//! # pipeline.pmap
//! procs 64
//! mem_per_proc 500000
//! replication on
//!
//! task colffts
//!   exec poly 0.0 1.573 0.0015
//!   memory 16000 1310720
//!
//! edge
//!   icom poly 0.0 0.04 0.0
//!   ecom poly 0.002 0.05 0.05 0.0 0.0
//!
//! task rowffts
//!   exec poly 0.0 1.573 0.0015
//!   memory 16000 1048576
//!   replicable no
//!   min_procs 2
//! ```
//!
//! `exec`/`icom` accept `poly C1 C2 C3` or `table p1:t1 p2:t2 …`;
//! `ecom` accepts `poly C1 C2 C3 C4 C5`. Tasks and edges must alternate
//! (a chain of k tasks has k−1 edges). No external parser dependency is
//! used: the grammar is three keyword forms.

use pipemap_chain::{ChainBuilder, Edge, Problem, Task};
use pipemap_model::{BinaryCost, MemoryReq, PolyEcom, PolyUnary, Tabulated, UnaryCost};

/// A parse failure, with the 1-based line number.
#[derive(Clone, Debug, PartialEq)]
pub struct SpecError {
    /// Line the error was detected on (0 = end of input).
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

fn err(line: usize, message: impl Into<String>) -> SpecError {
    SpecError {
        line,
        message: message.into(),
    }
}

fn parse_f64(line: usize, tok: &str, what: &str) -> Result<f64, SpecError> {
    tok.parse::<f64>()
        .map_err(|_| err(line, format!("expected a number for {what}, got '{tok}'")))
}

fn parse_usize(line: usize, tok: &str, what: &str) -> Result<usize, SpecError> {
    tok.parse::<usize>()
        .map_err(|_| err(line, format!("expected an integer for {what}, got '{tok}'")))
}

fn parse_unary(line: usize, toks: &[&str]) -> Result<UnaryCost, SpecError> {
    match toks.first().copied() {
        Some("poly") => {
            if toks.len() != 4 {
                return Err(err(line, "poly needs exactly 3 coefficients: C1 C2 C3"));
            }
            Ok(UnaryCost::Poly(PolyUnary::new(
                parse_f64(line, toks[1], "C1")?,
                parse_f64(line, toks[2], "C2")?,
                parse_f64(line, toks[3], "C3")?,
            )))
        }
        Some("table") => {
            if toks.len() < 2 {
                return Err(err(line, "table needs at least one p:t sample"));
            }
            let mut pts = Vec::new();
            for t in &toks[1..] {
                let (p, v) = t
                    .split_once(':')
                    .ok_or_else(|| err(line, format!("bad sample '{t}', expected p:t")))?;
                pts.push((
                    parse_usize(line, p, "sample processor count")?,
                    parse_f64(line, v, "sample time")?,
                ));
            }
            Ok(UnaryCost::Table(Tabulated::new(pts)))
        }
        Some("zero") => Ok(UnaryCost::Zero),
        other => Err(err(
            line,
            format!("expected 'poly', 'table' or 'zero', got {other:?}"),
        )),
    }
}

fn parse_ecom(line: usize, toks: &[&str]) -> Result<BinaryCost, SpecError> {
    match toks.first().copied() {
        Some("poly") => {
            if toks.len() != 6 {
                return Err(err(line, "ecom poly needs 5 coefficients: C1 C2 C3 C4 C5"));
            }
            let c: Result<Vec<f64>, _> = toks[1..]
                .iter()
                .map(|t| parse_f64(line, t, "coefficient"))
                .collect();
            let c = c?;
            Ok(BinaryCost::Poly(PolyEcom::new(
                c[0], c[1], c[2], c[3], c[4],
            )))
        }
        Some("zero") => Ok(BinaryCost::Zero),
        other => Err(err(
            line,
            format!("expected 'poly' or 'zero', got {other:?}"),
        )),
    }
}

enum Section {
    None,
    Task {
        line: usize,
        name: String,
        exec: Option<UnaryCost>,
        memory: MemoryReq,
        replicable: bool,
        min_procs: Option<usize>,
    },
    Edge {
        icom: UnaryCost,
        ecom: BinaryCost,
    },
}

/// Parse a problem spec.
pub fn parse_spec(text: &str) -> Result<Problem, SpecError> {
    let mut procs: Option<usize> = None;
    let mut mem: Option<f64> = None;
    let mut replication = true;
    let mut builder = ChainBuilder::new();
    let mut tasks = 0usize;
    let mut edges = 0usize;
    let mut section = Section::None;

    let flush = |section: &mut Section,
                 builder: &mut ChainBuilder,
                 tasks: &mut usize,
                 edges: &mut usize|
     -> Result<(), SpecError> {
        let taken = std::mem::replace(section, Section::None);
        match taken {
            Section::None => Ok(()),
            Section::Task {
                line,
                name,
                exec,
                memory,
                replicable,
                min_procs,
            } => {
                let exec =
                    exec.ok_or_else(|| err(line, format!("task '{name}' is missing 'exec'")))?;
                if *tasks != *edges {
                    return Err(err(
                        line,
                        "two tasks in a row: an 'edge' must separate them",
                    ));
                }
                let mut t = Task::new(name, exec).with_memory(memory);
                if !replicable {
                    t = t.not_replicable();
                }
                if let Some(m) = min_procs {
                    t = t.with_min_procs(m);
                }
                let b = std::mem::take(builder);
                *builder = b.task(t);
                *tasks += 1;
                Ok(())
            }
            Section::Edge { icom, ecom } => {
                if *tasks != *edges + 1 {
                    return Err(err(0, "an edge must follow a task"));
                }
                let b = std::mem::take(builder);
                *builder = b.edge(Edge::new(icom, ecom));
                *edges += 1;
                Ok(())
            }
        }
    };

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "procs" => {
                procs = Some(parse_usize(
                    lineno,
                    toks.get(1).copied().unwrap_or(""),
                    "procs",
                )?)
            }
            "mem_per_proc" => {
                mem = Some(parse_f64(
                    lineno,
                    toks.get(1).copied().unwrap_or(""),
                    "mem_per_proc",
                )?)
            }
            "replication" => {
                replication = match toks.get(1).copied() {
                    Some("on") | Some("yes") | Some("maximal") => true,
                    Some("off") | Some("no") => false,
                    other => return Err(err(lineno, format!("replication on/off, got {other:?}"))),
                }
            }
            "task" => {
                flush(&mut section, &mut builder, &mut tasks, &mut edges)?;
                let name = toks
                    .get(1)
                    .ok_or_else(|| err(lineno, "task needs a name"))?
                    .to_string();
                section = Section::Task {
                    line: lineno,
                    name,
                    exec: None,
                    memory: MemoryReq::none(),
                    replicable: true,
                    min_procs: None,
                };
            }
            "edge" => {
                flush(&mut section, &mut builder, &mut tasks, &mut edges)?;
                section = Section::Edge {
                    icom: UnaryCost::Zero,
                    ecom: BinaryCost::Zero,
                };
            }
            "exec" => match &mut section {
                Section::Task { exec, .. } => *exec = Some(parse_unary(lineno, &toks[1..])?),
                _ => return Err(err(lineno, "'exec' belongs inside a task")),
            },
            "memory" => match &mut section {
                Section::Task { memory, .. } => {
                    if toks.len() != 3 {
                        return Err(err(
                            lineno,
                            "memory needs: resident_bytes distributed_bytes",
                        ));
                    }
                    *memory = MemoryReq::new(
                        parse_f64(lineno, toks[1], "resident bytes")?,
                        parse_f64(lineno, toks[2], "distributed bytes")?,
                    );
                }
                _ => return Err(err(lineno, "'memory' belongs inside a task")),
            },
            "replicable" => match &mut section {
                Section::Task { replicable, .. } => {
                    *replicable = matches!(toks.get(1).copied(), Some("yes") | Some("true"));
                }
                _ => return Err(err(lineno, "'replicable' belongs inside a task")),
            },
            "min_procs" => match &mut section {
                Section::Task { min_procs, .. } => {
                    *min_procs = Some(parse_usize(
                        lineno,
                        toks.get(1).copied().unwrap_or(""),
                        "min_procs",
                    )?)
                }
                _ => return Err(err(lineno, "'min_procs' belongs inside a task")),
            },
            "icom" => match &mut section {
                Section::Edge { icom, .. } => *icom = parse_unary(lineno, &toks[1..])?,
                _ => return Err(err(lineno, "'icom' belongs inside an edge")),
            },
            "ecom" => match &mut section {
                Section::Edge { ecom, .. } => *ecom = parse_ecom(lineno, &toks[1..])?,
                _ => return Err(err(lineno, "'ecom' belongs inside an edge")),
            },
            other => return Err(err(lineno, format!("unknown directive '{other}'"))),
        }
    }
    flush(&mut section, &mut builder, &mut tasks, &mut edges)?;

    if tasks == 0 {
        return Err(err(0, "spec defines no tasks"));
    }
    if tasks != edges + 1 {
        return Err(err(0, "spec must end on a task (k tasks need k-1 edges)"));
    }
    let procs = procs.ok_or_else(|| err(0, "missing 'procs' directive"))?;
    let mem = mem.unwrap_or(f64::MAX / 4.0);
    let mut problem = Problem::new(builder.build(), procs, mem);
    if !replication {
        problem = problem.without_replication();
    }
    Ok(problem)
}

/// Render a problem back into the spec format, so fitted models can be
/// saved and reloaded. Only representable cost forms are supported:
/// polynomial and tabulated costs round-trip; a chain holding `Custom`
/// closures (e.g. a ground-truth machine model) cannot be serialised and
/// returns an error naming the offending task or edge.
pub fn render_spec(problem: &Problem) -> Result<String, SpecError> {
    use std::fmt::Write as _;
    fn unary_line(kind: &str, c: &UnaryCost, what: &str) -> Result<String, SpecError> {
        match c {
            UnaryCost::Zero => Ok(format!("  {kind} zero\n")),
            UnaryCost::Poly(p) => Ok(format!("  {kind} poly {} {} {}\n", p.c1, p.c2, p.c3)),
            UnaryCost::Table(t) => {
                let pts: Vec<String> = t.points().iter().map(|(p, v)| format!("{p}:{v}")).collect();
                Ok(format!("  {kind} table {}\n", pts.join(" ")))
            }
            other => Err(err(
                0,
                format!("{what}: cost form {other:?} cannot be written to a spec"),
            )),
        }
    }
    fn ecom_line(c: &BinaryCost, what: &str) -> Result<String, SpecError> {
        match c {
            BinaryCost::Zero => Ok("  ecom zero\n".to_string()),
            BinaryCost::Poly(p) => Ok(format!(
                "  ecom poly {} {} {} {} {}\n",
                p.c1, p.c2, p.c3, p.c4, p.c5
            )),
            other => Err(err(
                0,
                format!("{what}: cost form {other:?} cannot be written to a spec"),
            )),
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "# generated by pipemap (render_spec)");
    let _ = writeln!(out, "procs {}", problem.total_procs);
    let _ = writeln!(out, "mem_per_proc {}", problem.mem_per_proc);
    let _ = writeln!(
        out,
        "replication {}",
        if problem.replication == pipemap_chain::ReplicationPolicy::Maximal {
            "on"
        } else {
            "off"
        }
    );
    let chain = &problem.chain;
    for i in 0..chain.len() {
        let t = chain.task(i);
        let _ = writeln!(out, "\ntask {}", t.name.replace(char::is_whitespace, "_"));
        out.push_str(&unary_line("exec", &t.exec, &format!("task {}", t.name))?);
        if t.memory != MemoryReq::none() {
            let _ = writeln!(
                out,
                "  memory {} {}",
                t.memory.resident_bytes, t.memory.distributed_bytes
            );
        }
        if !t.replicable {
            let _ = writeln!(out, "  replicable no");
        }
        if let Some(m) = t.min_procs {
            let _ = writeln!(out, "  min_procs {m}");
        }
        if i + 1 < chain.len() {
            let e = chain.edge(i);
            let _ = writeln!(out, "\nedge");
            out.push_str(&unary_line("icom", &e.icom, &format!("edge {i}"))?);
            out.push_str(&ecom_line(&e.ecom, &format!("edge {i}"))?);
        }
    }
    Ok(out)
}

/// Parse a mapping string of the form `0-0:8x3,1-2:10x4` — a
/// comma-separated list of modules `first-last:replicas x procs`
/// (whitespace around tokens allowed; a singleton range may be written as
/// a single index: `0:8x3`).
pub fn parse_mapping(text: &str) -> Result<pipemap_chain::Mapping, SpecError> {
    let mut modules = Vec::new();
    for (i, part) in text.split(',').enumerate() {
        let part = part.trim();
        let (range, alloc) = part
            .split_once(':')
            .ok_or_else(|| err(i + 1, format!("module '{part}' needs range:alloc")))?;
        let (first, last) = match range.trim().split_once('-') {
            Some((a, b)) => (
                parse_usize(i + 1, a.trim(), "first task")?,
                parse_usize(i + 1, b.trim(), "last task")?,
            ),
            None => {
                let t = parse_usize(i + 1, range.trim(), "task index")?;
                (t, t)
            }
        };
        let (r, p) = alloc.trim().split_once(['x', 'X']).ok_or_else(|| {
            err(
                i + 1,
                format!("allocation '{alloc}' needs replicas x procs"),
            )
        })?;
        let replicas = parse_usize(i + 1, r.trim(), "replicas")?;
        let procs = parse_usize(i + 1, p.trim(), "procs")?;
        if replicas == 0 || procs == 0 || last < first {
            return Err(err(i + 1, format!("invalid module '{part}'")));
        }
        modules.push(pipemap_chain::ModuleAssignment::new(
            first, last, replicas, procs,
        ));
    }
    if modules.is_empty() {
        return Err(err(0, "empty mapping"));
    }
    Ok(pipemap_chain::Mapping::new(modules))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# demo pipeline
procs 16
mem_per_proc 1000
replication off

task front
  exec poly 0.1 2.0 0.0
  memory 10 500

edge
  icom zero
  ecom poly 0.01 0.1 0.1 0 0

task back
  exec table 1:3.0 4:0.9 16:0.4
  replicable no
  min_procs 2
";

    #[test]
    fn parses_a_full_spec() {
        let p = parse_spec(GOOD).unwrap();
        assert_eq!(p.total_procs, 16);
        assert_eq!(p.mem_per_proc, 1000.0);
        assert_eq!(p.num_tasks(), 2);
        assert_eq!(p.chain.task(0).name, "front");
        assert!((p.chain.task(0).exec.eval(2) - 1.1).abs() < 1e-12);
        assert_eq!(p.task_floor(0), Some(1));
        // Table interpolation for the second task.
        assert!((p.chain.task(1).exec.eval(4) - 0.9).abs() < 1e-12);
        assert!(!p.chain.task(1).replicable);
        assert_eq!(p.chain.task(1).min_procs, Some(2));
        assert_eq!(p.replication, pipemap_chain::ReplicationPolicy::Disabled);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let p = parse_spec("procs 4\n\n# hi\ntask t\n exec zero # inline\n").unwrap();
        assert_eq!(p.num_tasks(), 1);
    }

    #[test]
    fn missing_exec_is_an_error() {
        let e = parse_spec("procs 4\ntask t\n").unwrap_err();
        assert!(e.message.contains("missing 'exec'"), "{e}");
    }

    #[test]
    fn adjacent_tasks_rejected() {
        let e = parse_spec("procs 4\ntask a\n exec zero\ntask b\n exec zero\n").unwrap_err();
        assert!(e.message.contains("edge"), "{e}");
    }

    #[test]
    fn trailing_edge_rejected() {
        let e = parse_spec("procs 4\ntask a\n exec zero\nedge\n").unwrap_err();
        assert!(e.message.contains("end on a task"), "{e}");
    }

    #[test]
    fn missing_procs_rejected() {
        let e = parse_spec("task a\n exec zero\n").unwrap_err();
        assert!(e.message.contains("procs"), "{e}");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_spec("procs 4\ntask t\n exec poly a b c\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn unknown_directive_rejected() {
        let e = parse_spec("procs 4\nfrobnicate\n").unwrap_err();
        assert!(e.message.contains("frobnicate"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn mapping_string_roundtrip() {
        let m = parse_mapping("0-0:8x3, 1-2:10x4").unwrap();
        assert_eq!(m.num_modules(), 2);
        assert_eq!(m.modules[0].replicas, 8);
        assert_eq!(m.modules[0].procs, 3);
        assert_eq!(m.modules[1].first, 1);
        assert_eq!(m.modules[1].last, 2);
        // Singleton shorthand.
        let m = parse_mapping("0:1x16").unwrap();
        assert_eq!(m.modules[0].first, 0);
        assert_eq!(m.modules[0].last, 0);
    }

    #[test]
    fn mapping_string_roundtrips_compact_form() {
        let m = pipemap_chain::Mapping::new(vec![
            pipemap_chain::ModuleAssignment::new(0, 1, 4, 6),
            pipemap_chain::ModuleAssignment::new(2, 2, 1, 16),
        ]);
        let parsed = parse_mapping(&m.to_compact_string()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn mapping_string_errors() {
        assert!(parse_mapping("").is_err());
        assert!(parse_mapping("0-0").is_err());
        assert!(parse_mapping("0-0:3").is_err());
        assert!(parse_mapping("2-1:1x4").is_err());
        assert!(parse_mapping("0-0:0x4").is_err());
    }

    #[test]
    fn render_spec_roundtrips() {
        let original = parse_spec(GOOD).unwrap();
        let text = render_spec(&original).unwrap();
        let reparsed = parse_spec(&text).unwrap();
        assert_eq!(reparsed.total_procs, original.total_procs);
        assert_eq!(reparsed.mem_per_proc, original.mem_per_proc);
        assert_eq!(reparsed.replication, original.replication);
        assert_eq!(reparsed.num_tasks(), original.num_tasks());
        for i in 0..original.num_tasks() {
            for procs in 1..=16 {
                let a = original.chain.task(i).exec.eval(procs);
                let b = reparsed.chain.task(i).exec.eval(procs);
                assert!((a - b).abs() < 1e-9, "task {i} at {procs}: {a} vs {b}");
            }
            assert_eq!(
                original.chain.task(i).replicable,
                reparsed.chain.task(i).replicable
            );
            assert_eq!(
                original.chain.task(i).min_procs,
                reparsed.chain.task(i).min_procs
            );
        }
        for e in 0..original.num_tasks() - 1 {
            for s in 1..=8 {
                for r in 1..=8 {
                    let a = original.chain.edge(e).ecom.eval(s, r);
                    let b = reparsed.chain.edge(e).ecom.eval(s, r);
                    assert!((a - b).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn render_spec_rejects_custom_costs() {
        let chain = pipemap_chain::ChainBuilder::new()
            .task(Task::new(
                "closure",
                pipemap_model::UnaryCost::custom(|p| 1.0 / p as f64),
            ))
            .build();
        let p = Problem::new(chain, 4, 1e9);
        let e = render_spec(&p).unwrap_err();
        assert!(e.message.contains("cannot be written"), "{e}");
    }

    #[test]
    fn parsed_problem_is_solvable() {
        let p = parse_spec(GOOD).unwrap();
        let sol = pipemap_core::dp_mapping(&p).unwrap();
        assert!(sol.throughput > 0.0);
    }
}
