//! Machine-readable (JSON) reports for the CLI.
//!
//! Where [`render`](crate::render) formats results for a terminal, this
//! module emits the same information as structured JSON built on
//! `pipemap-obs`'s [`Value`], so scripts can consume `pipemap map
//! --report json` and `pipemap demo <app> --metrics` without scraping
//! text. The demo report cross-references three layers:
//!
//! * the **model**'s per-stage predicted response times and throughput
//!   capacity (fitted polynomials),
//! * the **simulator**'s measured per-stage busy / receive / send time
//!   and utilisation from an activity trace, and
//! * the **solvers**' counters and wall-time histograms from the global
//!   metrics registry (DP cells, lookups, prunings, …).

use pipemap_chain::{module_response, Mapping, Problem};
use pipemap_core::Solution;
use pipemap_obs::{MetricsSnapshot, Value};
use pipemap_sim::stats::percent_difference;
use pipemap_sim::{ActivityKind, SimResult, Summary, Trace};

use crate::mapper::MappingReport;
use crate::render::render_mapping;

/// A mapping as JSON: the compact string plus one object per module.
pub fn mapping_json(problem: &Problem, mapping: &Mapping) -> Value {
    let modules: Vec<Value> = mapping
        .modules
        .iter()
        .map(|m| {
            let names: Vec<&str> = (m.first..=m.last)
                .map(|i| problem.chain.task(i).name.as_str())
                .collect();
            let mut o = Value::object();
            o.set("tasks", names.join("+"));
            o.set("first", m.first);
            o.set("last", m.last);
            o.set("replicas", m.replicas);
            o.set("procs", m.procs);
            o
        })
        .collect();
    let mut o = Value::object();
    o.set("compact", mapping.to_compact_string());
    o.set("rendered", render_mapping(problem, mapping));
    o.set("modules", modules);
    o
}

/// A solver [`Solution`] as JSON (mapping plus model throughput).
pub fn solution_json(problem: &Problem, solution: &Solution) -> Value {
    let mut o = Value::object();
    o.set("mapping", mapping_json(problem, &solution.mapping));
    o.set("throughput", solution.throughput);
    o
}

/// A sample [`Summary`] as JSON, including the percentiles.
pub fn summary_json(s: &Summary) -> Value {
    let mut o = Value::object();
    o.set("count", s.count);
    o.set("mean", s.mean);
    o.set("std_dev", s.std_dev);
    o.set("min", s.min);
    o.set("max", s.max);
    o.set("p50", s.p50);
    o.set("p90", s.p90);
    o.set("p99", s.p99);
    o
}

/// Report for `pipemap map --report json`: the spec's dimensions, every
/// solution found (labelled), and the solver metrics gathered while
/// finding them.
pub fn map_report_json(
    file: &str,
    problem: &Problem,
    solutions: &[(&str, Solution)],
    metrics: Option<&MetricsSnapshot>,
) -> Value {
    let mut sols = Value::object();
    for (label, s) in solutions {
        sols.set(*label, solution_json(problem, s));
    }
    let mut o = Value::object();
    o.set("spec", file);
    o.set("tasks", problem.num_tasks());
    o.set("procs", problem.total_procs);
    o.set("mem_per_proc", problem.mem_per_proc);
    o.set("solutions", sols);
    if let Some(m) = metrics {
        o.set("solver", m.to_json());
    }
    o
}

/// Report for `pipemap simulate --report json`: the run's configuration
/// and the simulator's measurements. Everything here is virtual-time —
/// no wall clocks — so the report is byte-identical across runs with the
/// same spec, mapping, and seed.
#[allow(clippy::too_many_arguments)]
pub fn simulate_report_json(
    file: &str,
    problem: &Problem,
    mapping: &Mapping,
    datasets: usize,
    noise: Option<f64>,
    seed: u64,
    analytic: f64,
    result: &SimResult,
) -> Value {
    let mut cfg = Value::object();
    cfg.set("datasets", datasets);
    match noise {
        Some(s) => cfg.set("noise", s),
        None => cfg.set("noise", Value::Null),
    };
    cfg.set("seed", seed);

    let mut o = Value::object();
    o.set("spec", file);
    o.set("mapping", mapping_json(problem, mapping));
    o.set("config", cfg);
    o.set("analytic_throughput", analytic);
    o.set("simulated_throughput", result.throughput);
    o.set("latency", summary_json(&result.latency));
    o.set("utilization", result.utilization.clone());
    o
}

/// Per-stage activity sums extracted from a simulation trace.
#[derive(Clone, Copy, Debug, Default)]
struct StageActivity {
    recv: f64,
    exec: f64,
    send: f64,
    datasets: usize,
}

fn stage_activity(trace: &Trace, module: usize) -> StageActivity {
    let mut a = StageActivity::default();
    for act in trace.activities.iter().filter(|x| x.module == module) {
        let d = act.end - act.start;
        match act.kind {
            ActivityKind::Recv => a.recv += d,
            ActivityKind::Exec => {
                a.exec += d;
                a.datasets += 1;
            }
            ActivityKind::Send => a.send += d,
        }
    }
    a
}

/// Per-stage predicted-versus-measured table for a traced simulation of
/// `mapping`. Predictions come from the fitted model's
/// [`module_response`]; measurements from the trace: a module's measured
/// response per data set is its total busy time divided by the data sets
/// it processed, and its throughput capacity is `replicas / response`.
/// `throughput_error_pct` is the paper's percent-difference convention
/// (measured vs predicted) applied per stage.
pub fn stage_metrics_json(fitted: &Problem, mapping: &Mapping, traced: &SimResult) -> Vec<Value> {
    let trace = traced.trace.as_ref();
    mapping
        .modules
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let names: Vec<&str> = (m.first..=m.last)
                .map(|t| fitted.chain.task(t).name.as_str())
                .collect();
            let predicted = module_response(&fitted.chain, mapping, i);
            let predicted_capacity = if predicted.effective() > 0.0 {
                1.0 / predicted.effective()
            } else {
                f64::INFINITY
            };

            let mut o = Value::object();
            o.set("module", i);
            o.set("tasks", names.join("+"));
            o.set("replicas", m.replicas);
            o.set("procs", m.procs);

            let mut pred = Value::object();
            pred.set("recv_s", predicted.incoming);
            pred.set("exec_s", predicted.exec);
            pred.set("send_s", predicted.outgoing);
            pred.set("response_s", predicted.total());
            pred.set("throughput", predicted_capacity);
            o.set("predicted", pred);

            if let Some(trace) = trace {
                let act = stage_activity(trace, i);
                let busy = act.recv + act.exec + act.send;
                let response = if act.datasets > 0 {
                    busy / act.datasets as f64
                } else {
                    0.0
                };
                let capacity = if response > 0.0 {
                    m.replicas as f64 / response
                } else {
                    f64::INFINITY
                };
                let mut meas = Value::object();
                meas.set("datasets", act.datasets);
                meas.set("recv_wait_s", act.recv);
                meas.set("exec_s", act.exec);
                meas.set("send_wait_s", act.send);
                meas.set("response_s", response);
                meas.set("throughput", capacity);
                meas.set(
                    "utilization",
                    traced.utilization.get(i).copied().unwrap_or(0.0),
                );
                o.set("measured", meas);
                o.set(
                    "throughput_error_pct",
                    percent_difference(capacity, predicted_capacity),
                );
            }
            o
        })
        .collect()
}

/// Report for `pipemap demo <app> --metrics`: fit quality, every
/// solution, end-to-end predicted/measured throughput, latency
/// percentiles, the per-stage table of [`stage_metrics_json`], and the
/// solver metrics snapshot.
///
/// `traced` must be a simulation of `report.chosen()` on the
/// ground-truth costs with trace collection enabled.
pub fn demo_report_json(
    report: &MappingReport,
    traced: &SimResult,
    metrics: Option<&MetricsSnapshot>,
) -> Value {
    let mut machine = Value::object();
    machine.set("rows", report.machine.rows);
    machine.set("cols", report.machine.cols);
    machine.set("mode", report.machine.mode.label());

    let mut fit = Value::object();
    fit.set(
        "mean_rel_error_pct",
        report.fit_accuracy.mean_rel_error * 100.0,
    );
    fit.set(
        "max_rel_error_pct",
        report.fit_accuracy.max_rel_error * 100.0,
    );
    fit.set("points", report.fit_accuracy.points);

    let mut sols = Value::object();
    if let Some(opt) = &report.optimal {
        sols.set("optimal", solution_json(&report.fitted, opt));
    }
    sols.set("greedy", solution_json(&report.fitted, &report.greedy));
    if let Some((m, thr)) = &report.feasible {
        let mut f = Value::object();
        f.set("mapping", mapping_json(&report.fitted, m));
        f.set("throughput", *thr);
        sols.set("feasible", f);
    }

    let mut thr = Value::object();
    thr.set("predicted", report.predicted_throughput);
    thr.set("measured", report.measured.throughput);
    thr.set("percent_difference", report.percent_difference());
    thr.set("data_parallel", report.data_parallel.throughput);
    thr.set(
        "speedup_over_data_parallel",
        report.optimal_over_data_parallel(),
    );
    thr.set("measured_runs", summary_json(&report.measured_spread));

    let mut o = Value::object();
    o.set("app", report.app.clone());
    o.set("machine", machine);
    o.set("fit", fit);
    o.set("solutions", sols);
    o.set("chosen", mapping_json(&report.fitted, report.chosen()));
    o.set("throughput", thr);
    o.set("latency", summary_json(&report.measured.latency));
    o.set(
        "stages",
        stage_metrics_json(&report.fitted, report.chosen(), traced),
    );
    if let Some(m) = metrics {
        o.set("solver", m.to_json());
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{auto_map, MapperOptions};
    use pipemap_chain::{ChainBuilder, Edge, ModuleAssignment, Task};
    use pipemap_machine::workload::TaskWorkload;
    use pipemap_machine::{AppWorkload, EdgeWorkload, MachineConfig};
    use pipemap_model::{MemoryReq, PolyEcom, PolyUnary};
    use pipemap_sim::{simulate, SimConfig};

    fn two_stage() -> (Problem, Mapping) {
        let chain = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::perfectly_parallel(2.0)))
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(0.5, 0.0, 0.0, 0.0, 0.0),
            ))
            .task(Task::new("b", PolyUnary::perfectly_parallel(4.0)))
            .build();
        let problem = Problem::new(chain, 4, 1e9);
        let mapping = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 1, 2),
            ModuleAssignment::new(1, 1, 1, 2),
        ]);
        (problem, mapping)
    }

    #[test]
    fn mapping_json_has_one_object_per_module() {
        let (problem, mapping) = two_stage();
        let v = mapping_json(&problem, &mapping);
        let modules = v.get("modules").unwrap().as_array().unwrap();
        assert_eq!(modules.len(), 2);
        assert_eq!(modules[0].get("tasks").and_then(Value::as_str), Some("a"));
        assert!(v.get("compact").and_then(Value::as_str).is_some());
        // Round-trips through the parser.
        assert!(Value::parse(&v.to_json()).is_ok());
    }

    #[test]
    fn stage_metrics_compare_prediction_with_trace() {
        let (problem, mapping) = two_stage();
        let traced = simulate(
            &problem.chain,
            &mapping,
            &SimConfig::with_datasets(20).with_trace(),
        );
        let stages = stage_metrics_json(&problem, &mapping, &traced);
        assert_eq!(stages.len(), 2);
        for s in &stages {
            let meas = s.get("measured").expect("trace present");
            assert_eq!(meas.get("datasets").and_then(Value::as_f64), Some(20.0));
            // Noise-free run: per-stage prediction is near-exact once the
            // pipeline reaches steady state (small edge effects allowed).
            let err = s
                .get("throughput_error_pct")
                .and_then(Value::as_f64)
                .unwrap();
            assert!(err.abs() < 5.0, "stage error {err}%");
            let u = meas.get("utilization").and_then(Value::as_f64).unwrap();
            assert!((0.0..=1.0 + 1e-9).contains(&u));
        }
    }

    #[test]
    fn demo_report_is_valid_json_with_expected_keys() {
        let mut a = TaskWorkload::parallel("front", 4e6, 32);
        a.memory = MemoryReq::new(4e3, 0.6e6);
        let mut b = TaskWorkload::parallel("back", 6e6, 32);
        b.memory = MemoryReq::new(4e3, 0.8e6);
        let app = AppWorkload::new("small", vec![a, b], vec![EdgeWorkload::all_to_all(2e5)]);
        let machine = MachineConfig::iwarp_message().with_geometry(4, 4);
        let report = auto_map(&app, &machine, &MapperOptions::exact()).unwrap();
        let traced = simulate(
            &report.truth.chain,
            report.chosen(),
            &SimConfig::with_datasets(50).with_trace(),
        );
        let registry = pipemap_obs::Registry::new();
        let v = demo_report_json(&report, &traced, Some(&registry.snapshot()));
        let parsed = Value::parse(&v.to_json_pretty()).expect("valid JSON");
        for key in [
            "app",
            "machine",
            "fit",
            "solutions",
            "chosen",
            "throughput",
            "latency",
            "stages",
            "solver",
        ] {
            assert!(parsed.get(key).is_some(), "missing key {key}");
        }
        let lat = parsed.get("latency").unwrap();
        assert!(lat.get("p50").and_then(Value::as_f64).is_some());
        assert!(lat.get("p99").and_then(Value::as_f64).is_some());
        let stages = parsed.get("stages").unwrap().as_array().unwrap();
        assert_eq!(stages.len(), report.chosen().num_modules());
    }
}
