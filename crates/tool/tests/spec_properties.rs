//! Property tests of the spec format: any polynomial problem round-trips
//! through render → parse with its semantics intact.

use pipemap_chain::{ChainBuilder, Edge, Problem, Task};
use pipemap_model::{MemoryReq, PolyEcom, PolyUnary};
use pipemap_tool::{parse_spec, render_spec};
use proptest::prelude::*;

fn arb_problem() -> impl Strategy<Value = Problem> {
    (
        prop::collection::vec(
            (
                0.0..5.0f64,
                0.0..10.0f64,
                0.0..0.5f64,
                0.0..1000.0f64,
                0.0..10000.0f64,
                any::<bool>(),
                prop::option::of(1..4usize),
            ),
            1..5,
        ),
        prop::collection::vec(
            (
                0.0..1.0f64,
                0.0..2.0f64,
                0.0..2.0f64,
                0.0..0.1f64,
                0.0..0.1f64,
            ),
            4,
        ),
        2..64usize,
        any::<bool>(),
    )
        .prop_map(|(tasks, edges, procs, replication)| {
            let k = tasks.len();
            let mut b = ChainBuilder::new();
            for (i, (c1, c2, c3, res, dist, rep, min_p)) in tasks.into_iter().enumerate() {
                let mut t = Task::new(format!("t{i}"), PolyUnary::new(c1, c2, c3))
                    .with_memory(MemoryReq::new(res, dist));
                if !rep {
                    t = t.not_replicable();
                }
                if let Some(m) = min_p {
                    t = t.with_min_procs(m);
                }
                b = b.task(t);
                if i + 1 < k {
                    let e = edges[i];
                    b = b.edge(Edge::new(
                        PolyUnary::new(e.0, e.1, 0.0),
                        PolyEcom::new(e.0, e.1, e.2, e.3, e.4),
                    ));
                }
            }
            let mut p = Problem::new(b.build(), procs, 1e6);
            if !replication {
                p = p.without_replication();
            }
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spec_roundtrip_preserves_semantics(problem in arb_problem()) {
        let text = render_spec(&problem).expect("polynomial problems serialise");
        let back = parse_spec(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(back.total_procs, problem.total_procs);
        prop_assert_eq!(back.replication, problem.replication);
        prop_assert_eq!(back.num_tasks(), problem.num_tasks());
        for i in 0..problem.num_tasks() {
            for p in [1usize, 2, 5, 17, 63] {
                let a = problem.chain.task(i).exec.eval(p);
                let b = back.chain.task(i).exec.eval(p);
                prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
            }
            prop_assert_eq!(problem.task_floor(i), back.task_floor(i));
        }
        for e in 0..problem.num_tasks() - 1 {
            for (s, r) in [(1usize, 5usize), (7, 2), (13, 13)] {
                let a = problem.chain.edge(e).ecom.eval(s, r);
                let b = back.chain.edge(e).ecom.eval(s, r);
                prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
            }
            for p in [1usize, 9, 33] {
                let a = problem.chain.edge(e).icom.eval(p);
                let b = back.chain.edge(e).icom.eval(p);
                prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
            }
        }
    }
}
