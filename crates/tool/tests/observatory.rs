//! Acceptance test for the live model observatory: a deterministic DES
//! run whose stage costs are perturbed mid-stream must (a) emit a
//! `bottleneck_change` event as the governing stage moves, (b) refit the
//! online `f_exec` to within 10% of the perturbed truth, and (c) be
//! localised by `pipemap doctor --model online` — both through the
//! library and through the CLI binary on the recorded journey log.

use std::process::Command;

use pipemap_chain::{ChainBuilder, Edge, Mapping, ModuleAssignment, Task, TaskChain};
use pipemap_doctor::{JourneyLog, ModelPrediction};
use pipemap_model::{PolyEcom, PolyUnary};
use pipemap_obs::{EventKind, EventLog, JourneyCollector, JourneyConfig, Value};
use pipemap_profile::OnlineConfig;
use pipemap_sim::{simulate_des, SimConfig};
use pipemap_tool::online_drift;

fn pipemap() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pipemap"))
}

/// Three stages whose exec costs at the mapping below are 2.5 / 2.2 /
/// 2.1 s — stage 0 governs until the perturbation bites.
fn chain3() -> TaskChain {
    ChainBuilder::new()
        .task(Task::new("a", PolyUnary::new(0.5, 4.0, 0.0)))
        .edge(Edge::new(
            PolyUnary::new(0.1, 0.0, 0.0),
            PolyEcom::new(0.3, 0.5, 0.5, 0.0, 0.0),
        ))
        .task(Task::new("b", PolyUnary::new(0.2, 6.0, 0.0)))
        .edge(Edge::new(
            PolyUnary::new(0.0, 0.0, 0.0),
            PolyEcom::new(0.2, 0.25, 0.25, 0.0, 0.0),
        ))
        .task(Task::new("c", PolyUnary::new(0.1, 2.0, 0.0)))
        .build()
}

fn mapping3() -> Mapping {
    Mapping::new(vec![
        ModuleAssignment::new(0, 0, 1, 2),
        ModuleAssignment::new(1, 1, 1, 3),
        ModuleAssignment::new(2, 2, 1, 1),
    ])
}

#[test]
fn perturbed_des_run_is_tracked_and_localised_end_to_end() {
    // Deterministic (no noise) DES run: stage 1's exec cost triples
    // from data set 100 of 300, moving the bottleneck from stage 0
    // (2.5 s) to stage 1 (6.6 s).
    let journeys = JourneyCollector::new(JourneyConfig::default());
    let events = EventLog::default();
    let cfg = SimConfig::with_datasets(300)
        .with_perturbation(100, 1, 3.0)
        .with_journeys(journeys.clone())
        .with_events(events.clone());
    let _ = simulate_des(&chain3(), &mapping3(), &cfg);

    // (a) The event log saw the bottleneck move to the perturbed stage.
    let evs = events.snapshot();
    let change = evs
        .iter()
        .find(|e| e.kind == EventKind::BottleneckChange)
        .unwrap_or_else(|| panic!("no bottleneck_change in {evs:?}"));
    assert_eq!(change.stage, Some(1), "bottleneck moved to the slow stage");

    // (b) The online refit converges on the perturbed truth. The log
    // embeds the model the mapping was solved with (the unperturbed
    // service means), so the residual reads "live vs deployed model".
    let log = JourneyLog {
        source: "des-acceptance".to_string(),
        sample: 1,
        dropped: 0,
        model: Some(ModelPrediction::from_measured(
            &["a".to_string(), "b".to_string(), "c".to_string()],
            &[1, 1, 1],
            &[2.5, 2.2, 2.1],
        )),
        events: journeys.snapshot(),
    };
    let online_cfg = OnlineConfig {
        half_life: 16.0,
        ..OnlineConfig::default()
    };
    let d = online_drift(&log, online_cfg, 0.10).expect("service observations present");
    assert_eq!(d.drifted, Some(1), "drift localised to the perturbed stage");
    let fitted = d.stages[1].fitted_s;
    let truth = 3.0 * 2.2;
    assert!(
        (fitted - truth).abs() / truth < 0.10,
        "online-fitted f_exec {fitted:.3}s not within 10% of perturbed truth {truth:.3}s"
    );
    // Unperturbed stages stay inside the threshold.
    assert!(d.stages[0].residual < 0.10, "{:?}", d.stages[0]);
    assert!(d.stages[2].residual < 0.10, "{:?}", d.stages[2]);

    // (c) The doctor CLI reaches the same verdict from the recorded
    // log, in both report formats.
    let dir = std::env::temp_dir().join("pipemap-observatory-acceptance");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("perturbed.jsonl");
    std::fs::write(&path, log.to_jsonl()).unwrap();

    let out = pipemap()
        .arg("doctor")
        .arg(&path)
        .args(["--model", "online", "--report", "json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Value::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    let online = doc
        .get("online")
        .expect("doctor JSON carries the online section");
    assert_eq!(
        online.get("drifted_stage").and_then(Value::as_f64),
        Some(1.0),
        "{}",
        online.to_json_pretty()
    );
    let stages = online.get("stages").and_then(Value::as_array).unwrap();
    assert_eq!(stages.len(), 3);

    let out = pipemap()
        .arg("doctor")
        .arg(&path)
        .args(["--model", "online"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("drift localised: stage 1"),
        "human report names the drifted stage:\n{text}"
    );
}
