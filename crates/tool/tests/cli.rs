//! End-to-end tests of the `pipemap` command-line binary.

use std::io::Write;
use std::process::Command;

fn pipemap() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pipemap"))
}

fn write_spec(dir: &std::path::Path, name: &str, body: &str) -> std::path::PathBuf {
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(body.as_bytes()).unwrap();
    path
}

const SPEC: &str = "\
procs 16
mem_per_proc 1e9

task front
  exec poly 0.02 1.0 0.001

edge
  icom poly 0.0 0.02 0.0
  ecom poly 0.01 0.05 0.05 0 0

task back
  exec poly 0.05 0.5 0.0
  replicable no
";

#[test]
fn help_prints_usage() {
    let out = pipemap().arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("simulate"));
}

#[test]
fn template_is_parseable_by_map() {
    let dir = std::env::temp_dir().join("pipemap-cli-test-template");
    std::fs::create_dir_all(&dir).unwrap();
    let tmpl = pipemap().arg("template").output().unwrap();
    assert!(tmpl.status.success());
    let spec = write_spec(&dir, "tmpl.pmap", &String::from_utf8_lossy(&tmpl.stdout));
    let out = pipemap()
        .arg("map")
        .arg(&spec)
        .arg("--greedy-only")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("greedy"), "{text}");
    assert!(text.contains("data sets/s"));
}

#[test]
fn map_solves_a_spec() {
    let dir = std::env::temp_dir().join("pipemap-cli-test-map");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = write_spec(&dir, "p.pmap", SPEC);
    let out = pipemap()
        .arg("map")
        .arg(&spec)
        .arg("--min-procs")
        .arg("1.0")
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("optimal"), "{text}");
    assert!(text.contains("procs"), "{text}");
}

#[test]
fn simulate_runs_a_mapping() {
    let dir = std::env::temp_dir().join("pipemap-cli-test-sim");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = write_spec(&dir, "p.pmap", SPEC);
    let out = pipemap()
        .arg("simulate")
        .arg(&spec)
        .arg("0-0:2x4,1-1:1x8")
        .arg("--datasets")
        .arg("120")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("analytic"), "{text}");
    assert!(text.contains("simulated"), "{text}");
    assert!(text.contains("utilisation"));
}

#[test]
fn simulate_rejects_invalid_mappings() {
    let dir = std::env::temp_dir().join("pipemap-cli-test-bad");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = write_spec(&dir, "p.pmap", SPEC);
    // The non-replicable `back` task must not be replicated.
    let out = pipemap()
        .arg("simulate")
        .arg(&spec)
        .arg("0-0:2x4,1-1:4x2")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid"), "{err}");
}

#[test]
fn bad_spec_reports_line_numbers() {
    let dir = std::env::temp_dir().join("pipemap-cli-test-err");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = write_spec(&dir, "bad.pmap", "procs 4\ntask t\n  exec poly oops 1 1\n");
    let out = pipemap().arg("map").arg(&spec).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 3"), "{err}");
}

#[test]
fn unknown_command_fails() {
    let out = pipemap().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

/// `simulate --report json` is virtual-time only, so a seeded run is
/// byte-for-byte reproducible — and a different seed actually changes
/// the noise draw.
#[test]
fn simulate_json_report_is_deterministic_per_seed() {
    let dir = std::env::temp_dir().join("pipemap-cli-test-determinism");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = write_spec(&dir, "p.pmap", SPEC);
    let run = |seed: &str| {
        let out = pipemap()
            .arg("simulate")
            .arg(&spec)
            .arg("0-0:2x4,1-1:1x8")
            .args(["--datasets", "80", "--noise", "0.08", "--seed", seed])
            .args(["--report", "json"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let a = run("42");
    let b = run("42");
    assert_eq!(a, b, "same seed must reproduce the report byte-for-byte");
    let c = run("43");
    assert_ne!(a, c, "a different seed must change the noisy measurements");
    // And the output is valid JSON with the advertised fields.
    let doc = pipemap_obs::Value::parse(&String::from_utf8_lossy(&a)).unwrap();
    assert_eq!(
        doc.get("config")
            .and_then(|c| c.get("seed"))
            .and_then(pipemap_obs::Value::as_f64),
        Some(42.0)
    );
    assert!(doc.get("simulated_throughput").is_some());
    assert!(doc.get("latency").and_then(|l| l.get("p99")).is_some());
}

fn http_get(addr: &str, path: &str) -> String {
    use std::io::Read;
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    buf
}

/// `--serve` exposes live OpenMetrics over HTTP while the command runs:
/// the body must carry at least one counter, gauge, and histogram family
/// and end with the OpenMetrics EOF marker.
#[test]
fn simulate_serve_exposes_openmetrics_over_http() {
    use std::io::BufRead;
    let dir = std::env::temp_dir().join("pipemap-cli-test-serve");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = write_spec(&dir, "p.pmap", SPEC);
    let mut child = pipemap()
        .arg("simulate")
        .arg(&spec)
        .arg("0-0:2x4,1-1:1x8")
        .args(["--datasets", "200", "--noise", "0.05"])
        .args(["--serve", "127.0.0.1:0", "--hold", "20"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    // The bound address (port 0 = ephemeral) is announced on stderr.
    let mut stderr = std::io::BufReader::new(child.stderr.take().unwrap());
    let mut line = String::new();
    stderr.read_line(&mut line).unwrap();
    let addr = line
        .split("http://")
        .nth(1)
        .and_then(|s| s.split("/metrics").next())
        .unwrap_or_else(|| panic!("no address in {line:?}"))
        .to_string();

    // Poll until the run has published its counters (the simulation is
    // fast; the server holds the registry open afterwards).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let body = loop {
        let resp = http_get(&addr, "/metrics");
        if resp.contains("pipemap_sim_datasets_completed_total") {
            break resp;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "metrics never appeared; last response: {resp}"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    };
    assert!(body.contains("200 OK"), "{body}");
    assert!(body.contains("application/openmetrics-text"), "{body}");
    for family in ["counter", "gauge", "histogram"] {
        assert!(
            body.lines()
                .any(|l| l.starts_with("# TYPE ") && l.ends_with(family)),
            "no {family} family in:\n{body}"
        );
    }
    assert!(body.contains("# EOF"), "{body}");

    // The JSON snapshot and the flight-recorder dump are also served.
    let snap = http_get(&addr, "/snapshot.json");
    assert!(snap.contains("200 OK"), "{snap}");
    assert!(snap.contains("sim.datasets.completed"), "{snap}");
    let rec = http_get(&addr, "/recorder.jsonl");
    assert!(rec.contains("200 OK"), "{rec}");
    assert!(rec.contains("\"t_s\""), "{rec}");

    child.kill().unwrap();
    let _ = child.wait();
}

fn bench_doc(dir: &std::path::Path, name: &str, entries: &[(&str, f64)]) -> std::path::PathBuf {
    let mut metrics = String::new();
    for (i, (metric, value)) in entries.iter().enumerate() {
        if i > 0 {
            metrics.push(',');
        }
        metrics.push_str(&format!(
            "\"{metric}\": {{\"value\": {value}, \"unit\": \"s\", \"direction\": \"lower\", \"slack\": 0.0}}"
        ));
    }
    let body = format!(
        "{{\"schema\": \"pipemap-bench/v1\", \"git_sha\": \"test\", \"metrics\": {{{metrics}}}}}"
    );
    write_spec(dir, name, &body)
}

/// `bench --compare` must exit nonzero when the current run regresses
/// past the threshold, stay green within it, and honour `--warn-only`.
#[test]
fn bench_compare_exits_nonzero_on_regression() {
    let dir = std::env::temp_dir().join("pipemap-cli-test-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = bench_doc(&dir, "base.json", &[("suite.wall_s", 1.0)]);
    let regressed = bench_doc(&dir, "bad.json", &[("suite.wall_s", 2.0)]);
    let fine = bench_doc(&dir, "fine.json", &[("suite.wall_s", 1.05)]);

    let compare = |current: &std::path::Path, extra: &[&str]| {
        pipemap()
            .arg("bench")
            .arg("--compare")
            .arg(&baseline)
            .arg("--against")
            .arg(current)
            .args(extra)
            .output()
            .unwrap()
    };

    let out = compare(&regressed, &[]);
    assert!(!out.status.success(), "2x slower must fail the gate");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("REGRESSED"), "{text}");

    let out = compare(&fine, &[]);
    assert!(
        out.status.success(),
        "5% drift is inside the default threshold: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // A tight threshold flags the small drift too...
    let out = compare(&fine, &["--threshold", "0.01"]);
    assert!(!out.status.success());
    // ...unless the caller asked for warnings only.
    let out = compare(&regressed, &["--warn-only"]);
    assert!(out.status.success());
}

#[test]
fn bench_validate_checks_schema() {
    let dir = std::env::temp_dir().join("pipemap-cli-test-bench-validate");
    std::fs::create_dir_all(&dir).unwrap();
    let good = bench_doc(&dir, "good.json", &[("m.wall_s", 0.5)]);
    let out = pipemap()
        .arg("bench")
        .arg("--validate")
        .arg(&good)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("valid"));

    let bad = write_spec(&dir, "bad.json", "{\"schema\": \"nope\"}");
    let out = pipemap()
        .arg("bench")
        .arg("--validate")
        .arg(&bad)
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn fit_emits_a_mappable_spec() {
    let dir = std::env::temp_dir().join("pipemap-cli-test-fit");
    std::fs::create_dir_all(&dir).unwrap();
    let fit = pipemap()
        .arg("fit")
        .arg("radar")
        .arg("--systolic")
        .output()
        .unwrap();
    assert!(
        fit.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&fit.stderr)
    );
    let spec = write_spec(&dir, "radar.pmap", &String::from_utf8_lossy(&fit.stdout));
    let map = pipemap()
        .arg("map")
        .arg(&spec)
        .arg("--greedy-only")
        .output()
        .unwrap();
    assert!(
        map.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&map.stderr)
    );
    let text = String::from_utf8_lossy(&map.stdout);
    assert!(text.contains("data sets/s"), "{text}");
}

#[test]
fn load_counted_run_reports_throughput() {
    let out = pipemap()
        .arg("load")
        .arg("micro")
        .args(["--datasets", "300", "--size", "64"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("datasets/s"), "{text}");
    assert!(text.contains("micro"), "{text}");
}

#[test]
fn load_json_report_completes_every_dataset() {
    let out = pipemap()
        .arg("load")
        .arg("fft-hist")
        .args(["--datasets", "24", "--size", "16", "--report", "json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = pipemap_obs::Value::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(
        doc.get("workload").and_then(pipemap_obs::Value::as_str),
        Some("fft-hist")
    );
    assert_eq!(
        doc.get("result")
            .and_then(|r| r.get("completed"))
            .and_then(pipemap_obs::Value::as_f64),
        Some(24.0)
    );
    assert!(doc
        .get("result")
        .and_then(|r| r.get("latency"))
        .and_then(|l| l.get("p99_s"))
        .is_some());
    assert!(doc.get("transport").is_some());
    assert!(doc.get("pool").is_some(), "pool stats on by default");
}

#[test]
fn load_reference_mode_disables_batching_and_pool() {
    let out = pipemap()
        .arg("load")
        .arg("micro")
        .args(["--datasets", "50", "--size", "32", "--reference"])
        .args(["--report", "json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = pipemap_obs::Value::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(
        doc.get("config")
            .and_then(|c| c.get("batch"))
            .and_then(pipemap_obs::Value::as_f64),
        Some(1.0)
    );
    assert!(doc.get("pool").is_none(), "reference path must not pool");
}

#[test]
fn load_rejects_bad_flags() {
    let out = pipemap()
        .arg("load")
        .arg("micro")
        .args(["--batch", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = pipemap().arg("load").arg("nonsense").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn bench_validate_explains_stale_schemas() {
    let dir = std::env::temp_dir().join("pipemap-cli-test-bench-stale");
    std::fs::create_dir_all(&dir).unwrap();
    let stale = write_spec(
        &dir,
        "stale.json",
        "{\"schema\": \"pipemap-bench/v0\", \"git_sha\": \"x\", \"metrics\": {}}",
    );
    let out = pipemap()
        .arg("bench")
        .arg("--validate")
        .arg(&stale)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("older than"), "{err}");
    assert!(err.contains("regenerate the baseline"), "{err}");
}

/// `simulate --journey-out` followed by `doctor` on the same files: the
/// self-consistent run must be diagnosed drift-free, and the JSON
/// report must be structurally complete.
#[test]
fn simulate_journeys_doctor_round_trip() {
    use pipemap_obs::Value;
    let dir = std::env::temp_dir().join("pipemap-cli-test-doctor");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = write_spec(&dir, "p.pmap", SPEC);
    let journeys = dir.join("j.jsonl");
    // One replica of `front` on 4 procs (~274ms effective) against
    // `back` on 8 (~141ms): a clearly unbalanced pipeline, so a wrong
    // bottleneck prediction is material rather than a near-tie.
    let out = pipemap()
        .arg("simulate")
        .arg(&spec)
        .arg("0-0:1x4,1-1:1x8")
        .args(["--datasets", "120", "--noise", "0.02", "--seed", "11"])
        .arg("--journey-out")
        .arg(&journeys)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = pipemap()
        .arg("doctor")
        .arg(&journeys)
        .args(["--report", "json", "--fail-on-drift"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "self-consistent run flagged drift: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Value::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("pipemap-doctor/v1")
    );
    assert_eq!(doc.get("complete").and_then(Value::as_f64), Some(120.0));
    assert_eq!(doc.get("drift"), Some(&Value::Bool(false)));
    let stages = doc.get("stages").and_then(Value::as_array).unwrap();
    assert_eq!(stages.len(), 2);
    for s in stages {
        for comp in ["queue", "transport", "service", "batching"] {
            let mean = s
                .get(comp)
                .and_then(|c| c.get("mean_s"))
                .and_then(Value::as_f64)
                .unwrap();
            assert!(mean >= 0.0, "{comp} mean negative");
        }
    }

    // Re-pricing against a spec whose second task is 3x slower than
    // what actually ran must move the predicted bottleneck (to `back`,
    // away from the measured bottleneck at `front`) and flag drift;
    // `--fail-on-drift` turns that into a nonzero exit.
    let slow_back = SPEC.replace("exec poly 0.05 0.5 0.0", "exec poly 0.15 1.5 0.0");
    let stale = write_spec(&dir, "stale.pmap", &slow_back);
    let out = pipemap()
        .arg("doctor")
        .arg(&journeys)
        .args(["--spec", stale.to_str().unwrap()])
        .args(["--mapping", "0-0:1x4,1-1:1x8", "--fail-on-drift"])
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "stale model must flag drift: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("DRIFT"), "{text}");
    assert!(text.contains("re-solve"), "{text}");
}

#[test]
fn doctor_rejects_missing_and_empty_input() {
    let dir = std::env::temp_dir().join("pipemap-cli-test-doctor-bad");
    std::fs::create_dir_all(&dir).unwrap();
    let out = pipemap()
        .arg("doctor")
        .arg(dir.join("nope.jsonl"))
        .output()
        .unwrap();
    assert!(!out.status.success());

    let empty = write_spec(&dir, "empty.jsonl", "");
    let out = pipemap().arg("doctor").arg(&empty).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no complete journeys"), "{err}");
}

/// A spec whose optimum has tight, finite stability margins: both tasks
/// keep state (not replicable), so the 12 processors genuinely split
/// 7/5 and a ~4% drift on `front` already flips the optimum, while
/// `back` tolerates ~27%.
const MARGIN_SPEC: &str = "\
procs 12
mem_per_proc 1e9

task front
  exec poly 0.0 5.0 0.02
  replicable no

edge
  icom poly 0.0 0.05 0.0
  ecom poly 0.02 0.3 0.3 0.01 0.01

task back
  exec poly 0.05 3.0 0.02
  replicable no
";

/// The optimal mapping `explain` reports for [`MARGIN_SPEC`].
const MARGIN_MAPPING: &str = "0-0:1x7,1-1:1x5";

#[test]
fn explain_renders_margins_and_emits_parseable_json() {
    use pipemap_obs::Value;
    let dir = std::env::temp_dir().join("pipemap-cli-test-explain");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = write_spec(&dir, "m.pmap", MARGIN_SPEC);
    let out = pipemap().arg("explain").arg(&spec).output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("exec margin"), "{text}");
    assert!(text.contains("pruning heatmap"), "{text}");
    assert!(text.contains("tightest margin"), "{text}");

    let out = pipemap()
        .arg("explain")
        .arg(&spec)
        .args(["--report", "json", "--robustness", "6", "--spread", "0.02"])
        .args(["--seed", "42"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Value::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("pipemap-explain/v1")
    );
    let stages = doc.get("stages").and_then(Value::as_array).unwrap();
    assert_eq!(stages.len(), 2);
    assert!(stages[0].get("margins").is_some());
    // ±2% perturbations stay inside the 4.1% margin, so the sampled
    // study must agree the mapping never loses.
    let rob = doc.get("robustness").unwrap();
    assert_eq!(rob.get("regret_max").and_then(Value::as_f64), Some(0.0));
}

/// The acceptance scenario for margin-aware drift: a seeded DES run is
/// doctored against the exact margins from `explain`. A +10% drift on
/// `front` escapes its 4.1% margin and must be flagged; a +20% drift on
/// `back` stays inside its 26.7% margin and must stay quiet — exactly
/// where the fixed near-tie threshold doctor false-positives.
#[test]
fn doctor_margins_flags_exactly_at_the_stability_boundary() {
    let dir = std::env::temp_dir().join("pipemap-cli-test-margins");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = write_spec(&dir, "m.pmap", MARGIN_SPEC);
    let explain_json = dir.join("explain.json");
    let out = pipemap()
        .arg("explain")
        .arg(&spec)
        .args(["--report", "json"])
        .arg("--out")
        .arg(&explain_json)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The world the model believes in, perturbed two ways: `front` 10%
    // costlier (outside its margin), `back` 20% costlier (inside).
    let front_drift = MARGIN_SPEC.replace("exec poly 0.0 5.0 0.02", "exec poly 0.0 5.5 0.022");
    let back_drift = MARGIN_SPEC.replace("exec poly 0.05 3.0 0.02", "exec poly 0.06 3.6 0.024");
    let simulate = |name: &str, body: &str| {
        let drifted = write_spec(&dir, name, body);
        let journeys = dir.join(format!("{name}.jsonl"));
        let out = pipemap()
            .arg("simulate")
            .arg(&drifted)
            .arg(MARGIN_MAPPING)
            .args(["--datasets", "80", "--noise", "0.01", "--seed", "7"])
            .args(["--journey-sample", "1"])
            .arg("--journey-out")
            .arg(&journeys)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        journeys
    };
    let doctor = |journeys: &std::path::Path, margins: bool| {
        let mut cmd = pipemap();
        cmd.arg("doctor")
            .arg(journeys)
            .args(["--spec", spec.to_str().unwrap()])
            .args(["--mapping", MARGIN_MAPPING, "--fail-on-drift"]);
        if margins {
            cmd.arg("--margins").arg(&explain_json);
        }
        let out = cmd.output().unwrap();
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).to_string(),
        )
    };

    let jf = simulate("front_drift.pmap", &front_drift);
    let (ok, text) = doctor(&jf, true);
    assert!(!ok, "front +10% escapes its 4.1% margin: {text}");
    assert!(text.contains("MARGIN DRIFT"), "{text}");
    assert!(text.contains("CROSSED"), "{text}");

    let jb = simulate("back_drift.pmap", &back_drift);
    let (ok, text) = doctor(&jb, true);
    assert!(ok, "back +20% is inside its 26.7% margin: {text}");
    assert!(text.contains("no drift"), "{text}");
    // The same journeys through the fixed near-tie threshold page: the
    // measured bottleneck moved, even though the mapping is provably
    // still optimal. This is the false positive the margins remove.
    let (ok, text) = doctor(&jb, false);
    assert!(!ok, "fixed threshold should false-positive here: {text}");
    assert!(text.contains("DRIFT"), "{text}");
}

// ---------------------------------------------------------------------------
// Out-of-process data plane: uds loads, overload discipline, calibration
// ---------------------------------------------------------------------------
//
// These run here rather than in the tool's lib tests because the uds
// path re-executes the current binary as a worker: under the `pipemap`
// binary the hidden `__worker` dispatch answers the probe, under the
// libtest harness it cannot.

fn json_f64(doc: &pipemap_obs::Value, path: &[&str]) -> Option<f64> {
    let mut v = doc;
    for k in path {
        v = v.get(k)?;
    }
    pipemap_obs::Value::as_f64(v)
}

#[test]
fn uds_load_completes_and_reports_links() {
    let out = pipemap()
        .arg("load")
        .arg("micro")
        .args(["--transport", "uds"])
        .args(["--datasets", "2000", "--size", "256", "--report", "json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = pipemap_obs::Value::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(
        doc.get("config")
            .and_then(|c| c.get("transport"))
            .and_then(pipemap_obs::Value::as_str),
        Some("uds")
    );
    assert_eq!(json_f64(&doc, &["result", "completed"]), Some(2000.0));
    // Per-boundary link rows: nstages + 1 of them, every item accounted
    // for on the first boundary.
    let links = doc
        .get("links")
        .and_then(pipemap_obs::Value::as_array)
        .unwrap();
    assert_eq!(links.len(), 5, "4 stages -> 5 boundary links");
    assert_eq!(json_f64(&links[0], &["items"]), Some(2000.0));
    assert!(json_f64(&links[0], &["bytes"]).unwrap() > 0.0);
    // Coalescing must actually coalesce: far fewer frames than items.
    assert!(json_f64(&links[0], &["frames"]).unwrap() < 1000.0);
}

#[test]
fn uds_load_admission_control_reports_rejections() {
    let out = pipemap()
        .arg("load")
        .arg("micro")
        .args(["--transport", "uds"])
        .args(["--datasets", "3000", "--size", "64"])
        .args(["--rate", "60000", "--admit-rate", "4000"])
        .args(["--report", "json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = pipemap_obs::Value::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(json_f64(&doc, &["config", "admit_rate"]), Some(4000.0));
    let offered = json_f64(&doc, &["result", "offered"]).unwrap();
    let rejected = json_f64(&doc, &["result", "rejected"]).unwrap();
    let completed = json_f64(&doc, &["result", "completed"]).unwrap();
    assert_eq!(offered, 3000.0);
    assert!(rejected > 0.0, "15x overload past the bucket must reject");
    assert_eq!(completed + rejected, offered, "no arrival unaccounted");
}

#[test]
fn load_rate_sweep_reports_knee_below_saturation() {
    // Rates far below the micro pipeline's capacity: every point keeps
    // up, so the knee is the top of the ramp.
    let out = pipemap()
        .arg("load")
        .arg("micro")
        .args(["--rate", "200:400:3"])
        .args(["--duration", "200ms", "--size", "64"])
        .args(["--report", "json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = pipemap_obs::Value::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    let points = doc
        .get("points")
        .and_then(pipemap_obs::Value::as_array)
        .unwrap();
    assert_eq!(points.len(), 3);
    assert_eq!(json_f64(&points[0], &["offered_rate"]), Some(200.0));
    assert_eq!(json_f64(&points[2], &["offered_rate"]), Some(400.0));
    assert_eq!(json_f64(&doc, &["knee_rate"]), Some(400.0));

    // A malformed ramp is rejected before any run starts.
    let out = pipemap()
        .arg("load")
        .arg("micro")
        .args(["--rate", "400:200:3"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn calibrate_emits_schema_versioned_fit() {
    let dir = std::env::temp_dir().join("pipemap-cli-test-calibrate");
    std::fs::create_dir_all(&dir).unwrap();
    let cal = dir.join("cal.json");
    let out = pipemap()
        .arg("calibrate")
        .args(["--sizes", "64,4096", "--messages", "2000"])
        .args(["--out", cal.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = pipemap_obs::Value::parse(&std::fs::read_to_string(&cal).unwrap()).unwrap();
    assert_eq!(
        doc.get("schema").and_then(pipemap_obs::Value::as_str),
        Some("pipemap-calibration/v1")
    );
    assert!(json_f64(&doc, &["per_msg_s"]).unwrap() > 0.0);
    assert!(json_f64(&doc, &["per_byte_s"]).unwrap() >= 0.0);
    let samples = doc
        .get("samples")
        .and_then(pipemap_obs::Value::as_array)
        .unwrap();
    assert_eq!(samples.len(), 2);

    // The fit round-trips into `map --calibration`.
    let spec = write_spec(&dir, "cal.pmap", SPEC);
    let out = pipemap()
        .arg("map")
        .arg(&spec)
        .args(["--calibration", cal.to_str().unwrap()])
        .args(["--edge-bytes", "1048576"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("data sets/s"), "{text}");
}

#[test]
fn map_calibration_flags_must_be_consistent() {
    let dir = std::env::temp_dir().join("pipemap-cli-test-cal-flags");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = write_spec(&dir, "p.pmap", SPEC);
    let cal = write_spec(
        &dir,
        "cal.json",
        "{\"schema\": \"pipemap-calibration/v1\", \"per_msg_s\": 1e-6, \
          \"per_byte_s\": 1e-9, \"r2\": 1.0, \"samples\": []}",
    );
    // --calibration without --edge-bytes is an error, and vice versa.
    let out = pipemap()
        .arg("map")
        .arg(&spec)
        .args(["--calibration", cal.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = pipemap()
        .arg("map")
        .arg(&spec)
        .args(["--edge-bytes", "100"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // The byte list must cover every edge (this spec has exactly one).
    let out = pipemap()
        .arg("map")
        .arg(&spec)
        .args(["--calibration", cal.to_str().unwrap()])
        .args(["--edge-bytes", "100,200"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn uds_journeys_are_complete_for_doctor() {
    let dir = std::env::temp_dir().join("pipemap-cli-test-uds-journeys");
    std::fs::create_dir_all(&dir).unwrap();
    let journeys = dir.join("uds.jsonl");
    let out = pipemap()
        .arg("load")
        .arg("fft-hist")
        .args(["--transport", "uds"])
        .args(["--datasets", "600", "--size", "32"])
        .args(["--journey-out", journeys.to_str().unwrap()])
        .args(["--journey-sample", "4"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = pipemap()
        .arg("doctor")
        .arg(&journeys)
        .args(["--report", "json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = pipemap_obs::Value::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    // Cross-process events stitch into complete journeys: every sampled
    // data set contributes all three hops.
    let complete = json_f64(&doc, &["complete"]).unwrap();
    assert!(complete > 0.0, "no complete journeys from the uds run");
    assert_eq!(
        doc.get("stages")
            .and_then(pipemap_obs::Value::as_array)
            .map(|s| s.len()),
        Some(3)
    );
}
