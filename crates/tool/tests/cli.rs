//! End-to-end tests of the `pipemap` command-line binary.

use std::io::Write;
use std::process::Command;

fn pipemap() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pipemap"))
}

fn write_spec(dir: &std::path::Path, name: &str, body: &str) -> std::path::PathBuf {
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(body.as_bytes()).unwrap();
    path
}

const SPEC: &str = "\
procs 16
mem_per_proc 1e9

task front
  exec poly 0.02 1.0 0.001

edge
  icom poly 0.0 0.02 0.0
  ecom poly 0.01 0.05 0.05 0 0

task back
  exec poly 0.05 0.5 0.0
  replicable no
";

#[test]
fn help_prints_usage() {
    let out = pipemap().arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("simulate"));
}

#[test]
fn template_is_parseable_by_map() {
    let dir = std::env::temp_dir().join("pipemap-cli-test-template");
    std::fs::create_dir_all(&dir).unwrap();
    let tmpl = pipemap().arg("template").output().unwrap();
    assert!(tmpl.status.success());
    let spec = write_spec(&dir, "tmpl.pmap", &String::from_utf8_lossy(&tmpl.stdout));
    let out = pipemap()
        .arg("map")
        .arg(&spec)
        .arg("--greedy-only")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("greedy"), "{text}");
    assert!(text.contains("data sets/s"));
}

#[test]
fn map_solves_a_spec() {
    let dir = std::env::temp_dir().join("pipemap-cli-test-map");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = write_spec(&dir, "p.pmap", SPEC);
    let out = pipemap()
        .arg("map")
        .arg(&spec)
        .arg("--min-procs")
        .arg("1.0")
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("optimal"), "{text}");
    assert!(text.contains("procs"), "{text}");
}

#[test]
fn simulate_runs_a_mapping() {
    let dir = std::env::temp_dir().join("pipemap-cli-test-sim");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = write_spec(&dir, "p.pmap", SPEC);
    let out = pipemap()
        .arg("simulate")
        .arg(&spec)
        .arg("0-0:2x4,1-1:1x8")
        .arg("--datasets")
        .arg("120")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("analytic"), "{text}");
    assert!(text.contains("simulated"), "{text}");
    assert!(text.contains("utilisation"));
}

#[test]
fn simulate_rejects_invalid_mappings() {
    let dir = std::env::temp_dir().join("pipemap-cli-test-bad");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = write_spec(&dir, "p.pmap", SPEC);
    // The non-replicable `back` task must not be replicated.
    let out = pipemap()
        .arg("simulate")
        .arg(&spec)
        .arg("0-0:2x4,1-1:4x2")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid"), "{err}");
}

#[test]
fn bad_spec_reports_line_numbers() {
    let dir = std::env::temp_dir().join("pipemap-cli-test-err");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = write_spec(&dir, "bad.pmap", "procs 4\ntask t\n  exec poly oops 1 1\n");
    let out = pipemap().arg("map").arg(&spec).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 3"), "{err}");
}

#[test]
fn unknown_command_fails() {
    let out = pipemap().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn fit_emits_a_mappable_spec() {
    let dir = std::env::temp_dir().join("pipemap-cli-test-fit");
    std::fs::create_dir_all(&dir).unwrap();
    let fit = pipemap()
        .arg("fit")
        .arg("radar")
        .arg("--systolic")
        .output()
        .unwrap();
    assert!(
        fit.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&fit.stderr)
    );
    let spec = write_spec(&dir, "radar.pmap", &String::from_utf8_lossy(&fit.stdout));
    let map = pipemap()
        .arg("map")
        .arg(&spec)
        .arg("--greedy-only")
        .output()
        .unwrap();
    assert!(
        map.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&map.stderr)
    );
    let text = String::from_utf8_lossy(&map.stdout);
    assert!(text.contains("data sets/s"), "{text}");
}
