//! Replicated measurement runs.
//!
//! A single noisy simulation is one "execution" of the program; real
//! measurement methodology repeats the run and reports the spread. This
//! is how the tool's "measured" numbers acquire error bars.

use pipemap_chain::{Mapping, TaskChain};

use crate::pipeline::{simulate, SimConfig, SimResult};
use crate::stats::Summary;

/// Aggregate of `runs` independent noisy simulations.
#[derive(Clone, Debug)]
pub struct ReplicatedResult {
    /// Throughput across runs.
    pub throughput: Summary,
    /// Mean per-data-set latency across runs.
    pub latency_mean: Summary,
    /// The individual runs, in seed order.
    pub runs: Vec<SimResult>,
}

/// Run `runs` simulations that differ only in their noise seed
/// (`base_seed`, `base_seed + 1`, …) and summarise. With no noise
/// configured the runs are identical and the spread is zero.
pub fn replicate_simulation(
    chain: &TaskChain,
    mapping: &Mapping,
    config: &SimConfig,
    runs: usize,
    base_seed: u64,
) -> ReplicatedResult {
    assert!(runs >= 1, "need at least one run");
    let spread = config.noise.as_ref().map(|n| n.spread);
    let results: Vec<SimResult> = (0..runs)
        .map(|i| {
            let mut cfg = config.clone();
            if let Some(s) = spread {
                cfg = cfg.with_noise(s, base_seed.wrapping_add(i as u64));
            }
            simulate(chain, mapping, &cfg)
        })
        .collect();
    let thr: Vec<f64> = results.iter().map(|r| r.throughput).collect();
    let lat: Vec<f64> = results.iter().map(|r| r.latency.mean).collect();
    ReplicatedResult {
        throughput: Summary::of(&thr).expect("runs >= 1"),
        latency_mean: Summary::of(&lat).expect("runs >= 1"),
        runs: results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_chain::{ChainBuilder, ModuleAssignment, Task};
    use pipemap_model::PolyUnary;

    fn setup() -> (TaskChain, Mapping) {
        let c = ChainBuilder::new()
            .task(Task::new("t", PolyUnary::new(0.5, 2.0, 0.0)))
            .build();
        let m = Mapping::new(vec![ModuleAssignment::new(0, 0, 2, 2)]);
        (c, m)
    }

    #[test]
    fn noiseless_runs_are_identical() {
        let (c, m) = setup();
        let r = replicate_simulation(&c, &m, &SimConfig::with_datasets(100), 5, 1);
        assert_eq!(r.runs.len(), 5);
        assert!(r.throughput.std_dev < 1e-12);
        assert!(r.latency_mean.std_dev < 1e-12);
    }

    #[test]
    fn noisy_runs_vary_but_concentrate() {
        let (c, m) = setup();
        let cfg = SimConfig::with_datasets(300).with_noise(0.08, 0);
        let r = replicate_simulation(&c, &m, &cfg, 8, 42);
        assert!(r.throughput.std_dev > 0.0, "seeds must differ");
        // The spread across runs is far below the per-activity noise.
        assert!(r.throughput.cv() < 0.05, "cv {}", r.throughput.cv());
        // And the mean is near the noise-free value.
        let clean = simulate(&c, &m, &SimConfig::with_datasets(300)).throughput;
        assert!((r.throughput.mean - clean).abs() / clean < 0.05);
    }

    #[test]
    fn seeds_are_deterministic() {
        let (c, m) = setup();
        let cfg = SimConfig::with_datasets(100).with_noise(0.05, 7);
        let a = replicate_simulation(&c, &m, &cfg, 3, 9);
        let b = replicate_simulation(&c, &m, &cfg, 3, 9);
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.throughput, y.throughput);
        }
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let (c, m) = setup();
        let _ = replicate_simulation(&c, &m, &SimConfig::default(), 0, 0);
    }
}
