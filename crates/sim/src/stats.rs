//! Small summary-statistics helpers for simulation outputs.

/// Summary statistics of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (linear interpolation between order statistics).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarise a sample; `None` for an empty slice.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let quantile = |q: f64| -> f64 {
            let pos = q * (sorted.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let w = pos - lo as f64;
            sorted[lo] + w * (sorted[hi] - sorted[lo])
        };
        Some(Summary {
            count: values.len(),
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        })
    }

    /// Coefficient of variation (`std_dev / mean`), 0 for a zero mean.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Relative difference `(a − b) / b` in percent — the paper's "Percent
/// Difference" column of Table 2.
pub fn percent_difference(measured: f64, predicted: f64) -> f64 {
    if predicted == 0.0 {
        return f64::NAN;
    }
    100.0 * (measured - predicted) / predicted
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample by linear interpolation
/// between order statistics; `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let w = pos - lo as f64;
    Some(sorted[lo] + w * (sorted[hi] - sorted[lo]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.min - 1.0).abs() < 1e-12);
        assert!((s.max - 4.0).abs() < 1e-12);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert!((s.p50 - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_percentiles_match_percentile_fn() {
        let v: Vec<f64> = (1..=200).map(|i| i as f64).collect();
        let s = Summary::of(&v).unwrap();
        assert_eq!(Some(s.p50), percentile(&v, 0.50));
        assert_eq!(Some(s.p90), percentile(&v, 0.90));
        assert_eq!(Some(s.p99), percentile(&v, 0.99));
        assert!(s.p50 < s.p90 && s.p90 < s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn summary_percentiles_of_singleton() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!((s.p50, s.p90, s.p99), (3.5, 3.5, 3.5));
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn cv_handles_zero_mean() {
        let s = Summary::of(&[0.0, 0.0]).unwrap();
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn percentile_basics() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(4.0));
        assert_eq!(percentile(&v, 0.5), Some(2.5));
        assert!((percentile(&v, 0.25).unwrap() - 1.75).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.9), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn percentile_validates_q() {
        let _ = percentile(&[1.0], 1.5);
    }

    #[test]
    fn percent_difference_matches_paper_convention() {
        // Table 2 row 1: predicted 14.60, measured 16.28 → +11.51%.
        let d = percent_difference(16.28, 14.60);
        assert!((d - 11.5068).abs() < 0.01, "got {d}");
        // Row 2: predicted 14.74, measured 14.35 → −2.65%.
        let d = percent_difference(14.35, 14.74);
        assert!((d + 2.6459).abs() < 0.01, "got {d}");
    }
}
