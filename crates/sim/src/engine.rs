//! A small discrete-event simulation engine.
//!
//! The pipeline simulator in [`crate::pipeline`] computes its schedule
//! with a closed-form forward sweep, which is possible because a linear
//! chain's dependency structure is so regular. This module provides the
//! general mechanism — a future-event list over opaque events, a
//! simulation clock, and FIFO rendezvous queues — on which
//! [`crate::des_pipeline`] rebuilds the same semantics event by event.
//! The two implementations are cross-validated in tests: any divergence
//! is a bug in one of them.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time, seconds.
pub type SimTime = f64;

/// A scheduled occurrence: at `time`, deliver `event` to the model.
struct Scheduled<E> {
    time: SimTime,
    /// Tie-breaker preserving schedule order for simultaneous events.
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The event-list core: a clock and a future-event list.
pub struct Engine<E> {
    fel: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// An empty engine at time zero.
    pub fn new() -> Self {
        Self {
            fel: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedule `event` at absolute time `time` (must not precede the
    /// clock).
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past or not finite — scheduling into
    /// the past is always a model bug.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        assert!(
            time.is_finite() && time >= self.now,
            "cannot schedule at {time} (now = {})",
            self.now
        );
        self.seq += 1;
        self.fel.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
    }

    /// Schedule `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        assert!(delay >= 0.0, "negative delay {delay}");
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock to its time. (Named
    /// `next_event` rather than `next` so it cannot be confused with
    /// `Iterator::next`; the engine is not an iterator — popping mutates
    /// the clock.)
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        let s = self.fel.pop()?;
        debug_assert!(s.time >= self.now);
        self.now = s.time;
        self.processed += 1;
        Some((s.time, s.event))
    }

    /// True if no events remain.
    pub fn is_idle(&self) -> bool {
        self.fel.is_empty()
    }

    /// Run the model to completion: `handler(engine, time, event)` may
    /// schedule further events. A safety cap bounds runaway models.
    ///
    /// # Panics
    ///
    /// Panics if more than `max_events` are processed.
    pub fn run(&mut self, max_events: u64, mut handler: impl FnMut(&mut Self, SimTime, E)) {
        while let Some((t, e)) = self.next_event() {
            handler(self, t, e);
            assert!(
                self.processed <= max_events,
                "event cap {max_events} exceeded — runaway model?"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule_at(3.0, "c");
        e.schedule_at(1.0, "a");
        e.schedule_at(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| e.next_event().map(|(_, ev)| ev)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(e.now(), 3.0);
        assert_eq!(e.processed(), 3);
    }

    #[test]
    fn simultaneous_events_preserve_schedule_order() {
        let mut e: Engine<u32> = Engine::new();
        for i in 0..10 {
            e.schedule_at(5.0, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| e.next_event().map(|(_, ev)| ev)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_at(1.0, 1);
        e.schedule_at(4.0, 2);
        let (t1, _) = e.next_event().unwrap();
        // Scheduling relative to the (advanced) clock.
        e.schedule_in(0.5, 3);
        let (t2, ev) = e.next_event().unwrap();
        assert_eq!(t1, 1.0);
        assert_eq!((t2, ev), (1.5, 3));
    }

    #[test]
    #[should_panic(expected = "cannot schedule at")]
    fn scheduling_into_the_past_panics() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_at(2.0, 1);
        e.next_event();
        e.schedule_at(1.0, 2);
    }

    #[test]
    fn run_drives_a_cascade() {
        // A chain reaction: each event schedules the next until 10.
        let mut e: Engine<u32> = Engine::new();
        e.schedule_at(0.0, 0);
        let mut seen = Vec::new();
        e.run(100, |eng, _t, ev| {
            seen.push(ev);
            if ev < 9 {
                eng.schedule_in(1.0, ev + 1);
            }
        });
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(e.now(), 9.0);
        assert!(e.is_idle());
    }

    #[test]
    #[should_panic(expected = "event cap")]
    fn run_catches_runaway_models() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_at(0.0, 0);
        e.run(50, |eng, _t, ev| {
            eng.schedule_in(1.0, ev + 1); // never stops
        });
    }
}
