//! Multiplicative per-activity noise.
//!
//! Real machines do not reproduce an activity's duration exactly from run
//! to run: cache state, link contention, and OS interference perturb it.
//! The paper folds all of this into the gap between predicted and measured
//! throughput (§6.4). [`NoiseModel`] draws an independent multiplicative
//! factor per simulated activity from a triangular-ish distribution with a
//! configurable coefficient of variation, seeded for reproducibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reproducible multiplicative noise for activity durations.
#[derive(Clone, Debug)]
pub struct NoiseModel {
    /// Relative spread (e.g. 0.05 for ±~5%).
    pub spread: f64,
    rng: StdRng,
}

impl NoiseModel {
    /// A model with the given relative spread and seed.
    pub fn new(spread: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&spread), "spread must be in [0, 1)");
        Self {
            spread,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draw the next noise factor (mean 1.0, bounded to
    /// `[1 − spread, 1 + spread]`; the average of two uniforms gives a
    /// triangular shape concentrated near 1).
    pub fn factor(&mut self) -> f64 {
        let u = (self.rng.gen::<f64>() + self.rng.gen::<f64>()) / 2.0; // triangular on [0,1]
        1.0 + self.spread * (2.0 * u - 1.0)
    }

    /// Apply noise to a duration.
    pub fn perturb(&mut self, duration: f64) -> f64 {
        duration * self.factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_are_bounded_and_centered() {
        let mut n = NoiseModel::new(0.1, 42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = n.factor();
            assert!((0.9..=1.1).contains(&f), "factor {f} out of bounds");
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean} far from 1");
    }

    #[test]
    fn seeded_reproducibility() {
        let mut a = NoiseModel::new(0.2, 7);
        let mut b = NoiseModel::new(0.2, 7);
        for _ in 0..100 {
            assert_eq!(a.factor(), b.factor());
        }
        let mut c = NoiseModel::new(0.2, 8);
        let same = (0..100).all(|_| {
            let mut a2 = NoiseModel::new(0.2, 7);
            a2.factor() == c.factor()
        });
        assert!(!same);
    }

    #[test]
    fn zero_spread_is_identity() {
        let mut n = NoiseModel::new(0.0, 1);
        for _ in 0..10 {
            assert_eq!(n.perturb(3.5), 3.5);
        }
    }

    #[test]
    #[should_panic(expected = "spread")]
    fn spread_validated() {
        let _ = NoiseModel::new(1.5, 0);
    }
}
