//! Export simulator traces in the observability formats.
//!
//! The simulator's [`Trace`] records activities in *virtual* seconds.
//! This module converts them to `pipemap-obs` [`TraceEvent`]s — one
//! trace lane per module instance, named `m<module>.<instance>` —
//! so a simulated schedule opens in Perfetto exactly like a measured
//! one (and diffing predicted against measured behaviour is a matter
//! of loading two files in the same viewer).

use pipemap_obs::{chrome_trace, events_to_jsonl, TraceEvent, Value};

use crate::trace::{ActivityKind, Trace};

impl ActivityKind {
    fn label(&self) -> &'static str {
        match self {
            ActivityKind::Recv => "recv",
            ActivityKind::Exec => "exec",
            ActivityKind::Send => "send",
        }
    }
}

/// Convert a simulated trace to trace events plus lane names. Virtual
/// seconds become microseconds; lanes are ordered by (module, instance).
pub fn trace_events(trace: &Trace) -> (Vec<TraceEvent>, Vec<String>) {
    let mut rows: Vec<(usize, usize)> = trace
        .activities
        .iter()
        .map(|a| (a.module, a.instance))
        .collect();
    rows.sort_unstable();
    rows.dedup();
    let lane_of = |module: usize, instance: usize| -> u64 {
        rows.binary_search(&(module, instance)).expect("row exists") as u64
    };
    let events = trace
        .activities
        .iter()
        .map(|a| TraceEvent {
            name: a.kind.label().to_string(),
            cat: a.kind.label().to_string(),
            lane: lane_of(a.module, a.instance),
            ts_us: a.start * 1e6,
            dur_us: (a.end - a.start) * 1e6,
            args: vec![("dataset".to_string(), (a.dataset as u64).into())],
        })
        .collect();
    let lanes = rows.into_iter().map(|(m, i)| format!("m{m}.{i}")).collect();
    (events, lanes)
}

/// The trace as a Chrome `trace_event` JSON document (Perfetto-ready).
pub fn chrome_trace_json(trace: &Trace) -> Value {
    let (events, lanes) = trace_events(trace);
    chrome_trace(&events, &lanes)
}

/// The trace as JSON Lines (one event object per line).
pub fn trace_jsonl(trace: &Trace) -> String {
    let (events, _) = trace_events(trace);
    events_to_jsonl(&events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{simulate, SimConfig};
    use pipemap_chain::{ChainBuilder, Edge, Mapping, ModuleAssignment, Task};
    use pipemap_model::{PolyEcom, PolyUnary};

    fn two_stage_trace() -> Trace {
        let chain = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::perfectly_parallel(2.0)))
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(0.5, 0.0, 0.0, 0.0, 0.0),
            ))
            .task(Task::new("b", PolyUnary::perfectly_parallel(2.0)))
            .build();
        let mapping = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 1, 1),
            ModuleAssignment::new(1, 1, 1, 1),
        ]);
        simulate(&chain, &mapping, &SimConfig::with_datasets(10).with_trace())
            .trace
            .expect("trace requested")
    }

    /// Golden test: the exporter emits valid JSON for a 2-stage pipeline,
    /// with the Chrome trace invariants the viewers rely on.
    #[test]
    fn chrome_export_of_two_stage_pipeline_is_valid_json() {
        let trace = two_stage_trace();
        let doc = chrome_trace_json(&trace);
        let text = doc.to_json_pretty();
        let parsed = Value::parse(&text).expect("exporter must emit valid JSON");

        let events = parsed
            .get("traceEvents")
            .expect("traceEvents key")
            .as_array()
            .expect("traceEvents is an array");
        // 2 lane-metadata records + one X event per activity.
        assert_eq!(events.len(), 2 + trace.activities.len());

        let metas: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2);
        let lane_names: Vec<&str> = metas
            .iter()
            .map(|m| {
                m.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .expect("thread_name metadata")
            })
            .collect();
        assert_eq!(lane_names, vec!["m0.0", "m1.0"]);

        for e in events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        {
            assert!(e.get("ts").and_then(Value::as_f64).unwrap() >= 0.0);
            assert!(e.get("dur").and_then(Value::as_f64).unwrap() > 0.0);
            let name = e.get("name").and_then(Value::as_str).unwrap();
            assert!(["recv", "exec", "send"].contains(&name));
        }
    }

    #[test]
    fn virtual_times_scale_to_microseconds() {
        let trace = two_stage_trace();
        let (events, lanes) = trace_events(&trace);
        assert_eq!(lanes.len(), 2);
        // First activity of the run: module 0 exec of dataset 0, 2 s.
        let first = events
            .iter()
            .find(|e| e.lane == 0 && e.cat == "exec")
            .unwrap();
        assert_eq!(first.ts_us, 0.0);
        assert!((first.dur_us - 2e6).abs() < 1e-6);
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let trace = two_stage_trace();
        let jsonl = trace_jsonl(&trace);
        assert_eq!(jsonl.lines().count(), trace.activities.len());
        for line in jsonl.lines() {
            let v = Value::parse(line).expect("JSONL line parses");
            assert!(v.get("dur_us").is_some());
        }
    }
}
