//! Event-driven pipeline simulation on the [`crate::engine`] core.
//!
//! Semantically identical to [`crate::pipeline::simulate`] — the same
//! serial instance schedules, rendezvous transfers, and round-robin
//! replication — but computed as a genuine discrete-event simulation:
//! state machines per module instance, condition re-evaluation on every
//! event, and a future-event list, instead of the closed-form forward
//! sweep. The two implementations cross-validate each other (see the
//! tests here and `tests/sim_validation.rs`); they must agree to
//! floating-point noise on every valid mapping.

use std::collections::HashMap;

use pipemap_chain::{module_response, Mapping, TaskChain};
use pipemap_obs::{BottleneckTracker, JourneyCollector, JourneyKind, JourneySink};

use crate::engine::Engine;
use crate::noise::NoiseModel;
use crate::pipeline::{CostPerturbation, SimConfig, SimResult, EVENT_WINDOW};
use crate::stats::Summary;

/// Events of the pipeline model.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Data set `n` becomes available at the pipeline entrance.
    Arrival { n: usize },
    /// The transfer of data set `n` into module `i` completed (both the
    /// sender and receiver instances are released; the receiver starts
    /// executing).
    TransferEnd { module: usize, n: usize },
    /// Module `i`'s instance finished executing data set `n`.
    ExecEnd { module: usize, n: usize },
}

struct Model {
    l: usize,
    n_data: usize,
    replicas: Vec<usize>,
    /// (incoming, exec) noise-free durations per module.
    durations: Vec<(f64, f64)>,
    noise: Option<NoiseModel>,
    /// exec_done[(i, n)] — module i finished computing data set n and its
    /// output has not yet been shipped.
    exec_done: HashMap<(usize, usize), bool>,
    /// input_ready[n] — data set n has arrived (module 0 only).
    input_ready: Vec<bool>,
    /// ready_for[(i, c)] = the data set index instance (i, c) will accept
    /// next (it is idle and waiting to receive exactly that data set).
    ready_for: HashMap<(usize, usize), usize>,
    start_times: Vec<f64>,
    finish_times: Vec<f64>,
    busy: Vec<f64>,
    /// Journey tracing sink (virtual timestamps, sim-seconds × 1e6).
    journey: Option<JourneySink>,
    /// Mid-stream cost drift, applied exactly as in the forward sweep.
    perturb: Option<CostPerturbation>,
    /// Per-(dataset, stage) sampled exec durations, row-major `n × l`,
    /// fed to the bottleneck tracker when the data set completes.
    svc: Vec<f64>,
    tracker: Option<BottleneckTracker>,
}

impl Model {
    fn sample(&mut self, d: f64) -> f64 {
        match &mut self.noise {
            Some(n) => n.perturb(d),
            None => d,
        }
    }

    /// Noise-free exec duration of module `i` for data set `n`, with the
    /// configured perturbation applied.
    fn exec_base(&self, i: usize, n: usize) -> f64 {
        let base = self.durations[i].1;
        match self.perturb {
            Some(p) if p.stage == i && n >= p.after => base * p.factor,
            _ => base,
        }
    }

    fn journal(&mut self, t_s: f64, kind: JourneyKind, n: usize, stage: u32, instance: u32) {
        if let Some(j) = self.journey.as_mut() {
            j.record_at(t_s * 1e6, kind, n, stage, instance, 0);
        }
    }

    /// Try to begin moving data set `n` into module `i` (for `i = 0`,
    /// "moving" is just picking up the arrived input). Fires at most
    /// once per (i, n): the guards consume the enabling state.
    fn try_start(&mut self, eng: &mut Engine<Ev>, i: usize, n: usize) {
        if n >= self.n_data {
            return;
        }
        let c = n % self.replicas[i];
        if self.ready_for.get(&(i, c)) != Some(&n) {
            return;
        }
        let upstream_ok = if i == 0 {
            self.input_ready[n]
        } else {
            *self.exec_done.get(&(i - 1, n)).unwrap_or(&false)
        };
        if !upstream_ok {
            return;
        }
        // Consume the enabling state.
        self.ready_for.remove(&(i, c));
        let now = eng.now();
        self.journal(now, JourneyKind::Dequeue, n, i as u32, c as u32);
        if i == 0 {
            self.start_times[n] = now;
            // No incoming transfer: service starts the moment the data
            // set is picked up.
            self.journal(now, JourneyKind::ServiceStart, n, 0, c as u32);
            let base = self.exec_base(0, n);
            let dur = self.sample(base);
            self.busy[0] += dur;
            self.svc[n * self.l] = dur;
            eng.schedule_in(dur, Ev::ExecEnd { module: 0, n });
        } else {
            self.exec_done.insert((i - 1, n), false);
            let dur = self.sample(self.durations[i].0);
            // Transfer occupies sender and receiver: both counted busy.
            self.busy[i - 1] += dur;
            self.busy[i] += dur;
            eng.schedule_in(dur, Ev::TransferEnd { module: i, n });
        }
    }

    fn handle(&mut self, eng: &mut Engine<Ev>, ev: Ev) {
        match ev {
            Ev::Arrival { n } => {
                self.input_ready[n] = true;
                let now = eng.now();
                self.journal(now, JourneyKind::Source, n, 0, 0);
                let c = (n % self.replicas[0]) as u32;
                self.journal(now, JourneyKind::Enqueue, n, 0, c);
                self.try_start(eng, 0, n);
            }
            Ev::TransferEnd { module: i, n } => {
                // Receiver starts executing immediately.
                let now = eng.now();
                let c = (n % self.replicas[i]) as u32;
                self.journal(now, JourneyKind::ServiceStart, n, i as u32, c);
                let base = self.exec_base(i, n);
                let dur = self.sample(base);
                self.busy[i] += dur;
                self.svc[n * self.l + i] = dur;
                eng.schedule_in(dur, Ev::ExecEnd { module: i, n });
                // The sender instance becomes free for its next data set
                // — unless the edge costs nothing, in which case it was
                // released at its ExecEnd (a free transfer is a buffered
                // handoff, not a rendezvous; the forward sweep has the
                // same semantics).
                if self.durations[i].0 > 0.0 {
                    let up = i - 1;
                    let cu = n % self.replicas[up];
                    let next = n + self.replicas[up];
                    self.ready_for.insert((up, cu), next);
                    self.try_start(eng, up, next);
                }
            }
            Ev::ExecEnd { module: i, n } => {
                let now = eng.now();
                let c = (n % self.replicas[i]) as u32;
                self.journal(now, JourneyKind::ServiceEnd, n, i as u32, c);
                self.journal(now, JourneyKind::Send, n, i as u32, c);
                if i + 1 < self.l {
                    // The output is now available for the downstream
                    // module (it may wait for the rendezvous).
                    let cd = (n % self.replicas[i + 1]) as u32;
                    self.journal(now, JourneyKind::Enqueue, n, (i + 1) as u32, cd);
                } else {
                    self.journal(now, JourneyKind::Sink, n, self.l as u32, 0);
                    if let Some(tr) = self.tracker.as_mut() {
                        let row = &self.svc[n * self.l..(n + 1) * self.l];
                        tr.observe(now * 1e6, row);
                    }
                }
                if i + 1 == self.l {
                    // Output leaves for free; the instance is done with n.
                    self.finish_times[n] = eng.now();
                    let c = n % self.replicas[i];
                    let next = n + self.replicas[i];
                    self.ready_for.insert((i, c), next);
                    self.try_start(eng, i, next);
                } else {
                    // The output waits for the downstream rendezvous.
                    self.exec_done.insert((i, n), true);
                    if self.durations[i + 1].0 == 0.0 {
                        // Free edge: the handoff does not occupy this
                        // instance, so it is immediately available for
                        // its next data set.
                        let c = n % self.replicas[i];
                        let next = n + self.replicas[i];
                        self.ready_for.insert((i, c), next);
                        self.try_start(eng, i, next);
                    }
                    self.try_start(eng, i + 1, n);
                }
            }
        }
    }
}

/// Event-driven equivalent of [`crate::pipeline::simulate`]. Returns the
/// same [`SimResult`] fields (the activity trace is not collected).
pub fn simulate_des(chain: &TaskChain, mapping: &Mapping, config: &SimConfig) -> SimResult {
    let l = mapping.num_modules();
    assert!(l >= 1, "mapping has no modules");
    assert!(
        config.num_datasets > config.warmup,
        "need more data sets than warmup"
    );
    let n_data = config.num_datasets;
    let durations: Vec<(f64, f64)> = (0..l)
        .map(|i| {
            let r = module_response(chain, mapping, i);
            (r.incoming, r.exec)
        })
        .collect();
    let replicas: Vec<usize> = mapping.modules.iter().map(|m| m.replicas).collect();

    let mut model = Model {
        l,
        n_data,
        replicas: replicas.clone(),
        durations,
        noise: config.noise.clone(),
        exec_done: HashMap::new(),
        input_ready: vec![false; n_data],
        ready_for: HashMap::new(),
        start_times: vec![0.0; n_data],
        finish_times: vec![0.0; n_data],
        busy: vec![0.0; l],
        journey: config.journeys.as_ref().map(JourneyCollector::sink),
        perturb: config.perturb,
        svc: vec![0.0; n_data * l],
        tracker: config
            .events
            .as_ref()
            .map(|log| BottleneckTracker::new(&replicas, EVENT_WINDOW, log.clone())),
    };
    // Every instance starts idle, waiting for its first data set.
    for (i, &r) in replicas.iter().enumerate() {
        for c in 0..r {
            model.ready_for.insert((i, c), c);
        }
    }

    let mut eng: Engine<Ev> = Engine::new();
    for n in 0..n_data {
        let at = match config.arrival_period {
            Some(period) => n as f64 * period,
            None => 0.0,
        };
        eng.schedule_at(at, Ev::Arrival { n });
    }
    // Bound: every data set generates ≤ 2 events per module + 1 arrival.
    let cap = (n_data as u64) * (2 * l as u64 + 2) + 16;
    eng.run(cap, |eng, _t, ev| model.handle(eng, ev));
    // Hand any buffered journey events to the collector before reporting.
    model.journey.take();

    let makespan = model.finish_times[n_data - 1];
    let w = config.warmup;
    let window = model.finish_times[n_data - 1] - model.finish_times[w];
    let throughput = if window > 0.0 {
        (n_data - 1 - w) as f64 / window
    } else {
        f64::INFINITY
    };
    let start_ref: Vec<f64> = if config.arrival_period.is_some() {
        (0..n_data)
            .map(|n| n as f64 * config.arrival_period.unwrap())
            .collect()
    } else {
        model.start_times.clone()
    };
    let latencies: Vec<f64> = (w..n_data)
        .map(|n| model.finish_times[n] - start_ref[n])
        .collect();
    let latency = Summary::of(&latencies).expect("post-warmup window non-empty");
    let utilization = (0..l)
        .map(|i| {
            if makespan <= 0.0 {
                0.0
            } else {
                model.busy[i] / (replicas[i] as f64 * makespan)
            }
        })
        .collect();
    SimResult {
        throughput,
        makespan,
        latency,
        utilization,
        trace: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::simulate;
    use pipemap_chain::{ChainBuilder, Edge, ModuleAssignment, Task};
    use pipemap_model::{PolyEcom, PolyUnary};

    fn chain3() -> TaskChain {
        ChainBuilder::new()
            .task(Task::new("a", PolyUnary::new(0.5, 4.0, 0.0)))
            .edge(Edge::new(
                PolyUnary::new(0.1, 0.0, 0.0),
                PolyEcom::new(0.3, 0.5, 0.5, 0.0, 0.0),
            ))
            .task(Task::new("b", PolyUnary::new(0.2, 6.0, 0.0)))
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(0.2, 0.25, 0.25, 0.0, 0.0),
            ))
            .task(Task::new("c", PolyUnary::new(0.1, 2.0, 0.0)))
            .build()
    }

    fn agree(mapping: Mapping, cfg: &SimConfig) {
        let c = chain3();
        let sweep = simulate(&c, &mapping, cfg);
        let des = simulate_des(&c, &mapping, cfg);
        assert!(
            (sweep.throughput - des.throughput).abs() <= 1e-9 * sweep.throughput.abs().max(1.0),
            "throughput: sweep {} vs des {}",
            sweep.throughput,
            des.throughput
        );
        assert!(
            (sweep.latency.mean - des.latency.mean).abs()
                <= 1e-9 * sweep.latency.mean.abs().max(1.0),
            "latency: sweep {} vs des {}",
            sweep.latency.mean,
            des.latency.mean
        );
        assert!((sweep.makespan - des.makespan).abs() <= 1e-9 * sweep.makespan.max(1.0));
        for (a, b) in sweep.utilization.iter().zip(&des.utilization) {
            assert!((a - b).abs() < 1e-9, "utilization {a} vs {b}");
        }
    }

    #[test]
    fn matches_forward_sweep_unreplicated() {
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 1, 2),
            ModuleAssignment::new(1, 1, 1, 3),
            ModuleAssignment::new(2, 2, 1, 1),
        ]);
        agree(m, &SimConfig::with_datasets(200));
    }

    #[test]
    fn matches_forward_sweep_with_replication() {
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 3, 2),
            ModuleAssignment::new(1, 1, 2, 3),
            ModuleAssignment::new(2, 2, 4, 1),
        ]);
        agree(m, &SimConfig::with_datasets(400));
    }

    #[test]
    fn matches_forward_sweep_fused() {
        let m = Mapping::new(vec![ModuleAssignment::new(0, 2, 2, 4)]);
        agree(m, &SimConfig::with_datasets(150));
    }

    #[test]
    fn matches_forward_sweep_open_loop() {
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 1, 2, 2),
            ModuleAssignment::new(2, 2, 1, 2),
        ]);
        agree(m, &SimConfig::with_datasets(120).with_arrival_period(9.0));
    }

    #[test]
    fn single_module_single_instance() {
        let m = Mapping::new(vec![ModuleAssignment::new(0, 2, 1, 4)]);
        agree(m, &SimConfig::with_datasets(60));
    }

    #[test]
    fn perturbed_runs_agree_and_emit_bottleneck_change() {
        use pipemap_obs::{EventKind, EventLog, EventLogConfig};
        let c = chain3();
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 1, 2),
            ModuleAssignment::new(1, 1, 1, 3),
            ModuleAssignment::new(2, 2, 1, 1),
        ]);
        // Stage execs are 2.5 / 2.2 / 2.1 s: stage 0 governs until the
        // 6x slowdown moves the bottleneck to stage 2 mid-stream.
        let base = SimConfig::with_datasets(300).with_perturbation(100, 2, 6.0);
        let ls = EventLog::new(EventLogConfig::default());
        let ld = EventLog::new(EventLogConfig::default());
        let sweep = simulate(&c, &m, &base.clone().with_events(ls.clone()));
        let des = simulate_des(&c, &m, &base.with_events(ld.clone()));
        assert!(
            (sweep.throughput - des.throughput).abs() <= 1e-9 * sweep.throughput.abs().max(1.0),
            "perturbed throughput: sweep {} vs des {}",
            sweep.throughput,
            des.throughput
        );
        assert!((sweep.makespan - des.makespan).abs() <= 1e-9 * sweep.makespan.max(1.0));
        // The perturbation actually bit: slower than the unperturbed run.
        let clean = simulate(&c, &m, &SimConfig::with_datasets(300));
        assert!(sweep.throughput < 0.5 * clean.throughput);
        for (name, log) in [("sweep", ls), ("des", ld)] {
            let events = log.snapshot();
            let change = events
                .iter()
                .find(|e| e.kind == EventKind::BottleneckChange)
                .unwrap_or_else(|| panic!("{name}: no bottleneck_change in {events:?}"));
            assert_eq!(change.stage, Some(2), "{name}: moved to the slow stage");
        }
    }

    #[test]
    fn journeys_match_between_sweep_and_des() {
        use pipemap_obs::{stitch, JourneyCollector, JourneyConfig};
        let c = chain3();
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 2, 2),
            ModuleAssignment::new(1, 1, 1, 3),
            ModuleAssignment::new(2, 2, 3, 1),
        ]);
        let cfg = SimConfig::with_datasets(60);
        let cs = JourneyCollector::new(JourneyConfig::default());
        let cd = JourneyCollector::new(JourneyConfig::default());
        let _ = simulate(&c, &m, &cfg.clone().with_journeys(cs.clone()));
        let _ = simulate_des(&c, &m, &cfg.with_journeys(cd.clone()));
        let js = stitch(&cs.drain());
        let jd = stitch(&cd.drain());
        assert_eq!(js.len(), 60);
        assert_eq!(jd.len(), 60);
        for (a, b) in js.iter().zip(&jd) {
            assert!(a.complete(3) && a.monotone(), "sweep journey {a:?}");
            assert!(b.complete(3) && b.monotone(), "des journey {b:?}");
            // Replica identity matches the round-robin assignment.
            for (s, h) in a.hops.iter().enumerate() {
                assert_eq!(h.instance as u64, a.seq % [2u64, 1, 3][s]);
            }
            // The two simulators produce the same timestamps.
            let ta = a.timeline();
            let tb = b.timeline();
            assert_eq!(ta.len(), tb.len());
            for (x, y) in ta.iter().zip(&tb) {
                assert!(
                    (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                    "seq {}: sweep {x} vs des {y}",
                    a.seq
                );
            }
        }
    }
}
