//! Activity traces and Gantt rendering (the paper's Figure 2).

/// What an instance is doing during an interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActivityKind {
    /// Receiving a data set from the previous module (rendezvous).
    Recv,
    /// Executing the module's tasks.
    Exec,
    /// Sending the result to the next module (rendezvous).
    Send,
}

impl ActivityKind {
    fn glyph(&self) -> char {
        match self {
            ActivityKind::Recv => 'r',
            ActivityKind::Exec => '#',
            ActivityKind::Send => 's',
        }
    }
}

/// One recorded activity interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Activity {
    /// Module index in the mapping.
    pub module: usize,
    /// Instance index within the module.
    pub instance: usize,
    /// Data set number being processed.
    pub dataset: usize,
    /// Kind of activity.
    pub kind: ActivityKind,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

/// A collection of activities from one simulation run.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Recorded activities in schedule order.
    pub activities: Vec<Activity>,
}

impl Trace {
    /// Record an activity (zero-duration activities are skipped).
    pub fn push(&mut self, a: Activity) {
        if a.end > a.start {
            self.activities.push(a);
        }
    }

    /// Busy time of one instance.
    pub fn busy_time(&self, module: usize, instance: usize) -> f64 {
        self.activities
            .iter()
            .filter(|a| a.module == module && a.instance == instance)
            .map(|a| a.end - a.start)
            .sum()
    }

    /// End time of the last recorded activity.
    pub fn makespan(&self) -> f64 {
        self.activities.iter().map(|a| a.end).fold(0.0, f64::max)
    }

    /// Render the trace as an ASCII Gantt chart with `width` time columns
    /// (one row per module instance): `r` = receive, `#` = execute,
    /// `s` = send, `.` = idle. This is the Figure 2 execution-model
    /// picture generated from an actual run.
    pub fn render_gantt(&self, width: usize) -> String {
        if self.activities.is_empty() {
            return String::new();
        }
        let makespan = self.makespan();
        let mut rows: Vec<(usize, usize)> = self
            .activities
            .iter()
            .map(|a| (a.module, a.instance))
            .collect();
        rows.sort_unstable();
        rows.dedup();
        let mut out = String::new();
        for &(m, inst) in &rows {
            let mut line = vec!['.'; width];
            for a in self
                .activities
                .iter()
                .filter(|a| a.module == m && a.instance == inst)
            {
                let from = ((a.start / makespan) * width as f64).floor() as usize;
                let to = (((a.end / makespan) * width as f64).ceil() as usize).min(width);
                for cell in &mut line[from.min(width.saturating_sub(1))..to] {
                    *cell = a.kind.glyph();
                }
            }
            out.push_str(&format!("m{m}.{inst:<2} |"));
            out.extend(line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(module: usize, instance: usize, kind: ActivityKind, start: f64, end: f64) -> Activity {
        Activity {
            module,
            instance,
            dataset: 0,
            kind,
            start,
            end,
        }
    }

    #[test]
    fn busy_time_sums_per_instance() {
        let mut t = Trace::default();
        t.push(act(0, 0, ActivityKind::Exec, 0.0, 2.0));
        t.push(act(0, 0, ActivityKind::Send, 2.0, 3.0));
        t.push(act(1, 0, ActivityKind::Exec, 3.0, 4.0));
        assert!((t.busy_time(0, 0) - 3.0).abs() < 1e-12);
        assert!((t.busy_time(1, 0) - 1.0).abs() < 1e-12);
        assert!((t.makespan() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_activities_skipped() {
        let mut t = Trace::default();
        t.push(act(0, 0, ActivityKind::Recv, 1.0, 1.0));
        assert!(t.activities.is_empty());
    }

    #[test]
    fn gantt_has_one_row_per_instance() {
        let mut t = Trace::default();
        t.push(act(0, 0, ActivityKind::Exec, 0.0, 1.0));
        t.push(act(0, 1, ActivityKind::Exec, 0.0, 1.0));
        t.push(act(1, 0, ActivityKind::Exec, 1.0, 2.0));
        let g = t.render_gantt(20);
        assert_eq!(g.trim_end().lines().count(), 3);
        assert!(g.contains("m0.0"));
        assert!(g.contains("m1.0"));
        assert!(g.contains('#'));
    }

    #[test]
    fn empty_trace_renders_empty() {
        assert_eq!(Trace::default().render_gantt(10), "");
    }
}
