//! # pipemap-sim
//!
//! Discrete-event simulation of a mapped task chain processing a stream of
//! data sets — the stand-in for running the program on the real machine.
//! Where `pipemap-chain`'s evaluator computes the *analytic* steady-state
//! throughput `1 / max_i (f_i / r_i)`, this crate actually *executes* the
//! pipeline event by event and measures the throughput that emerges, so
//! that
//!
//! * the execution model of §2.1 (sender and receiver both occupied for a
//!   transfer's whole duration, instances of a replicated module serving
//!   alternate data sets round-robin) is validated against its closed
//!   form, and
//! * per-activity noise can be injected to model the run-to-run variation
//!   of a real machine, producing the paper's "measured" columns.
//!
//! The simulation follows each instance's serial schedule — receive,
//! execute, send, repeat — with transfers as rendezvous between the two
//! instances involved. A [`trace::Trace`] of every activity can be
//! collected and rendered as the Gantt chart of the paper's Figure 2.

pub mod des_pipeline;
pub mod engine;
pub mod noise;
pub mod pipeline;
pub mod replicate;
pub mod stats;
pub mod trace;
pub mod trace_export;

pub use des_pipeline::simulate_des;
pub use engine::{Engine, SimTime};
pub use noise::NoiseModel;
pub use pipeline::{
    simulate, steady_state_throughput, steady_state_throughput_with_ecom, CostPerturbation,
    SimConfig, SimResult,
};
pub use replicate::{replicate_simulation, ReplicatedResult};
pub use stats::{percent_difference, percentile, Summary};
pub use trace::{Activity, ActivityKind, Trace};
pub use trace_export::{chrome_trace_json, trace_events, trace_jsonl};
