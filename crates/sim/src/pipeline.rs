//! The pipeline simulator.
//!
//! Every module instance runs a serial schedule over the data sets it is
//! responsible for (`n ≡ instance (mod r)`): *receive* the data set from
//! the upstream instance (a rendezvous that occupies both sides, §2.1),
//! *execute* the module's tasks, *send* downstream (another rendezvous).
//! The first module's external input is always available; the last
//! module's output leaves for free.
//!
//! The schedule is computed by a forward sweep over data sets: because the
//! chain is linear and each instance is serial, the start of every
//! activity is the max of (a) when its inputs are ready and (b) when the
//! instances involved become free — no event queue is needed, yet the
//! result is exactly the event-driven schedule.

use pipemap_chain::{module_response, Mapping, TaskChain};
use pipemap_obs::{BottleneckTracker, EventLog, JourneyCollector, JourneyKind};

use crate::noise::NoiseModel;
use crate::stats::Summary;
use crate::trace::{Activity, ActivityKind, Trace};

/// Data sets per bottleneck re-evaluation window when an event log is
/// attached (shared by the sweep and DES simulators so their event
/// streams match).
pub(crate) const EVENT_WINDOW: usize = 16;

/// A mid-stream multiplicative change to one stage's execution cost:
/// data sets with index `>= after` see stage `stage`'s exec time
/// multiplied by `factor`. Both simulators apply it identically (so
/// their 1e-9 equivalence holds under drift); it provides a known
/// ground truth for the online estimators and the drift doctor.
#[derive(Clone, Copy, Debug)]
pub struct CostPerturbation {
    /// First data-set index affected.
    pub after: usize,
    /// Module (stage) index whose exec cost changes.
    pub stage: usize,
    /// Multiplier applied to the stage's exec duration.
    pub factor: f64,
}

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Data sets to push through the pipeline.
    pub num_datasets: usize,
    /// Data sets discarded from the front before measuring throughput
    /// (pipeline fill).
    pub warmup: usize,
    /// Optional per-activity multiplicative noise.
    pub noise: Option<NoiseModel>,
    /// Seconds between successive data-set arrivals at the first module.
    /// `None` models a saturated source (the paper's regime: data sets
    /// are always available); `Some(period)` models an open-loop source
    /// such as a camera, letting latency be measured below saturation.
    pub arrival_period: Option<f64>,
    /// Collect a full activity trace (costs memory proportional to
    /// `num_datasets × modules`).
    pub collect_trace: bool,
    /// Per-dataset journey tracing: when set, the simulators record the
    /// same enqueue/dequeue/service/send events as the real executor
    /// (virtual timestamps, simulated-seconds × 1e6), so the doctor's
    /// analysis runs identically on simulated and real executions.
    pub journeys: Option<JourneyCollector>,
    /// Optional mid-stream cost drift (see [`CostPerturbation`]).
    pub perturb: Option<CostPerturbation>,
    /// Structured-event emission: when set, a [`BottleneckTracker`]
    /// watches the per-data-set exec services and emits
    /// `bottleneck_change` events into the log as the perturbation (or
    /// noise) moves the governing stage. Emission never alters the
    /// simulated schedule, so sweep/DES equivalence is unaffected.
    pub events: Option<EventLog>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            num_datasets: 200,
            warmup: 40,
            noise: None,
            arrival_period: None,
            collect_trace: false,
            journeys: None,
            perturb: None,
            events: None,
        }
    }
}

impl SimConfig {
    /// A config processing `n` data sets with a 20% warmup.
    pub fn with_datasets(n: usize) -> Self {
        Self {
            num_datasets: n,
            warmup: n / 5,
            ..Self::default()
        }
    }

    /// Enable noise.
    pub fn with_noise(mut self, spread: f64, seed: u64) -> Self {
        self.noise = Some(NoiseModel::new(spread, seed));
        self
    }

    /// Enable trace collection.
    pub fn with_trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }

    /// Model an open-loop source delivering one data set every `period`
    /// seconds.
    pub fn with_arrival_period(mut self, period: f64) -> Self {
        assert!(period > 0.0 && period.is_finite());
        self.arrival_period = Some(period);
        self
    }

    /// Attach a journey collector (see [`SimConfig::journeys`]).
    pub fn with_journeys(mut self, journeys: JourneyCollector) -> Self {
        self.journeys = Some(journeys);
        self
    }

    /// Multiply stage `stage`'s exec cost by `factor` from data set
    /// `after` onward (see [`CostPerturbation`]).
    pub fn with_perturbation(mut self, after: usize, stage: usize, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite(), "factor must be > 0");
        self.perturb = Some(CostPerturbation {
            after,
            stage,
            factor,
        });
        self
    }

    /// Attach an event log (see [`SimConfig::events`]).
    pub fn with_events(mut self, events: EventLog) -> Self {
        self.events = Some(events);
        self
    }
}

/// Results of one simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Measured steady-state throughput, data sets per second, over the
    /// post-warmup window.
    pub throughput: f64,
    /// Completion time of the final data set (makespan).
    pub makespan: f64,
    /// Per-data-set latency summary (first-module start → last-module
    /// output), post-warmup.
    pub latency: Summary,
    /// Busy fraction per module (averaged over instances), post-warmup
    /// window approximated over the whole run.
    pub utilization: Vec<f64>,
    /// Activity trace, if requested.
    pub trace: Option<Trace>,
}

/// Simulate `mapping` of `chain` over a stream of data sets.
///
/// # Panics
///
/// Panics if the mapping is structurally invalid for the chain (validate
/// first) or `num_datasets <= warmup`.
pub fn simulate(chain: &TaskChain, mapping: &Mapping, config: &SimConfig) -> SimResult {
    let l = mapping.num_modules();
    assert!(l >= 1, "mapping has no modules");
    assert!(
        config.num_datasets > config.warmup,
        "need more data sets than warmup"
    );
    let n_data = config.num_datasets;
    let mut noise = config.noise.clone();

    // Live metrics (no-op when no registry is installed): monotonic
    // counters the flight recorder turns into data-sets/sec and
    // activities/sec rates while a long simulation runs.
    let rec = pipemap_obs::global();
    let datasets_ctr = rec.counter("sim.datasets.completed");
    let activities_ctr = rec.counter("sim.activities");

    // Noise-free durations per module: (incoming, exec) — outgoing of
    // module i equals incoming of module i+1 and is sampled once per
    // transfer below.
    let durations: Vec<(f64, f64)> = (0..l)
        .map(|i| {
            let r = module_response(chain, mapping, i);
            (r.incoming, r.exec)
        })
        .collect();
    let replicas: Vec<usize> = mapping.modules.iter().map(|m| m.replicas).collect();

    // free[i][c] = time instance c of module i becomes free.
    let mut free: Vec<Vec<f64>> = replicas.iter().map(|&r| vec![0.0; r]).collect();
    let mut busy: Vec<Vec<f64>> = replicas.iter().map(|&r| vec![0.0; r]).collect();
    // output_ready[i] = for the current data set, when module i's exec
    // finished (computed in the forward sweep).
    let mut start_times = vec![0.0f64; n_data];
    let mut finish_times = vec![0.0f64; n_data];
    let mut trace = config.collect_trace.then(Trace::default);
    let mut jsink = config.journeys.as_ref().map(JourneyCollector::sink);
    let mut tracker = config
        .events
        .as_ref()
        .map(|log| BottleneckTracker::new(&replicas, EVENT_WINDOW, log.clone()));
    let mut services = vec![0.0f64; l];

    let sample = |d: f64, noise: &mut Option<NoiseModel>| -> f64 {
        match noise {
            Some(n) => n.perturb(d),
            None => d,
        }
    };

    for n in 0..n_data {
        let mut activities = 0u64;
        // An open-loop source gates the first module on the data set's
        // arrival time; a saturated source has everything ready at t=0.
        let mut upstream_done = match config.arrival_period {
            Some(period) => n as f64 * period,
            None => 0.0,
        };
        let arrival = upstream_done;
        for i in 0..l {
            let c = n % replicas[i];
            let (incoming, exec) = durations[i];
            // Receive rendezvous: needs upstream output and both
            // instances free. The upstream instance is free at
            // `upstream_done` by construction of its serial schedule
            // (its send immediately follows its exec).
            let mut t = free[i][c].max(upstream_done);
            if let Some(j) = jsink.as_mut() {
                if i == 0 {
                    j.record_at(arrival * 1e6, JourneyKind::Source, n, 0, 0, 0);
                }
                // The data set is available for module i the moment the
                // upstream exec finished (arrival for module 0); the
                // receive rendezvous begins at t.
                j.record_at(
                    upstream_done * 1e6,
                    JourneyKind::Enqueue,
                    n,
                    i as u32,
                    c as u32,
                    0,
                );
                j.record_at(t * 1e6, JourneyKind::Dequeue, n, i as u32, c as u32, 0);
            }
            if i > 0 && incoming > 0.0 {
                let dur = sample(incoming, &mut noise);
                let cu = n % replicas[i - 1];
                if let Some(tr) = trace.as_mut() {
                    tr.push(Activity {
                        module: i - 1,
                        instance: cu,
                        dataset: n,
                        kind: ActivityKind::Send,
                        start: t,
                        end: t + dur,
                    });
                    tr.push(Activity {
                        module: i,
                        instance: c,
                        dataset: n,
                        kind: ActivityKind::Recv,
                        start: t,
                        end: t + dur,
                    });
                }
                busy[i - 1][cu] += dur;
                busy[i][c] += dur;
                // The sender is occupied until the transfer completes.
                free[i - 1][cu] = t + dur;
                t += dur;
                activities += 2;
            }
            if i == 0 {
                // Latency is measured from arrival (sojourn time): under
                // a saturated source arrival is t = 0 for everyone, so
                // the pre-existing semantics — latency from the moment
                // the instance picks the data set up — are preserved by
                // clamping to the actual start.
                start_times[n] = if config.arrival_period.is_some() {
                    arrival
                } else {
                    t
                };
            }
            let exec = match config.perturb {
                Some(p) if p.stage == i && n >= p.after => exec * p.factor,
                _ => exec,
            };
            let dur = sample(exec, &mut noise);
            services[i] = dur;
            if let Some(tr) = trace.as_mut() {
                tr.push(Activity {
                    module: i,
                    instance: c,
                    dataset: n,
                    kind: ActivityKind::Exec,
                    start: t,
                    end: t + dur,
                });
            }
            if let Some(j) = jsink.as_mut() {
                j.record_at(t * 1e6, JourneyKind::ServiceStart, n, i as u32, c as u32, 0);
                let end = (t + dur) * 1e6;
                j.record_at(end, JourneyKind::ServiceEnd, n, i as u32, c as u32, 0);
                j.record_at(end, JourneyKind::Send, n, i as u32, c as u32, 0);
            }
            busy[i][c] += dur;
            t += dur;
            free[i][c] = t;
            upstream_done = t;
            activities += 1;
        }
        finish_times[n] = upstream_done;
        if let Some(j) = jsink.as_mut() {
            j.record_at(upstream_done * 1e6, JourneyKind::Sink, n, l as u32, 0, 0);
        }
        if let Some(tr) = tracker.as_mut() {
            tr.observe(upstream_done * 1e6, &services);
        }
        datasets_ctr.add(1);
        activities_ctr.add(activities);
    }

    let makespan = finish_times[n_data - 1];
    let w = config.warmup;
    let window = finish_times[n_data - 1] - finish_times[w];
    let throughput = if window > 0.0 {
        (n_data - 1 - w) as f64 / window
    } else {
        f64::INFINITY
    };
    let latencies: Vec<f64> = (w..n_data)
        .map(|n| finish_times[n] - start_times[n])
        .collect();
    let latency = Summary::of(&latencies).expect("post-warmup window non-empty");
    if rec.enabled() {
        let lat_hist = rec.histogram("sim.latency_s");
        for &lat in &latencies {
            lat_hist.record(lat);
        }
        rec.gauge_set("sim.throughput", throughput);
    }
    let utilization = (0..l)
        .map(|i| {
            if makespan <= 0.0 {
                return 0.0;
            }
            let total: f64 = busy[i].iter().sum();
            total / (replicas[i] as f64 * makespan)
        })
        .collect();

    SimResult {
        throughput,
        makespan,
        latency,
        utilization,
        trace,
    }
}

/// The paper's closed-form steady-state throughput,
/// `1 / max_i (s_i / r_i)`, from *measured* per-stage service times
/// rather than model costs: `service_s[i]` is stage `i`'s mean seconds
/// per data set on one instance, `replicas[i]` its replication degree.
///
/// This is how a [`run_load`](../pipemap_exec/driver/fn.run_load.html)
/// measurement is validated: feed the per-stage busy means observed by
/// the executor back through the analytic form and compare predicted
/// against achieved datasets/sec.
///
/// # Panics
///
/// Panics if the slices differ in length or a replica count is zero.
pub fn steady_state_throughput(service_s: &[f64], replicas: &[usize]) -> f64 {
    assert_eq!(
        service_s.len(),
        replicas.len(),
        "one replica count per stage"
    );
    let bottleneck = service_s
        .iter()
        .zip(replicas)
        .map(|(&s, &r)| {
            assert!(r >= 1, "replica counts must be >= 1");
            s / r as f64
        })
        .fold(0.0f64, f64::max);
    if bottleneck <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / bottleneck
    }
}

/// Steady-state throughput with per-stage communication cost folded in:
/// `1 / max_i ((service_s[i] + ecom_s[i]) / replicas[i])`.
///
/// `ecom_s[i]` is the measured (calibrated) per-data-set transport time
/// a stage-`i` instance spends sending its output downstream — the
/// paper's `f_ecom`, priced from real cross-process runs instead of a
/// fixed model constant. Replication divides the communication work
/// exactly like the compute work: alternate data sets leave from
/// distinct instances.
///
/// # Panics
///
/// Panics if the slices differ in length or a replica count is zero.
pub fn steady_state_throughput_with_ecom(
    service_s: &[f64],
    ecom_s: &[f64],
    replicas: &[usize],
) -> f64 {
    assert_eq!(
        service_s.len(),
        ecom_s.len(),
        "one communication cost per stage"
    );
    let loaded: Vec<f64> = service_s.iter().zip(ecom_s).map(|(&s, &e)| s + e).collect();
    steady_state_throughput(&loaded, replicas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_chain::{throughput, ChainBuilder, Edge, Mapping, ModuleAssignment, Task};
    use pipemap_model::{PolyEcom, PolyUnary};

    fn chain2(w1: f64, w2: f64, ecom_fixed: f64) -> pipemap_chain::TaskChain {
        ChainBuilder::new()
            .task(Task::new("a", PolyUnary::perfectly_parallel(w1)))
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(ecom_fixed, 0.0, 0.0, 0.0, 0.0),
            ))
            .task(Task::new("b", PolyUnary::perfectly_parallel(w2)))
            .build()
    }

    #[test]
    fn noise_free_matches_analytic_two_modules() {
        let c = chain2(8.0, 6.0, 0.5);
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 1, 4),
            ModuleAssignment::new(1, 1, 1, 3),
        ]);
        let analytic = throughput(&c, &m);
        let r = simulate(&c, &m, &SimConfig::with_datasets(400));
        assert!(
            (r.throughput - analytic).abs() < 1e-6 * analytic,
            "sim {} vs analytic {}",
            r.throughput,
            analytic
        );
    }

    #[test]
    fn noise_free_matches_analytic_with_replication() {
        let c = chain2(4.0, 4.0, 0.25);
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 3, 2),
            ModuleAssignment::new(1, 1, 2, 3),
        ]);
        let analytic = throughput(&c, &m);
        let r = simulate(&c, &m, &SimConfig::with_datasets(600));
        assert!(
            (r.throughput - analytic).abs() < 1e-3 * analytic,
            "sim {} vs analytic {}",
            r.throughput,
            analytic
        );
    }

    #[test]
    fn single_module_throughput() {
        let c = ChainBuilder::new()
            .task(Task::new("t", PolyUnary::new(2.0, 0.0, 0.0)))
            .build();
        let m = Mapping::new(vec![ModuleAssignment::new(0, 0, 1, 1)]);
        let r = simulate(&c, &m, &SimConfig::with_datasets(100));
        assert!((r.throughput - 0.5).abs() < 1e-9);
        assert!((r.latency.mean - 2.0).abs() < 1e-9);
        assert!((r.utilization[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn replicated_module_multiplies_throughput() {
        let c = ChainBuilder::new()
            .task(Task::new("t", PolyUnary::new(2.0, 0.0, 0.0)))
            .build();
        let m4 = Mapping::new(vec![ModuleAssignment::new(0, 0, 4, 1)]);
        // Replicas finish in batches of 4, so the measurement window can
        // be misaligned by up to r data sets — an O(r/N) artifact, hence
        // the long run and the 0.5% tolerance.
        let r = simulate(&c, &m4, &SimConfig::with_datasets(4000));
        assert!(
            (r.throughput - 2.0).abs() / 2.0 < 5e-3,
            "got {}",
            r.throughput
        );
        // Latency per data set unchanged.
        assert!((r.latency.mean - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_module_is_fully_utilized() {
        let c = chain2(8.0, 2.0, 0.0);
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 1, 2), // response 4.0 — bottleneck
            ModuleAssignment::new(1, 1, 1, 2), // response 1.0
        ]);
        let r = simulate(&c, &m, &SimConfig::with_datasets(300));
        assert!(
            r.utilization[0] > 0.95,
            "bottleneck util {}",
            r.utilization[0]
        );
        assert!(
            r.utilization[1] < 0.5,
            "idle module util {}",
            r.utilization[1]
        );
    }

    #[test]
    fn noise_perturbs_but_tracks_analytic() {
        let c = chain2(8.0, 6.0, 0.5);
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 1, 4),
            ModuleAssignment::new(1, 1, 1, 3),
        ]);
        let analytic = throughput(&c, &m);
        let r = simulate(&c, &m, &SimConfig::with_datasets(500).with_noise(0.08, 13));
        let rel = (r.throughput - analytic).abs() / analytic;
        assert!(rel < 0.15, "noisy sim off by {:.1}%", rel * 100.0);
        assert!(r.throughput != analytic);
    }

    #[test]
    fn trace_is_collected_when_requested() {
        let c = chain2(2.0, 2.0, 0.5);
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 1, 1),
            ModuleAssignment::new(1, 1, 1, 1),
        ]);
        let r = simulate(&c, &m, &SimConfig::with_datasets(10).with_trace());
        let t = r.trace.expect("trace requested");
        // Sends, recvs and execs all present.
        assert!(t.activities.iter().any(|a| a.kind == ActivityKind::Send));
        assert!(t.activities.iter().any(|a| a.kind == ActivityKind::Recv));
        assert!(t.activities.iter().any(|a| a.kind == ActivityKind::Exec));
        // Busy time consistency: module 0 = exec + send per data set.
        let per_ds = 2.0 + 0.5;
        assert!((t.busy_time(0, 0) - 10.0 * per_ds).abs() < 1e-9);
    }

    #[test]
    fn latency_exceeds_sum_when_queueing() {
        // Downstream slower than upstream: data sets queue, per-data-set
        // latency grows beyond the raw response sum.
        let c = chain2(1.0, 8.0, 0.0);
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 1, 1),
            ModuleAssignment::new(1, 1, 1, 1),
        ]);
        let r = simulate(&c, &m, &SimConfig::with_datasets(100));
        // Throughput capped by the slow module.
        assert!((r.throughput - 1.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn open_loop_below_saturation_gives_unloaded_latency() {
        // Saturation throughput of this mapping is 1/8 per second; feed
        // one data set every 20 s and the pipeline is always empty when
        // the next arrives, so every latency equals the unloaded
        // traversal time (exec a + transfer + exec b).
        let c = chain2(4.0, 8.0, 0.5);
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 1, 2),
            ModuleAssignment::new(1, 1, 1, 2),
        ]);
        let cfg = SimConfig::with_datasets(50).with_arrival_period(20.0);
        let r = simulate(&c, &m, &cfg);
        let unloaded = 2.0 + 0.5 + 4.0;
        assert!(
            (r.latency.mean - unloaded).abs() < 1e-9,
            "latency {} vs unloaded {}",
            r.latency.mean,
            unloaded
        );
        assert!((r.latency.max - r.latency.min).abs() < 1e-9);
        // Throughput equals the arrival rate, not the capacity.
        assert!((r.throughput - 0.05).abs() < 1e-6, "thr {}", r.throughput);
    }

    #[test]
    fn open_loop_above_saturation_queues() {
        // Arrivals faster than capacity: throughput caps at capacity and
        // latency grows far beyond the unloaded time.
        let c = chain2(4.0, 8.0, 0.0);
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 1, 2),
            ModuleAssignment::new(1, 1, 1, 2),
        ]);
        let cfg = SimConfig::with_datasets(200).with_arrival_period(1.0);
        let r = simulate(&c, &m, &cfg);
        assert!((r.throughput - 0.25).abs() < 1e-3, "thr {}", r.throughput);
        assert!(r.latency.max > 100.0, "queueing should blow up latency");
    }

    #[test]
    #[should_panic(expected = "more data sets than warmup")]
    fn warmup_validation() {
        let c = chain2(1.0, 1.0, 0.0);
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 1, 1),
            ModuleAssignment::new(1, 1, 1, 1),
        ]);
        let cfg = SimConfig {
            num_datasets: 5,
            warmup: 5,
            ..SimConfig::default()
        };
        let _ = simulate(&c, &m, &cfg);
    }

    #[test]
    fn steady_state_throughput_is_bottleneck_governed() {
        // Stage 1 at 4 s/dataset over 2 replicas is the 2 s bottleneck.
        let thr = steady_state_throughput(&[1.0, 4.0, 0.5], &[1, 2, 1]);
        assert!((thr - 0.5).abs() < 1e-12, "thr {thr}");
        // Replicating the bottleneck shifts it to the next stage.
        let thr = steady_state_throughput(&[1.0, 4.0, 0.5], &[1, 4, 1]);
        assert!((thr - 1.0).abs() < 1e-12, "thr {thr}");
        // Zero service times: infinite predicted throughput.
        assert!(steady_state_throughput(&[0.0, 0.0], &[1, 1]).is_infinite());
    }

    #[test]
    fn steady_state_throughput_matches_simulation() {
        // A noise-free simulation of a compute-only chain should land on
        // the closed form from the same service times.
        let c = chain2(3.0, 1.0, 0.0);
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 3, 1),
            ModuleAssignment::new(1, 1, 1, 1),
        ]);
        let r = simulate(&c, &m, &SimConfig::with_datasets(300));
        let predicted = steady_state_throughput(&[3.0, 1.0], &[3, 1]);
        assert!(
            (r.throughput - predicted).abs() / predicted < 0.02,
            "sim {} vs closed form {}",
            r.throughput,
            predicted
        );
    }

    #[test]
    #[should_panic(expected = "one replica count per stage")]
    fn steady_state_throughput_length_checked() {
        let _ = steady_state_throughput(&[1.0], &[1, 2]);
    }

    #[test]
    fn ecom_shifts_the_bottleneck() {
        // Compute alone says stage 0 (1 s) bounds; a 2 s transport cost
        // on stage 1 makes (0.5 + 2) / 1 the real bottleneck.
        let compute_only = steady_state_throughput_with_ecom(&[1.0, 0.5], &[0.0, 0.0], &[1, 1]);
        assert!((compute_only - 1.0).abs() < 1e-12);
        let with_ecom = steady_state_throughput_with_ecom(&[1.0, 0.5], &[0.0, 2.0], &[1, 1]);
        assert!((with_ecom - 0.4).abs() < 1e-12, "thr {with_ecom}");
        // Replication amortises communication like compute.
        let replicated = steady_state_throughput_with_ecom(&[1.0, 0.5], &[0.0, 2.0], &[1, 5]);
        assert!((replicated - 1.0).abs() < 1e-12, "thr {replicated}");
    }

    #[test]
    #[should_panic(expected = "one communication cost per stage")]
    fn ecom_length_checked() {
        let _ = steady_state_throughput_with_ecom(&[1.0, 1.0], &[0.0], &[1, 1]);
    }
}
