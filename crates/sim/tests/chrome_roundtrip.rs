//! Chrome trace round-trip: exported `trace_event` documents must parse
//! as JSON, keep `ts` monotonically non-decreasing within every lane,
//! and contain only balanced span records — this exporter uses `X`
//! complete events exclusively (plus `M` metadata and `C` counters), so
//! any `B` without a matching `E` is a bug.

use std::collections::HashMap;

use pipemap_chain::{ChainBuilder, Edge, Mapping, ModuleAssignment, Task};
use pipemap_model::{PolyEcom, PolyUnary};
use pipemap_obs::Value;
use pipemap_sim::{chrome_trace_json, simulate, SimConfig};

fn traced_run(noise: Option<(f64, u64)>) -> Value {
    let chain = ChainBuilder::new()
        .task(Task::new("a", PolyUnary::perfectly_parallel(4.0)))
        .edge(Edge::new(
            PolyUnary::zero(),
            PolyEcom::new(0.5, 0.0, 0.0, 0.0, 0.0),
        ))
        .task(Task::new("b", PolyUnary::perfectly_parallel(6.0)))
        .edge(Edge::new(
            PolyUnary::zero(),
            PolyEcom::new(0.25, 0.0, 0.0, 0.0, 0.0),
        ))
        .task(Task::new("c", PolyUnary::perfectly_parallel(2.0)))
        .build();
    // Replication so multiple instances interleave within the run.
    let mapping = Mapping::new(vec![
        ModuleAssignment::new(0, 0, 2, 2),
        ModuleAssignment::new(1, 1, 3, 2),
        ModuleAssignment::new(2, 2, 1, 2),
    ]);
    let mut cfg = SimConfig::with_datasets(40).with_trace();
    if let Some((s, seed)) = noise {
        cfg = cfg.with_noise(s, seed);
    }
    let result = simulate(&chain, &mapping, &cfg);
    chrome_trace_json(&result.trace.expect("trace requested"))
}

/// Validate the Chrome-trace invariants on a parsed document; returns
/// the number of slice events checked.
fn check_invariants(doc: &Value) -> usize {
    // Round-trip: serialise and re-parse.
    let parsed = Value::parse(&doc.to_json_pretty()).expect("document parses as JSON");
    let events = parsed
        .get("traceEvents")
        .expect("traceEvents key")
        .as_array()
        .expect("traceEvents array");

    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut open_b: HashMap<(u64, u64), u64> = HashMap::new();
    let mut slices = 0;
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("ph field");
        match ph {
            "M" => continue, // metadata carries no timestamp ordering
            "X" | "B" | "E" | "C" => {
                let pid = e.get("pid").and_then(Value::as_f64).unwrap_or(0.0) as u64;
                let tid = e.get("tid").and_then(Value::as_f64).unwrap_or(0.0) as u64;
                let ts = e.get("ts").and_then(Value::as_f64).expect("ts field");
                let lane = (pid, tid);
                if let Some(prev) = last_ts.get(&lane) {
                    assert!(
                        ts >= *prev,
                        "ts regressed in lane {lane:?}: {ts} after {prev}"
                    );
                }
                last_ts.insert(lane, ts);
                match ph {
                    "B" => *open_b.entry(lane).or_insert(0) += 1,
                    "E" => {
                        let open = open_b.entry(lane).or_insert(0);
                        assert!(*open > 0, "E without a B in lane {lane:?}");
                        *open -= 1;
                    }
                    "X" => {
                        assert!(e.get("dur").and_then(Value::as_f64).expect("X has dur") >= 0.0);
                        slices += 1;
                    }
                    _ => {}
                }
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (lane, open) in open_b {
        assert_eq!(open, 0, "unclosed B events in lane {lane:?}");
    }
    slices
}

#[test]
fn simulator_chrome_export_round_trips() {
    let doc = traced_run(None);
    let slices = check_invariants(&doc);
    assert!(slices > 100, "expected a dense trace, got {slices} slices");
}

#[test]
fn noisy_simulator_chrome_export_round_trips() {
    // Noise shifts activity boundaries; the per-lane ordering guarantee
    // must survive it.
    let doc = traced_run(Some((0.08, 0xfeed)));
    check_invariants(&doc);
}

#[test]
fn registry_span_export_round_trips_with_counters() {
    // The other producer of Chrome traces: obs registry spans plus
    // flight-recorder counter tracks.
    let registry = pipemap_obs::Registry::new();
    registry.set_tracing(true);
    let lane = registry.register_lane("worker.0");
    let rec = registry.recorder();
    let flight =
        pipemap_obs::FlightRecorder::attach(&registry, pipemap_obs::RecorderConfig::default());
    for i in 0..5 {
        rec.add("work.items", i);
        drop(rec.span_on(lane, "tick", "test"));
        flight.sample_now();
    }
    let (events, lanes) = (registry.take_events(), registry.lane_names());
    let doc =
        pipemap_obs::chrome_trace_with_counters(&events, &lanes, flight.counter_track_events());
    let slices = check_invariants(&doc);
    assert_eq!(slices, 5);
}
