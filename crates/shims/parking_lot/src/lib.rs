//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with the `parking_lot` API shape the
//! workspace uses: infallible `lock()` / `read()` / `write()` (a
//! poisoned lock propagates the panic's data rather than returning a
//! `Result`). Fairness and the smaller lock footprint of the real crate
//! are irrelevant to callers here.

use std::sync::{self, PoisonError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with an infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with infallible `read()` / `write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
