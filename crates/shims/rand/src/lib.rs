//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand`
//! cannot be fetched. This crate implements the (small) subset of the
//! `rand 0.8` API the workspace uses — `StdRng`, `SeedableRng`,
//! `Rng::gen` / `Rng::gen_range` — on top of a xoshiro256++ generator
//! seeded by SplitMix64. It is deterministic for a given seed, which is
//! all the simulator's noise model and the test-input generators need;
//! it is **not** a cryptographic generator.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their full domain by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform sampler over an arbitrary sub-range. The
/// blanket [`SampleRange`] impls below hang off this trait so that
/// `gen_range(expr_a..expr_b)` pins `T` through a *single* impl per
/// range type — matching the real crate's inference behaviour (a
/// per-type impl set leaves `T` ambiguous in expressions like
/// `rng.gen_range(1..=3)` where the literals' type is open).
pub trait SampleUniform: Sized {
    /// Uniform over `[lo, hi)` (`inclusive == false`, requires
    /// `lo < hi`) or `[lo, hi]` (`inclusive == true`, requires
    /// `lo <= hi`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if inclusive {
                    assert!(lo <= hi, "gen_range on empty range");
                    if span == u64::MAX {
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo.wrapping_add(reject_sample(rng, span + 1) as $t)
                } else {
                    assert!(lo < hi, "gen_range on empty range");
                    lo.wrapping_add(reject_sample(rng, span) as $t)
                }
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range on empty range");
                } else {
                    assert!(lo < hi, "gen_range on empty range");
                }
                let unit: f64 = Standard::sample(rng);
                lo + (unit as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// Unbiased sample in `[0, bound)` by rejection (`bound > 0`).
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

/// Convenience methods on every generator (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A value uniform over the type's natural domain (`[0, 1)` for
    /// floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value uniform over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Statistically solid for simulation and test-input
    /// generation; not cryptographic (the real `StdRng` is ChaCha12 —
    /// callers here only rely on determinism and uniformity).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_centered() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..20_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = r.gen_range(1..=4usize);
            assert!((1..=4).contains(&w));
            let f = r.gen_range(0.5..2.5f64);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
