//! Offline stand-in for `crossbeam`.
//!
//! The executor only needs `crossbeam::channel::{bounded, Sender,
//! Receiver}`: a bounded multi-producer **multi-consumer** channel with
//! blocking `send` / `recv` and disconnect-on-drop semantics (std's
//! `mpsc` receiver is not cloneable, so it cannot stand in). This is a
//! straightforward `Mutex<VecDeque>` + two `Condvar`s implementation:
//! correctness over raw speed — the executor moves coarse work items
//! (whole data sets), so channel overhead is noise.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// gives the message back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: usize,
    }

    /// The sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; cloneable (multi-consumer).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Create a bounded channel holding at most `capacity` messages
    /// (`capacity ≥ 1`; the zero-capacity rendezvous of the real crate
    /// is not needed here).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity >= 1, "bounded channel capacity must be >= 1");
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(capacity),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Block until there is room, then enqueue `value`. Errors (and
        /// returns the value) if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < self.chan.capacity {
                    st.queue.push_back(value);
                    drop(st);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                st = self.chan.not_full.wait(st).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message is available. Errors once the channel
        /// is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(value) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(value);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.not_empty.wait(st).unwrap();
            }
        }

        /// Non-blocking receive; `None` when empty (regardless of
        /// disconnect state).
        pub fn try_recv(&self) -> Option<T> {
            let mut st = self.chan.state.lock().unwrap();
            let v = st.queue.pop_front();
            if v.is_some() {
                drop(st);
                self.chan.not_full.notify_one();
            }
            v
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Self {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Self {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Wake receivers parked on an empty queue so they can
                // observe the disconnect.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                // Wake senders parked on a full queue so they can
                // observe the disconnect.
                self.chan.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip_in_order() {
            let (s, r) = bounded(4);
            for i in 0..4 {
                s.send(i).unwrap();
            }
            for i in 0..4 {
                assert_eq!(r.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (s, r) = bounded::<u32>(2);
            s.send(1).unwrap();
            drop(s);
            assert_eq!(r.recv(), Ok(1));
            assert_eq!(r.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_all_receivers_drop() {
            let (s, r) = bounded::<u32>(2);
            drop(r);
            assert!(s.send(1).is_err());
        }

        #[test]
        fn backpressure_blocks_until_drained() {
            let (s, r) = bounded::<u32>(1);
            s.send(1).unwrap();
            let t = std::thread::spawn(move || s.send(2).unwrap());
            assert_eq!(r.recv(), Ok(1));
            assert_eq!(r.recv(), Ok(2));
            t.join().unwrap();
        }

        #[test]
        fn mpmc_delivers_every_message_exactly_once() {
            let (s, r) = bounded::<usize>(8);
            let n_prod = 4;
            let n_cons = 3;
            let per = 500;
            std::thread::scope(|scope| {
                for p in 0..n_prod {
                    let s = s.clone();
                    scope.spawn(move || {
                        for i in 0..per {
                            s.send(p * per + i).unwrap();
                        }
                    });
                }
                drop(s);
                let handles: Vec<_> = (0..n_cons)
                    .map(|_| {
                        let r = r.clone();
                        scope.spawn(move || {
                            let mut got = Vec::new();
                            while let Ok(v) = r.recv() {
                                got.push(v);
                            }
                            got
                        })
                    })
                    .collect();
                drop(r);
                let mut all: Vec<usize> = handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect();
                all.sort_unstable();
                assert_eq!(all, (0..n_prod * per).collect::<Vec<_>>());
            });
        }
    }
}
