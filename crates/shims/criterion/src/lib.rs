//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`, `bench_with_input`,
//! `BenchmarkId`, and `Bencher::iter` — backed by a plain wall-clock
//! loop instead of criterion's statistical machinery.
//!
//! Benchmarks only *run* under `cargo bench` (the harness looks for the
//! `--bench` flag cargo passes to `harness = false` targets). Under
//! `cargo test` the binaries build and exit immediately, so debug-mode
//! test runs do not pay for release-grade workloads.

use std::fmt;
use std::time::{Duration, Instant};

/// Hands the closure-under-measurement to the harness.
pub struct Bencher {
    iters_hint: u64,
    /// Mean wall-clock time of one iteration, filled by [`Bencher::iter`].
    mean: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, storing the mean duration of one call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup call.
        std::hint::black_box(routine());
        let budget = Duration::from_millis(500);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while iters < self.iters_hint && start.elapsed() < budget {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.mean = Some(start.elapsed() / iters.max(1) as u32);
    }
}

/// Prevent the optimiser from discarding a value (re-export shape of
/// `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// The benchmark manager passed to every target function.
pub struct Criterion {
    enabled: bool,
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes `harness = false` bench targets with `--bench`
        // under `cargo bench`; under `cargo test` the flag is absent.
        let enabled = std::env::args().any(|a| a == "--bench");
        Self {
            enabled,
            sample_size: 100,
        }
    }
}

impl Criterion {
    fn run_one(&self, label: &str, sample_size: u64, f: impl FnOnce(&mut Bencher)) {
        if !self.enabled {
            return;
        }
        let mut b = Bencher {
            iters_hint: sample_size,
            mean: None,
        };
        f(&mut b);
        match b.mean {
            Some(mean) => println!("bench {label:<40} {mean:>12.2?}/iter"),
            None => println!("bench {label:<40} (no measurement)"),
        }
    }

    /// Time one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let sample_size = self.sample_size;
        self.run_one(id, sample_size, |b| f(b));
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Target iteration count for each benchmark in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    /// Shared settings resolved against the parent [`Criterion`].
    fn effective_sample_size(&self) -> u64 {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Time one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        self.criterion
            .run_one(&label, self.effective_sample_size(), |b| f(b));
        self
    }

    /// Time one parameterised benchmark of the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&label, self.effective_sample_size(), |b| f(b, input));
        self
    }

    /// Close the group (kept for API parity; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Bundle benchmark functions into a group callable from
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_harness_skips_routines() {
        // Unit tests never pass --bench, so nothing should run.
        let mut c = Criterion::default();
        assert!(!c.enabled);
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| ran = true);
        });
        assert!(!ran);
    }

    #[test]
    fn enabled_harness_measures() {
        let c = Criterion {
            enabled: true,
            sample_size: 3,
        };
        let mut calls = 0u32;
        c.run_one("count", 3, |b| b.iter(|| calls += 1));
        // 1 warmup + up to 3 timed iterations.
        assert!(calls >= 2, "calls {calls}");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fft", 256).to_string(), "fft/256");
    }
}
