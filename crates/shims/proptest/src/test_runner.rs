//! Test execution: config, case errors, deterministic RNG, runner.

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum rejected (assumed-away) cases tolerated before the run
    /// is abandoned as unable to satisfy its preconditions.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// A precondition (`prop_assume!`) was not met: discard the case.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        Self::Fail(message.into())
    }

    pub fn reject(message: impl Into<String>) -> Self {
        Self::Reject(message.into())
    }
}

/// Result of one test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-case generator handed to strategies. xoshiro256++
/// seeded from a hash of the test name and the attempt index, so every
/// run of the suite explores the same inputs (reproducibility without a
/// regression file).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Generator for attempt `attempt` of test `name`.
    pub fn deterministic(name: &str, attempt: u64) -> Self {
        // FNV-1a over the name, mixed with the attempt index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform on `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Drives the cases of one property test.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> Self {
        Self { config }
    }

    /// Run `test` until `config.cases` successful cases have passed.
    ///
    /// # Panics
    ///
    /// Panics when a case fails (carrying the failure message) or when
    /// too many cases in a row are rejected by `prop_assume!`.
    pub fn run<F>(&mut self, name: &str, mut test: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        let mut attempt: u64 = 0;
        while passed < self.config.cases {
            attempt += 1;
            let mut rng = TestRng::deterministic(name, attempt);
            match test(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "proptest '{name}': too many rejected cases \
                             ({rejected}) — preconditions are unsatisfiable"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{name}' failed at case {} (attempt {attempt}): {msg}",
                        passed + 1
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name_and_attempt() {
        let mut a = TestRng::deterministic("t", 3);
        let mut b = TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("t", 4);
        let mut d = TestRng::deterministic("u", 3);
        let base = TestRng::deterministic("t", 3).next_u64();
        assert_ne!(base, c.next_u64());
        assert_ne!(base, d.next_u64());
    }

    #[test]
    fn runner_counts_only_passes() {
        let mut seen = 0u32;
        TestRunner::new(ProptestConfig::with_cases(10)).run("count", |rng| {
            // Reject roughly half the cases.
            if rng.next_u64() % 2 == 0 {
                return Err(TestCaseError::reject("half"));
            }
            seen += 1;
            Ok(())
        });
        assert_eq!(seen, 10);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn runner_panics_on_failure() {
        TestRunner::new(ProptestConfig::with_cases(5))
            .run("fail", |_| Err(TestCaseError::fail("boom")));
    }
}
