//! `any::<T>()` — the canonical strategy of a type.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "whole domain" generation strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() as f32
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy of `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::deterministic("any-bool", 1);
        let s = any::<bool>();
        let mut t = 0;
        for _ in 0..100 {
            if s.new_value(&mut rng) {
                t += 1;
            }
        }
        assert!(t > 20 && t < 80, "bools look biased: {t}/100 true");
    }
}
