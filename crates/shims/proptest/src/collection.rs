//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size interval for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty vec size range");
        Self { lo, hi }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span == 0 {
                0
            } else {
                rng.below(span + 1) as usize
            };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// A vector whose length is drawn from `size` and whose elements come
/// from `element` (mirrors `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::deterministic("vec-len", 1);
        let s = vec(0..10usize, 2..5);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((2..=4).contains(&v.len()));
            seen[v.len()] = true;
            assert!(v.iter().all(|&e| e < 10));
        }
        assert!(seen[2] && seen[3] && seen[4]);
    }

    #[test]
    fn fixed_length() {
        let mut rng = TestRng::deterministic("vec-fixed", 1);
        let s = vec(0.0..1.0f64, 5);
        assert_eq!(s.new_value(&mut rng).len(), 5);
    }
}
