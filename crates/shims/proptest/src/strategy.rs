//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike the real crate
/// there is no value tree / shrinking: a strategy just produces a
/// fresh value from the case's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`; generation retries (and
    /// eventually rejects the case) when the predicate is too tight.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Strategies are used by shared reference inside tuples and `vec`.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..256 {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}': predicate rejected 256 consecutive values",
            self.whence
        );
    }
}

/// A strategy producing one fixed (cloned) value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests", 1)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..2000 {
            let a = (3..9usize).new_value(&mut r);
            assert!((3..9).contains(&a));
            let b = (1..=4i64).new_value(&mut r);
            assert!((1..=4).contains(&b));
            let c = (0.25..0.75f64).new_value(&mut r);
            assert!((0.25..0.75).contains(&c));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut r = rng();
        let (a, b, c) = (0..10usize, 0.0..1.0f64, Just(7u8)).new_value(&mut r);
        assert!(a < 10);
        assert!((0.0..1.0).contains(&b));
        assert_eq!(c, 7);
    }

    #[test]
    fn map_and_filter() {
        let mut r = rng();
        let even = (0..100usize)
            .prop_filter("even", |v| v % 2 == 0)
            .prop_map(|v| v + 1);
        for _ in 0..100 {
            assert_eq!(even.new_value(&mut r) % 2, 1);
        }
    }
}
