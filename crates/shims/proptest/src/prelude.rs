//! The glob-import surface (`use proptest::prelude::*`).

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

/// Namespace mirror of the real crate's `prop` module.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::strategy;
}
