//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate re-implements the subset of its API
//! the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//!   `name in strategy` and `name: Type` bindings;
//! * [`Strategy`](strategy::Strategy) for numeric ranges, tuples,
//!   [`collection::vec`], [`any`](arbitrary::any), `Just`, and
//!   `prop_map`;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its case/attempt number
//!   and message but not a minimised input;
//! * **deterministic inputs** — cases are derived from a fixed seed
//!   (plus the test name), so runs are reproducible without a
//!   regression file; `.proptest-regressions` files are ignored.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Define property tests. Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { { $cfg } $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            { $crate::test_runner::ProptestConfig::default() } $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( { $cfg:expr } ) => {};
    ( { $cfg:expr }
      $(#[$meta:meta])*
      fn $name:ident( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __proptest_config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __proptest_runner =
                $crate::test_runner::TestRunner::new(__proptest_config);
            __proptest_runner.run(stringify!($name), |__proptest_rng| {
                $crate::__proptest_bind!(__proptest_rng, $($params)*);
                let __proptest_result: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                __proptest_result
            });
        }
        $crate::__proptest_items! { { $cfg } $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ( $rng:ident $(,)? ) => {};
    ( $rng:ident, $p:pat in $s:expr, $($rest:tt)* ) => {
        let $p = $crate::strategy::Strategy::new_value(&($s), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ( $rng:ident, $p:pat in $s:expr ) => {
        let $p = $crate::strategy::Strategy::new_value(&($s), $rng);
    };
    ( $rng:ident, $i:ident : $t:ty, $($rest:tt)* ) => {
        let $i = <$t as $crate::arbitrary::Arbitrary>::arbitrary($rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ( $rng:ident, $i:ident : $t:ty ) => {
        let $i = <$t as $crate::arbitrary::Arbitrary>::arbitrary($rng);
    };
}

/// Assert a condition inside a `proptest!` body; failure aborts the
/// whole test with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            *l,
            *r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            *l,
            *r,
            format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` == `{:?}`", *l, *r);
    }};
}

/// Discard the current case (it does not count towards the case
/// budget) when a generated input misses a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        $crate::prop_assume!($cond, concat!("assumption failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(format!($($fmt)+)),
            );
        }
    };
}
