//! Strategies for `Option<T>` (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generate `Some` from the inner strategy most of the time, `None`
/// roughly one case in four (the real crate's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Output of [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.new_value(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_none_and_some_in_bounds() {
        let mut rng = TestRng::deterministic("option-tests", 1);
        let strat = of(5..10usize);
        let (mut nones, mut somes) = (0, 0);
        for _ in 0..1000 {
            match strat.new_value(&mut rng) {
                None => nones += 1,
                Some(v) => {
                    assert!((5..10).contains(&v));
                    somes += 1;
                }
            }
        }
        assert!(nones > 100, "nones {nones}");
        assert!(somes > 500, "somes {somes}");
    }
}
