//! Per-dataset journey tracing.
//!
//! Aggregate stage metrics answer "how busy is module i?"; journeys
//! answer "why was data set `n` slow?". A [`JourneyCollector`] owns a
//! bounded ring of [`JourneyEvent`]s; each worker thread gets its own
//! [`JourneySink`] that buffers events locally and flushes them into the
//! shared ring in chunks, so the hot path takes no lock and performs no
//! allocation per event. Sampling is 1-in-N *by sequence number*
//! (`seq % N == 0`), so every stage samples the *same* data sets and a
//! sampled journey is always complete end to end.
//!
//! Per data set and per stage instance five timestamps are recorded:
//!
//! | kind            | recorded when                                        |
//! |-----------------|------------------------------------------------------|
//! | `Enqueue`       | the upstream sender hands the batch to the instance's input queue (timestamp taken *before* the blocking send, so `enqueue ≤ dequeue` holds across threads) |
//! | `Dequeue`       | the instance receives the batch                      |
//! | `ServiceStart`  | the stage function begins on this data set           |
//! | `ServiceEnd`    | the stage function returns                           |
//! | `Send`          | the instance hands its output to the transport layer |
//!
//! plus `Source` (the data set entered the pipeline) and `Sink` (it left).
//! The `Enqueue` event carries the *batch identity* — a collector-unique
//! id stamped on every data set that rode in the same channel message —
//! and the destination *replica* (instance) index.
//!
//! The derived per-hop latency decomposition (see `pipemap-doctor`):
//! queue wait `dequeue − enqueue`, transport `service_start − dequeue`,
//! service `service_end − service_start`, batching delay
//! `enqueue(s) − send(s−1)`.
//!
//! Exports: JSONL (one event object per line, [`journey_jsonl`]) and a
//! Chrome `trace_event` document with *flow events* stitching each data
//! set's service slices across stages ([`chrome_flow_trace`]) — load it
//! in Perfetto and follow the arrows.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Value;

/// Schema tag written into journey JSONL headers by the tooling
/// (re-exported from [`crate::schema`], the single home of all tags).
pub const JOURNEY_SCHEMA: &str = crate::schema::JOURNEY;

/// Events buffered per sink before the shared ring is touched.
const SINK_CHUNK: usize = 256;

/// What happened to a data set (see the module docs for semantics).
/// Variant order is the within-stage happens-before order, so sorting
/// events by `(seq, stage, kind)` yields each journey in causal order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JourneyKind {
    /// The data set entered the pipeline (stage field is 0).
    Source,
    /// A sender pushed the data set into this stage's input queue.
    Enqueue,
    /// The instance received the data set from its input queue.
    Dequeue,
    /// The stage function started on this data set.
    ServiceStart,
    /// The stage function returned.
    ServiceEnd,
    /// The instance handed its output to the transport layer.
    Send,
    /// The data set left the pipeline (stage field is the stage count).
    Sink,
}

impl JourneyKind {
    /// Stable wire name used in JSONL.
    pub fn as_str(self) -> &'static str {
        match self {
            JourneyKind::Source => "source",
            JourneyKind::Enqueue => "enqueue",
            JourneyKind::Dequeue => "dequeue",
            JourneyKind::ServiceStart => "service_start",
            JourneyKind::ServiceEnd => "service_end",
            JourneyKind::Send => "send",
            JourneyKind::Sink => "sink",
        }
    }

    /// Inverse of [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "source" => JourneyKind::Source,
            "enqueue" => JourneyKind::Enqueue,
            "dequeue" => JourneyKind::Dequeue,
            "service_start" => JourneyKind::ServiceStart,
            "service_end" => JourneyKind::ServiceEnd,
            "send" => JourneyKind::Send,
            "sink" => JourneyKind::Sink,
            _ => return None,
        })
    }
}

/// One timestamped step of one data set's journey.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JourneyEvent {
    /// The data set's global sequence number.
    pub seq: u64,
    /// Stage index (`Sink` uses the stage count, one past the last).
    pub stage: u32,
    /// Replica (instance) index within the stage.
    pub instance: u32,
    /// What happened.
    pub kind: JourneyKind,
    /// Microseconds since the collector's epoch (wall clock) or since
    /// simulation time zero (virtual clock).
    pub t_us: f64,
    /// Batch identity: data sets that rode in the same channel message
    /// share it. `0` when transport is unbatched or not applicable;
    /// meaningful only on `Enqueue` events.
    pub batch: u64,
}

impl JourneyEvent {
    /// Serialise as a JSON object.
    pub fn to_value(&self) -> Value {
        let mut v = Value::object();
        v.set("seq", self.seq);
        v.set("stage", self.stage as u64);
        v.set("inst", self.instance as u64);
        v.set("kind", self.kind.as_str());
        v.set("t_us", self.t_us);
        v.set("batch", self.batch);
        v
    }

    /// Parse from a JSON object produced by [`to_value`](Self::to_value).
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let num = |key: &str| {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("journey event missing numeric '{key}': {}", v.to_json()))
        };
        let kind_str = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("journey event missing 'kind': {}", v.to_json()))?;
        let kind = JourneyKind::parse(kind_str)
            .ok_or_else(|| format!("unknown journey kind '{kind_str}'"))?;
        Ok(Self {
            seq: num("seq")? as u64,
            stage: num("stage")? as u32,
            instance: num("inst")? as u32,
            kind,
            t_us: num("t_us")?,
            batch: num("batch")? as u64,
        })
    }
}

/// Collector parameters.
#[derive(Clone, Copy, Debug)]
pub struct JourneyConfig {
    /// Record data sets with `seq % sample == 0` (1 = every data set).
    pub sample: u64,
    /// Ring capacity in events; the oldest events are dropped (and
    /// counted) once exceeded, so a live scrape sees the recent window.
    pub capacity: usize,
}

impl Default for JourneyConfig {
    fn default() -> Self {
        Self {
            sample: 1,
            capacity: 1 << 16,
        }
    }
}

impl JourneyConfig {
    /// Set the 1-in-N sampling stride.
    pub fn with_sample(mut self, sample: u64) -> Self {
        assert!(sample >= 1);
        self.sample = sample;
        self
    }

    /// Set the ring capacity in events.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1);
        self.capacity = capacity;
        self
    }
}

#[derive(Debug)]
struct SharedRing {
    epoch: Instant,
    sample: u64,
    capacity: usize,
    ring: Mutex<VecDeque<JourneyEvent>>,
    dropped: AtomicU64,
    batches: AtomicU64,
}

impl SharedRing {
    fn push_chunk(&self, chunk: &mut Vec<JourneyEvent>) {
        let mut ring = self.ring.lock().expect("journey ring poisoned");
        for ev in chunk.drain(..) {
            ring.push_back(ev);
        }
        let mut dropped = 0u64;
        while ring.len() > self.capacity {
            ring.pop_front();
            dropped += 1;
        }
        drop(ring);
        if dropped > 0 {
            self.dropped.fetch_add(dropped, Ordering::Relaxed);
        }
    }
}

/// Shared owner of the journey ring; clone freely (cheap `Arc` handle)
/// and hand [`sink`](Self::sink)s to worker threads.
#[derive(Clone, Debug)]
pub struct JourneyCollector {
    shared: Arc<SharedRing>,
}

impl JourneyCollector {
    /// A collector with the given sampling stride and ring capacity.
    pub fn new(config: JourneyConfig) -> Self {
        assert!(config.sample >= 1 && config.capacity >= 1);
        Self {
            shared: Arc::new(SharedRing {
                epoch: Instant::now(),
                sample: config.sample,
                capacity: config.capacity,
                ring: Mutex::new(VecDeque::new()),
                dropped: AtomicU64::new(0),
                batches: AtomicU64::new(0),
            }),
        }
    }

    /// A per-worker sink. Events buffer locally and reach the shared
    /// ring in chunks and when the sink drops.
    pub fn sink(&self) -> JourneySink {
        JourneySink {
            shared: self.shared.clone(),
            buf: Vec::new(),
        }
    }

    /// The sampling stride.
    pub fn sample(&self) -> u64 {
        self.shared.sample
    }

    /// Microseconds since the collector's epoch.
    pub fn now_us(&self) -> f64 {
        self.shared.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Events dropped because the ring overflowed.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Copy the current ring contents without draining (live scrapes).
    pub fn snapshot(&self) -> Vec<JourneyEvent> {
        self.shared
            .ring
            .lock()
            .expect("journey ring poisoned")
            .iter()
            .copied()
            .collect()
    }

    /// Take every buffered event out of the ring.
    pub fn drain(&self) -> Vec<JourneyEvent> {
        self.shared
            .ring
            .lock()
            .expect("journey ring poisoned")
            .drain(..)
            .collect()
    }
}

/// A worker-local event sink (see [`JourneyCollector::sink`]). Not
/// shared between threads: recording appends to a local buffer.
#[derive(Debug)]
pub struct JourneySink {
    shared: Arc<SharedRing>,
    buf: Vec<JourneyEvent>,
}

impl JourneySink {
    /// Whether data set `seq` is in the sampled population. All stages
    /// agree on this, so sampled journeys are complete.
    #[inline]
    pub fn sampled(&self, seq: usize) -> bool {
        (seq as u64).is_multiple_of(self.shared.sample)
    }

    /// Microseconds since the collector's epoch (wall clock).
    #[inline]
    pub fn now_us(&self) -> f64 {
        self.shared.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Allocate a collector-unique batch identity (never 0).
    pub fn next_batch(&self) -> u64 {
        self.shared.batches.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Record an event at the current wall-clock time. No-op for
    /// unsampled sequence numbers.
    #[inline]
    pub fn record(&mut self, kind: JourneyKind, seq: usize, stage: u32, instance: u32, batch: u64) {
        if !self.sampled(seq) {
            return;
        }
        let t_us = self.now_us();
        self.push(JourneyEvent {
            seq: seq as u64,
            stage,
            instance,
            kind,
            t_us,
            batch,
        });
    }

    /// Record an event at an explicit time (virtual clocks: the
    /// simulator records in simulated microseconds). No-op for
    /// unsampled sequence numbers.
    #[inline]
    pub fn record_at(
        &mut self,
        t_us: f64,
        kind: JourneyKind,
        seq: usize,
        stage: u32,
        instance: u32,
        batch: u64,
    ) {
        if !self.sampled(seq) {
            return;
        }
        self.push(JourneyEvent {
            seq: seq as u64,
            stage,
            instance,
            kind,
            t_us,
            batch,
        });
    }

    fn push(&mut self, ev: JourneyEvent) {
        self.buf.push(ev);
        if self.buf.len() >= SINK_CHUNK {
            self.flush();
        }
    }

    /// Hand buffered events to the shared ring.
    pub fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.shared.push_chunk(&mut self.buf);
        }
    }
}

impl Drop for JourneySink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// One stage's worth of a data set's journey, stitched from events.
#[derive(Clone, Copy, Debug, Default)]
pub struct Hop {
    /// Stage index.
    pub stage: u32,
    /// Replica that served the data set.
    pub instance: u32,
    /// Batch the data set rode in to reach this stage (0 = unknown).
    pub batch: u64,
    /// When the upstream sender enqueued it.
    pub enqueue_us: Option<f64>,
    /// When the instance received it.
    pub dequeue_us: Option<f64>,
    /// When service started.
    pub service_start_us: Option<f64>,
    /// When service ended.
    pub service_end_us: Option<f64>,
    /// When the output was handed to transport.
    pub send_us: Option<f64>,
}

/// A data set's full path through the pipeline.
#[derive(Clone, Debug, Default)]
pub struct Journey {
    /// The data set's sequence number.
    pub seq: u64,
    /// When it entered the pipeline.
    pub source_us: Option<f64>,
    /// When it left.
    pub sink_us: Option<f64>,
    /// Hops in stage order (not necessarily contiguous if events were
    /// dropped).
    pub hops: Vec<Hop>,
}

impl Journey {
    /// Whether hops 0..`stages` are all present with all five
    /// timestamps recorded.
    pub fn complete(&self, stages: usize) -> bool {
        self.hops.len() == stages
            && self.hops.iter().enumerate().all(|(i, h)| {
                h.stage as usize == i
                    && h.enqueue_us.is_some()
                    && h.dequeue_us.is_some()
                    && h.service_start_us.is_some()
                    && h.service_end_us.is_some()
                    && h.send_us.is_some()
            })
    }

    /// The journey's timestamps in causal order, flattened.
    pub fn timeline(&self) -> Vec<f64> {
        let mut ts = Vec::with_capacity(2 + 5 * self.hops.len());
        ts.extend(self.source_us);
        for h in &self.hops {
            ts.extend(h.enqueue_us);
            ts.extend(h.dequeue_us);
            ts.extend(h.service_start_us);
            ts.extend(h.service_end_us);
            ts.extend(h.send_us);
        }
        ts.extend(self.sink_us);
        ts
    }

    /// Whether every recorded timestamp is non-decreasing in causal
    /// order.
    pub fn monotone(&self) -> bool {
        self.timeline().windows(2).all(|w| w[0] <= w[1])
    }

    /// End-to-end latency in microseconds, when both ends were seen.
    pub fn latency_us(&self) -> Option<f64> {
        Some(self.sink_us? - self.source_us?)
    }
}

/// Group events by data set and order each journey's hops by stage.
/// Journeys come back sorted by sequence number. The earliest event
/// wins when duplicates of the same `(seq, stage, kind)` exist.
pub fn stitch(events: &[JourneyEvent]) -> Vec<Journey> {
    let mut sorted: Vec<JourneyEvent> = events.to_vec();
    sorted.sort_by(|a, b| {
        (a.seq, a.stage, a.kind)
            .cmp(&(b.seq, b.stage, b.kind))
            .then(a.t_us.total_cmp(&b.t_us))
    });
    let mut journeys: Vec<Journey> = Vec::new();
    for ev in sorted {
        if journeys.last().map(|j| j.seq) != Some(ev.seq) {
            journeys.push(Journey {
                seq: ev.seq,
                ..Journey::default()
            });
        }
        let j = journeys.last_mut().expect("just pushed");
        match ev.kind {
            JourneyKind::Source => {
                j.source_us.get_or_insert(ev.t_us);
                continue;
            }
            JourneyKind::Sink => {
                j.sink_us.get_or_insert(ev.t_us);
                continue;
            }
            _ => {}
        }
        if j.hops.last().map(|h| h.stage) != Some(ev.stage) {
            j.hops.push(Hop {
                stage: ev.stage,
                instance: ev.instance,
                ..Hop::default()
            });
        }
        let hop = j.hops.last_mut().expect("just pushed");
        let slot = match ev.kind {
            JourneyKind::Enqueue => {
                if hop.batch == 0 {
                    hop.batch = ev.batch;
                }
                // The sender knows the destination replica; service
                // events confirm it.
                hop.instance = ev.instance;
                &mut hop.enqueue_us
            }
            JourneyKind::Dequeue => &mut hop.dequeue_us,
            JourneyKind::ServiceStart => &mut hop.service_start_us,
            JourneyKind::ServiceEnd => &mut hop.service_end_us,
            JourneyKind::Send => &mut hop.send_us,
            JourneyKind::Source | JourneyKind::Sink => unreachable!("handled above"),
        };
        slot.get_or_insert(ev.t_us);
    }
    journeys
}

/// Serialise events as JSONL, one object per line.
pub fn journey_jsonl(events: &[JourneyEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_value().to_json());
        out.push('\n');
    }
    out
}

/// Parse JSONL produced by [`journey_jsonl`]. Blank lines are skipped;
/// any other malformed line is an error.
pub fn parse_journey_jsonl(text: &str) -> Result<Vec<JourneyEvent>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Value::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        events.push(JourneyEvent::from_value(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(events)
}

/// Render journeys as a Chrome `trace_event` document: one process per
/// stage, one thread per replica, an `X` slice per service interval,
/// and flow events (`s`/`t`/`f`, id = sequence number) stitching each
/// data set's slices across stages — Perfetto draws them as arrows.
pub fn chrome_flow_trace(events: &[JourneyEvent], stage_names: &[String]) -> Value {
    let journeys = stitch(events);
    let mut out: Vec<Value> = Vec::new();
    let stage_name = |s: u32| -> String {
        stage_names
            .get(s as usize)
            .cloned()
            .unwrap_or_else(|| format!("stage{s}"))
    };
    let mut max_stage = 0u32;
    for j in &journeys {
        for h in &j.hops {
            max_stage = max_stage.max(h.stage);
        }
    }
    if !journeys.is_empty() {
        for s in 0..=max_stage {
            let mut meta = Value::object();
            meta.set("name", "process_name");
            meta.set("ph", "M");
            meta.set("pid", (s + 1) as u64);
            meta.set("tid", 0u64);
            let mut args = Value::object();
            args.set("name", stage_name(s));
            meta.set("args", args);
            out.push(meta);
        }
    }
    for j in &journeys {
        let served: Vec<&Hop> = j
            .hops
            .iter()
            .filter(|h| h.service_start_us.is_some() && h.service_end_us.is_some())
            .collect();
        for (k, hop) in served.iter().enumerate() {
            let ss = hop.service_start_us.expect("filtered");
            let se = hop.service_end_us.expect("filtered");
            let mut slice = Value::object();
            slice.set("name", stage_name(hop.stage));
            slice.set("cat", "journey");
            slice.set("ph", "X");
            slice.set("pid", (hop.stage + 1) as u64);
            slice.set("tid", (hop.instance + 1) as u64);
            slice.set("ts", ss);
            slice.set("dur", se - ss);
            let mut args = Value::object();
            args.set("seq", j.seq);
            args.set("batch", hop.batch);
            slice.set("args", args);
            out.push(slice);

            // The flow event binds to the slice enclosing (pid, tid, ts).
            let ph = if k == 0 {
                "s"
            } else if k + 1 == served.len() {
                "f"
            } else {
                "t"
            };
            let mut flow = Value::object();
            flow.set("name", "journey");
            flow.set("cat", "journey");
            flow.set("ph", ph);
            flow.set("id", j.seq);
            flow.set("pid", (hop.stage + 1) as u64);
            flow.set("tid", (hop.instance + 1) as u64);
            flow.set("ts", ss);
            if ph == "f" {
                // Bind to the enclosing slice rather than the next one.
                flow.set("bp", "e");
            }
            out.push(flow);
        }
    }
    let mut doc = Value::object();
    doc.set("traceEvents", Value::Array(out));
    doc.set("displayTimeUnit", "ms");
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Emit a synthetic complete journey for data set `seq` over
    /// `stages` stages starting at `t0` µs; 10 µs per step.
    fn emit(sink: &mut JourneySink, seq: usize, stages: u32, t0: f64) {
        let mut t = t0;
        let step = |t: &mut f64| {
            let v = *t;
            *t += 10.0;
            v
        };
        sink.record_at(step(&mut t), JourneyKind::Source, seq, 0, 0, 0);
        for s in 0..stages {
            let inst = (seq as u32) % 2;
            sink.record_at(
                step(&mut t),
                JourneyKind::Enqueue,
                seq,
                s,
                inst,
                seq as u64 + 1,
            );
            sink.record_at(step(&mut t), JourneyKind::Dequeue, seq, s, inst, 0);
            sink.record_at(step(&mut t), JourneyKind::ServiceStart, seq, s, inst, 0);
            sink.record_at(step(&mut t), JourneyKind::ServiceEnd, seq, s, inst, 0);
            sink.record_at(step(&mut t), JourneyKind::Send, seq, s, inst, 0);
        }
        sink.record_at(step(&mut t), JourneyKind::Sink, seq, stages, 0, 0);
    }

    #[test]
    fn record_flush_and_stitch_complete_journeys() {
        let col = JourneyCollector::new(JourneyConfig::default());
        let mut sink = col.sink();
        for seq in 0..5usize {
            emit(&mut sink, seq, 3, seq as f64 * 1000.0);
        }
        sink.flush();
        let events = col.drain();
        assert_eq!(events.len(), 5 * (2 + 3 * 5));
        let journeys = stitch(&events);
        assert_eq!(journeys.len(), 5);
        for (i, j) in journeys.iter().enumerate() {
            assert_eq!(j.seq, i as u64);
            assert!(j.complete(3), "journey {i} incomplete: {j:?}");
            assert!(j.monotone(), "journey {i} not monotone: {j:?}");
            assert_eq!(j.hops[0].batch, i as u64 + 1);
            assert_eq!(j.hops[1].instance, (i as u32) % 2);
            assert_eq!(j.latency_us(), Some(160.0));
        }
    }

    #[test]
    fn sampling_keeps_only_matching_sequences() {
        let col = JourneyCollector::new(JourneyConfig::default().with_sample(3));
        let mut sink = col.sink();
        for seq in 0..10usize {
            sink.record(JourneyKind::Source, seq, 0, 0, 0);
        }
        drop(sink); // flushes
        let seqs: Vec<u64> = col.drain().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 3, 6, 9]);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let col = JourneyCollector::new(JourneyConfig::default().with_capacity(4));
        let mut sink = col.sink();
        for seq in 0..10usize {
            sink.record_at(seq as f64, JourneyKind::Source, seq, 0, 0, 0);
        }
        sink.flush();
        let events = col.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].seq, 6, "oldest events dropped first");
        assert_eq!(col.dropped(), 6);
    }

    #[test]
    fn wall_clock_recording_is_monotone() {
        let col = JourneyCollector::new(JourneyConfig::default());
        let mut sink = col.sink();
        sink.record(JourneyKind::Source, 0, 0, 0, 0);
        for s in 0..4u32 {
            sink.record(JourneyKind::Enqueue, 0, s, 0, sink.next_batch());
            sink.record(JourneyKind::Dequeue, 0, s, 0, 0);
            sink.record(JourneyKind::ServiceStart, 0, s, 0, 0);
            sink.record(JourneyKind::ServiceEnd, 0, s, 0, 0);
            sink.record(JourneyKind::Send, 0, s, 0, 0);
        }
        sink.record(JourneyKind::Sink, 0, 4, 0, 0);
        sink.flush();
        let journeys = stitch(&col.drain());
        assert_eq!(journeys.len(), 1);
        assert!(journeys[0].complete(4));
        assert!(journeys[0].monotone());
    }

    #[test]
    fn jsonl_round_trips() {
        let col = JourneyCollector::new(JourneyConfig::default());
        let mut sink = col.sink();
        emit(&mut sink, 7, 2, 0.0);
        sink.flush();
        let events = col.drain();
        let text = journey_jsonl(&events);
        let back = parse_journey_jsonl(&text).expect("parses");
        assert_eq!(back, events);
        assert!(parse_journey_jsonl("{\"kind\":\"nope\"}").is_err());
        assert!(parse_journey_jsonl("not json").is_err());
    }

    #[test]
    fn chrome_flow_trace_stitches_across_stages() {
        let col = JourneyCollector::new(JourneyConfig::default());
        let mut sink = col.sink();
        emit(&mut sink, 0, 3, 0.0);
        emit(&mut sink, 1, 3, 500.0);
        sink.flush();
        let events = col.drain();
        let names = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let doc = chrome_flow_trace(&events, &names);
        // Round-trip through the serialised form like a consumer would.
        let parsed = Value::parse(&doc.to_json()).expect("valid JSON");
        let trace = parsed.get("traceEvents").and_then(Value::as_array).unwrap();
        let ph = |e: &Value| e.get("ph").and_then(Value::as_str).unwrap().to_string();
        let slices = trace.iter().filter(|e| ph(e) == "X").count();
        assert_eq!(slices, 6, "one service slice per (journey, stage)");
        // Each journey's flow chain: one start, one step, one finish,
        // all carrying the journey's sequence number as id.
        for seq in [0u64, 1] {
            let flows: Vec<&Value> = trace
                .iter()
                .filter(|e| {
                    matches!(ph(e).as_str(), "s" | "t" | "f")
                        && e.get("id").and_then(Value::as_f64) == Some(seq as f64)
                })
                .collect();
            assert_eq!(flows.len(), 3, "seq {seq}");
            assert_eq!(ph(flows[0]), "s");
            assert_eq!(ph(flows[1]), "t");
            assert_eq!(ph(flows[2]), "f");
            assert_eq!(flows[2].get("bp").and_then(Value::as_str), Some("e"));
            // Flow events bind to the enclosing slices: timestamps climb.
            let ts: Vec<f64> = flows
                .iter()
                .map(|e| e.get("ts").and_then(Value::as_f64).unwrap())
                .collect();
            assert!(ts.windows(2).all(|w| w[0] < w[1]));
        }
        // Process metadata names the stages.
        let metas: Vec<&Value> = trace.iter().filter(|e| ph(e) == "M").collect();
        assert_eq!(metas.len(), 3);
        assert_eq!(
            metas[0]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str),
            Some("a")
        );
    }

    #[test]
    fn stitch_tolerates_incomplete_journeys() {
        let events = vec![
            JourneyEvent {
                seq: 4,
                stage: 1,
                instance: 0,
                kind: JourneyKind::ServiceStart,
                t_us: 50.0,
                batch: 0,
            },
            JourneyEvent {
                seq: 4,
                stage: 1,
                instance: 0,
                kind: JourneyKind::ServiceEnd,
                t_us: 60.0,
                batch: 0,
            },
        ];
        let journeys = stitch(&events);
        assert_eq!(journeys.len(), 1);
        assert!(!journeys[0].complete(2));
        assert!(journeys[0].monotone());
        assert_eq!(journeys[0].latency_us(), None);
    }
}
