//! # pipemap-obs
//!
//! Unified observability for the pipemap workspace: a thread-safe
//! metrics registry (counters, gauges, log-bucketed histograms with
//! p50/p95/p99/max), lightweight span timing with a structured JSONL
//! event sink, and a Chrome `trace_event` exporter whose output loads
//! directly in Perfetto. On top of the registry sit the live layers:
//! an OpenMetrics/Prometheus text endpoint served from a plain
//! [`std::net::TcpListener`] ([`expose`]), and a [`recorder`] flight
//! recorder that samples the registry into a bounded ring for rate
//! derivation, JSONL dumps, and Chrome counter tracks.
//!
//! The design splits *ownership* from *recording*:
//!
//! * [`Registry`] owns the storage and is held by whoever reports
//!   (the CLI, a test);
//! * [`Recorder`] is a cheap cloneable handle passed into instrumented
//!   code. A disabled recorder (no registry installed) makes every
//!   operation a single `None` check, so instrumentation in solver
//!   inner loops and executor workers costs effectively nothing when
//!   observability is off.
//!
//! Instrumented code usually goes through the process-global accessor:
//!
//! ```
//! pipemap_obs::install_global(pipemap_obs::Registry::new());
//! let rec = pipemap_obs::global();
//! rec.add("solver.dp.cells", 128);
//! let _phase = pipemap_obs::span!("dp_fill");
//! ```
//!
//! Only std is used — no external dependencies.

pub mod delta;
pub mod events;
pub mod expose;
pub mod journey;
pub mod json;
pub mod metrics;
pub mod openmetrics;
pub mod recorder;
pub mod schema;
pub mod trace;

use std::sync::OnceLock;

pub use delta::{apply_delta, DeltaSnapshot, DeltaTracker, HistogramDelta};
pub use events::{
    events_jsonl, parse_events_jsonl, parse_events_jsonl_since, AlertEngine, BottleneckTracker,
    EventKind, EventLog, EventLogConfig, ModelPublisher, ObsEvent, Severity, SloConfig,
    EVENT_SCHEMA,
};
pub use expose::{serve, serve_observatory, serve_with_journeys, MetricsServer};
pub use journey::{
    chrome_flow_trace, journey_jsonl, parse_journey_jsonl, stitch, Hop, Journey, JourneyCollector,
    JourneyConfig, JourneyEvent, JourneyKind, JourneySink, JOURNEY_SCHEMA,
};
pub use json::Value;
pub use metrics::{
    Counter, Histogram, HistogramHandle, HistogramSummary, MetricsSnapshot, Recorder, Registry,
    Timer,
};
pub use openmetrics::{escape_label_value, render_openmetrics};
pub use recorder::{FlightRecorder, FlightSample, RecorderConfig};
pub use trace::{chrome_trace, chrome_trace_with_counters, events_to_jsonl, SpanGuard, TraceEvent};

/// Well-known metric names shared across crates, so producers (solvers)
/// and consumers (`/metrics`, `pipemap bench`) cannot drift apart.
pub mod names {
    /// DP cells enumerated by the optimal solvers (`dp_assignment` and
    /// `dp_mapping` both add to it). A "cell" is one `(p_total, p_last,
    /// next-size)` state of the stage recurrence.
    pub const SOLVER_CELLS_TOTAL: &str = "solver.cells_total";
    /// DP cells skipped wholesale by incumbent-bound pruning (their
    /// single-module upper bound cannot reach the greedy incumbent).
    /// `cells_pruned / cells_total` is the pruning effectiveness.
    pub const SOLVER_CELLS_PRUNED: &str = "solver.cells_pruned";

    /// Tightest upward execution-cost stability margin across the mapped
    /// stages (gauge; a factor ≥ 1). Written by
    /// `pipemap_core::stability_margins`: the first drift factor at which
    /// any stage's execution-cost growth makes a different mapping
    /// strictly better. Per-stage margins are published under
    /// `solver.margin.stage<i>.exec_up` / `.ecom_in_up` by
    /// `pipemap explain`.
    pub const SOLVER_MARGIN_MIN_UP: &str = "solver.margin.min_exec_up";

    /// DP cells actually recomputed by the incremental re-solver
    /// (`pipemap_core::ResolveArtifact::resolve`); a margin short-circuit
    /// adds 0, a suffix re-solve adds only the invalidated stages' cells.
    pub const SOLVER_RESOLVE_CELLS: &str = "solver.resolve.cells";
    /// Mechanism of the last resolve (gauge): 0 = short-circuit (old
    /// mapping provably still optimal), 1 = suffix re-solve.
    pub const SOLVER_RESOLVE_MECHANISM: &str = "solver.resolve.mechanism";
    /// Invalidation frontier of the last resolve (gauge): index of the
    /// first stage whose DP cells had to be recomputed; `k` when nothing
    /// was invalidated.
    pub const SOLVER_RESOLVE_FRONTIER: &str = "solver.resolve.frontier";
    /// Wall time of incremental re-solves (histogram, seconds).
    pub const SOLVER_RESOLVE_WALL_S: &str = "solver.resolve.wall_s";
    /// 1 when the last resolve changed the mapping, 0 when the old
    /// mapping survived re-pricing (gauge).
    pub const SOLVER_RESOLVE_CHANGED: &str = "solver.resolve.changed";

    /// Channel messages sent by the executor data plane (each carries a
    /// batch of 1..=B data sets).
    pub const EXEC_BATCH_MESSAGES: &str = "exec.batch.messages";
    /// Data sets carried inside those messages.
    /// `items / messages` is the mean batch fill.
    pub const EXEC_BATCH_ITEMS: &str = "exec.batch.items";
    /// Buffer-pool takes served from a shelf (gauge, no allocation).
    pub const EXEC_POOL_HITS: &str = "exec.pool.hits";
    /// Buffer-pool takes that allocated a fresh payload (gauge).
    pub const EXEC_POOL_MISSES: &str = "exec.pool.misses";
    /// Payloads currently shelved in the buffer pool (gauge).
    pub const EXEC_POOL_SHELVED: &str = "exec.pool.shelved";
    /// Prefix of the per-boundary transport counters published by the
    /// out-of-process engine: `exec.link.<link>.{bytes,frames,items}`,
    /// where `<link>` names a stage boundary (e.g. `source->mix` or
    /// `fftcols->sink`). The OpenMetrics exposition folds the link into
    /// a `link="..."` label on `pipemap_exec_link_{bytes,frames,items}`.
    pub const EXEC_LINK_PREFIX: &str = "exec.link.";

    /// Prefix of the per-worker telemetry series aggregated by the
    /// out-of-process parent: `exec.worker.s<stage>i<inst>.p<pid>.<metric>`.
    /// The OpenMetrics exposition folds the worker identity into
    /// `stage`/`instance`/`pid` labels on `pipemap_exec_worker_<metric>`.
    pub const EXEC_WORKER_PREFIX: &str = "exec.worker.";
    /// Journey events dropped by a ring because it overflowed (counter;
    /// nonzero means the sampled population is biased toward recent
    /// data sets and `doctor` warns about completeness).
    pub const JOURNEY_DROPPED: &str = "obs.journey.dropped";

    /// 1 when the doctor's measured bottleneck stage differs from the
    /// DP-predicted one (gauge; see `pipemap-doctor`).
    pub const DOCTOR_DRIFT_FLAGGED: &str = "doctor.drift.flagged";
    /// Bottleneck stage index measured from journeys (gauge).
    pub const DOCTOR_DRIFT_MEASURED_BOTTLENECK: &str = "doctor.drift.measured_bottleneck";
    /// Bottleneck stage index the model predicted (gauge).
    pub const DOCTOR_DRIFT_PREDICTED_BOTTLENECK: &str = "doctor.drift.predicted_bottleneck";
    /// Worst per-stage relative error of measured vs predicted service
    /// time (gauge).
    pub const DOCTOR_DRIFT_MAX_REL_ERR: &str = "doctor.drift.max_rel_err";
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// Install the process-global registry. Returns `false` (and drops
/// `registry`) if one is already installed.
pub fn install_global(registry: Registry) -> bool {
    GLOBAL.set(registry).is_ok()
}

/// The global registry, if one was installed.
pub fn global_registry() -> Option<&'static Registry> {
    GLOBAL.get()
}

/// A recorder feeding the global registry — or a no-op handle when no
/// registry is installed. This is the accessor instrumented code uses.
pub fn global() -> Recorder {
    match GLOBAL.get() {
        Some(r) => r.recorder(),
        None => Recorder::disabled(),
    }
}

/// Open a timed span on the global recorder; bind the result:
/// `let _span = span!("dp_fill");`. The optional second argument is the
/// category (defaults to `"pipemap"`).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name, "pipemap")
    };
    ($name:expr, $cat:expr) => {
        $crate::global().span($name, $cat)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_starts_disabled_then_records_after_install() {
        // Process-global state: this test owns installation (the other
        // tests in this crate only use local registries).
        let before = global();
        before.add("pre.install", 1);
        assert!(!before.enabled());

        assert!(install_global(Registry::new()));
        assert!(!install_global(Registry::new()), "second install refused");

        let rec = global();
        assert!(rec.enabled());
        rec.add("post.install", 2);
        let snap = global_registry().unwrap().snapshot();
        assert_eq!(snap.counter("post.install"), Some(2));
        assert_eq!(snap.counter("pre.install"), None);

        // span! compiles and is inert until tracing is enabled.
        drop(span!("check"));
        assert!(global_registry().unwrap().events().is_empty());
        global_registry().unwrap().set_tracing(true);
        drop(span!("check", "tests"));
        let events = global_registry().unwrap().take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].cat, "tests");
    }
}
