//! Delta snapshots: the mergeable wire form of a registry.
//!
//! The out-of-process data plane runs one worker process per (stage,
//! instance); each worker records into its own local [`Registry`] and
//! periodically ships what changed to the parent, which folds it into
//! the process-wide registry under per-worker name prefixes. Three
//! metric kinds need three different transfer semantics:
//!
//! * **counters** travel as *deltas* since the previous snapshot, so
//!   applying them with [`Recorder::add`] is idempotent-per-snapshot
//!   and a restarted worker (fresh registry, counts reset to zero)
//!   never makes the aggregate go backwards;
//! * **gauges** travel as *absolute* values — last writer wins;
//! * **histograms** travel as per-bucket count deltas plus
//!   (count, sum, max). Bucket indices derive from the f64 bit pattern
//!   alone (see `metrics::bucket_index`), so they are stable across
//!   processes and merge exactly: folding every worker's deltas into
//!   one parent histogram yields the same buckets as a single
//!   histogram fed the union of all samples. `max` is shipped as the
//!   worker's running maximum; merging via max is order-independent.
//!
//! Sampled journey events ride along in the same snapshot, already
//! re-based by the producer to the plan's shared `CLOCK_REALTIME`
//! epoch so cross-process journeys stitch without clock negotiation.
//!
//! The JSON form is tagged [`schema::TELEMETRY`]; [`DeltaTracker`]
//! produces snapshots on the worker side and [`apply_delta`] folds
//! them in on the parent side.

use std::collections::BTreeMap;

use crate::journey::JourneyEvent;
use crate::json::Value;
use crate::metrics::{Recorder, Registry};
use crate::schema;

/// What changed in one histogram since the previous snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramDelta {
    /// Metric name in the worker's registry (unprefixed).
    pub name: String,
    /// Sparse `(bucket_index, added_count)` pairs.
    pub buckets: Vec<(u32, u64)>,
    /// Observations added since the previous snapshot.
    pub count: u64,
    /// Sum added since the previous snapshot.
    pub sum: f64,
    /// The worker's running maximum (absolute, not a delta — merging
    /// by max over snapshots reconstructs the true overall maximum).
    pub max: f64,
}

/// One worker's changes since its previous snapshot.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct DeltaSnapshot {
    /// The worker's OS process id.
    pub pid: u32,
    /// Snapshot sequence number (1, 2, 3, ... within one worker run).
    pub seq: u64,
    /// Counter deltas since the previous snapshot (zero deltas are
    /// included on the first snapshot so the parent materialises the
    /// series, then omitted).
    pub counters: Vec<(String, u64)>,
    /// Absolute gauge values.
    pub gauges: Vec<(String, f64)>,
    /// Histogram bucket deltas.
    pub histograms: Vec<HistogramDelta>,
    /// Journey events drained from the worker's ring, timestamps
    /// already on the shared epoch.
    pub journeys: Vec<JourneyEvent>,
}

impl DeltaSnapshot {
    /// Serialise as a schema-tagged JSON object.
    pub fn to_value(&self) -> Value {
        let mut o = Value::object();
        o.set("schema", schema::TELEMETRY);
        o.set("pid", self.pid as u64);
        o.set("seq", self.seq);
        let mut counters = Value::object();
        for (k, v) in &self.counters {
            counters.set(k.clone(), *v);
        }
        o.set("counters", counters);
        let mut gauges = Value::object();
        for (k, v) in &self.gauges {
            gauges.set(k.clone(), *v);
        }
        o.set("gauges", gauges);
        let hists: Vec<Value> = self
            .histograms
            .iter()
            .map(|h| {
                let mut ho = Value::object();
                ho.set("name", h.name.clone());
                ho.set("count", h.count);
                ho.set("sum", h.sum);
                ho.set("max", h.max);
                let buckets: Vec<Value> = h
                    .buckets
                    .iter()
                    .map(|&(idx, c)| Value::Array(vec![(idx as u64).into(), c.into()]))
                    .collect();
                ho.set("buckets", Value::Array(buckets));
                ho
            })
            .collect();
        o.set("histograms", Value::Array(hists));
        let journeys: Vec<Value> = self.journeys.iter().map(|e| e.to_value()).collect();
        o.set("journeys", Value::Array(journeys));
        o
    }

    /// Compact single-line JSON (the TELEMETRY frame payload).
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Parse a snapshot produced by [`to_value`](Self::to_value),
    /// rejecting unknown schema tags.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let tag = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("telemetry snapshot missing 'schema'")?;
        if tag != schema::TELEMETRY {
            return Err(format!(
                "unsupported telemetry schema '{tag}' (expected '{}')",
                schema::TELEMETRY
            ));
        }
        let num = |key: &str| {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("telemetry snapshot missing numeric '{key}'"))
        };
        let mut counters = Vec::new();
        if let Some(pairs) = v.get("counters").and_then(Value::as_object) {
            for (k, c) in pairs {
                let c = c
                    .as_f64()
                    .ok_or_else(|| format!("non-numeric counter delta '{k}'"))?;
                counters.push((k.clone(), c as u64));
            }
        }
        let mut gauges = Vec::new();
        if let Some(pairs) = v.get("gauges").and_then(Value::as_object) {
            for (k, g) in pairs {
                // Non-finite gauges serialise as JSON null; skip them.
                if let Some(g) = g.as_f64() {
                    gauges.push((k.clone(), g));
                }
            }
        }
        let mut histograms = Vec::new();
        for h in v.get("histograms").and_then(Value::as_array).unwrap_or(&[]) {
            let name = h
                .get("name")
                .and_then(Value::as_str)
                .ok_or("histogram delta missing 'name'")?
                .to_string();
            let field = |key: &str| {
                h.get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("histogram delta '{name}' missing '{key}'"))
            };
            let mut buckets = Vec::new();
            for pair in h.get("buckets").and_then(Value::as_array).unwrap_or(&[]) {
                let pair = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| format!("histogram delta '{name}': bad bucket pair"))?;
                let idx = pair[0]
                    .as_f64()
                    .ok_or_else(|| format!("histogram delta '{name}': bad bucket index"))?;
                let c = pair[1]
                    .as_f64()
                    .ok_or_else(|| format!("histogram delta '{name}': bad bucket count"))?;
                buckets.push((idx as u32, c as u64));
            }
            histograms.push(HistogramDelta {
                count: field("count")? as u64,
                sum: field("sum")?,
                max: field("max")?,
                name,
                buckets,
            });
        }
        let mut journeys = Vec::new();
        for e in v.get("journeys").and_then(Value::as_array).unwrap_or(&[]) {
            journeys.push(JourneyEvent::from_value(e)?);
        }
        Ok(Self {
            pid: num("pid")? as u32,
            seq: num("seq")? as u64,
            counters,
            gauges,
            histograms,
            journeys,
        })
    }

    /// Parse from the compact JSON text form.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Value::parse(text).map_err(|e| e.to_string())?;
        Self::from_value(&v)
    }

    /// Whether this snapshot carries no changes at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.journeys.is_empty()
    }
}

#[derive(Default)]
struct HistogramBaseline {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: f64,
}

/// Worker-side snapshot producer: remembers the previously shipped
/// state of every counter and histogram so each [`collect`] emits only
/// what changed since the last one.
///
/// [`collect`]: DeltaTracker::collect
#[derive(Default)]
pub struct DeltaTracker {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramBaseline>,
    seq: u64,
}

impl DeltaTracker {
    /// A tracker with no baseline (the first collect ships everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Diff `registry` against the previous collect and advance the
    /// baseline. Gauges always ship absolute; counters and histograms
    /// ship deltas, included only when nonzero — except on each
    /// series' first appearance, which ships even a zero delta so the
    /// parent materialises the series immediately.
    pub fn collect(&mut self, registry: &Registry, pid: u32) -> DeltaSnapshot {
        self.seq += 1;
        let snap = registry.snapshot();
        let mut counters = Vec::new();
        for (name, value) in &snap.counters {
            let prev = self.counters.insert(name.clone(), *value);
            let delta = value.saturating_sub(prev.unwrap_or(0));
            if delta > 0 || prev.is_none() {
                counters.push((name.clone(), delta));
            }
        }
        let mut histograms = Vec::new();
        for (name, hist) in registry.histogram_cells() {
            let base = self.histograms.entry(name.clone()).or_default();
            let mut buckets = Vec::new();
            for (idx, c) in hist.bucket_counts() {
                let prev = base.buckets.insert(idx, c).unwrap_or(0);
                if c > prev {
                    buckets.push((idx, c - prev));
                }
            }
            let count = hist.count();
            let sum = hist.sum();
            let d_count = count.saturating_sub(base.count);
            let d_sum = sum - base.sum;
            // Still-empty histograms don't ship; a histogram first
            // appears downstream with its first real observation.
            if d_count > 0 {
                histograms.push(HistogramDelta {
                    name: name.clone(),
                    buckets,
                    count: d_count,
                    sum: d_sum,
                    max: hist.max(),
                });
            }
            base.count = count;
            base.sum = sum;
        }
        DeltaSnapshot {
            pid,
            seq: self.seq,
            counters,
            gauges: snap.gauges.clone(),
            histograms,
            journeys: Vec::new(),
        }
    }
}

/// Parent-side fold: apply one worker snapshot into `rec` with every
/// metric name prefixed by `prefix` (e.g. `exec.worker.s0i1.p4242.`).
/// Journey events are NOT applied here — they carry stitching
/// semantics, so the caller routes them to its journey collector.
pub fn apply_delta(rec: &Recorder, prefix: &str, snap: &DeltaSnapshot) {
    for (name, delta) in &snap.counters {
        rec.add(&format!("{prefix}{name}"), *delta);
    }
    for (name, value) in &snap.gauges {
        rec.gauge_set(&format!("{prefix}{name}"), *value);
    }
    for h in &snap.histograms {
        rec.histogram(&format!("{prefix}{}", h.name))
            .merge_cells(&h.buckets, h.count, h.sum, h.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journey::JourneyKind;
    use crate::metrics::Histogram;

    #[test]
    fn snapshot_json_round_trips() {
        let snap = DeltaSnapshot {
            pid: 4242,
            seq: 3,
            counters: vec![("items".into(), 17), ("exec.batch.messages".into(), 2)],
            gauges: vec![("cpu_pct".into(), 42.5), ("rss_bytes".into(), 1.5e7)],
            histograms: vec![HistogramDelta {
                name: "service_s".into(),
                buckets: vec![(500, 3), (501, 1)],
                count: 4,
                sum: 0.012,
                max: 0.004,
            }],
            journeys: vec![JourneyEvent {
                seq: 9,
                stage: 1,
                instance: 0,
                kind: JourneyKind::ServiceEnd,
                t_us: 1234.5,
                batch: 7,
            }],
        };
        let text = snap.to_json();
        let back = DeltaSnapshot::parse(&text).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        assert!(
            DeltaSnapshot::parse(r#"{"schema":"pipemap-telemetry/v9","pid":1,"seq":1}"#)
                .unwrap_err()
                .contains("unsupported")
        );
        assert!(DeltaSnapshot::parse(r#"{"pid":1,"seq":1}"#).is_err());
        assert!(DeltaSnapshot::parse("not json").is_err());
    }

    #[test]
    fn tracker_ships_only_changes() {
        let registry = Registry::new();
        let rec = registry.recorder();
        rec.add("items", 5);
        rec.observe("service_s", 0.010);
        rec.observe("service_s", 0.020);
        rec.gauge_set("depth", 3.0);

        let mut tracker = DeltaTracker::new();
        let first = tracker.collect(&registry, 1);
        assert_eq!(first.seq, 1);
        assert_eq!(first.counters, vec![("items".to_string(), 5)]);
        assert_eq!(first.gauges, vec![("depth".to_string(), 3.0)]);
        assert_eq!(first.histograms.len(), 1);
        assert_eq!(first.histograms[0].count, 2);
        assert!((first.histograms[0].sum - 0.030).abs() < 1e-12);

        // Nothing changed: counters and histograms go quiet, gauges
        // remain absolute.
        let second = tracker.collect(&registry, 1);
        assert_eq!(second.seq, 2);
        assert!(second.counters.is_empty());
        assert!(second.histograms.is_empty());
        assert_eq!(second.gauges, vec![("depth".to_string(), 3.0)]);

        rec.add("items", 2);
        rec.observe("service_s", 0.040);
        let third = tracker.collect(&registry, 1);
        assert_eq!(third.counters, vec![("items".to_string(), 2)]);
        assert_eq!(third.histograms.len(), 1);
        assert_eq!(third.histograms[0].count, 1);
        assert!((third.histograms[0].sum - 0.040).abs() < 1e-12);
        assert_eq!(third.histograms[0].max, 0.040);
    }

    #[test]
    fn deltas_applied_to_parent_reconstruct_worker_totals() {
        let worker = Registry::new();
        let wrec = worker.recorder();
        let parent = Registry::new();
        let prec = parent.recorder();
        let mut tracker = DeltaTracker::new();

        for round in 1..=3u64 {
            wrec.add("items", round);
            wrec.observe("service_s", round as f64 * 1e-3);
            let snap = tracker.collect(&worker, 77);
            apply_delta(&prec, "exec.worker.s0i0.p77.", &snap);
        }

        let agg = parent.snapshot();
        assert_eq!(agg.counter("exec.worker.s0i0.p77.items"), Some(6));
        let h = agg.histogram("exec.worker.s0i0.p77.service_s").unwrap();
        assert_eq!(h.count, 3);
        assert!((h.sum - 0.006).abs() < 1e-12);
        assert_eq!(h.max, 0.003);
        // The merged histogram matches one fed the same samples.
        let direct = Histogram::new();
        for v in [1e-3, 2e-3, 3e-3] {
            direct.record(v);
        }
        let d = direct.summary();
        assert_eq!(h.p50, d.p50);
        assert_eq!(h.p99, d.p99);
    }
}
