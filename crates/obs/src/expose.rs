//! Live metrics exposition over HTTP — std-only, no external crates.
//!
//! [`serve`] binds a [`std::net::TcpListener`] and answers four routes
//! with a minimal HTTP/1.1 response per connection:
//!
//! * `GET /metrics` — OpenMetrics text (see [`crate::openmetrics`]);
//! * `GET /snapshot.json` — the full metrics snapshot as pretty JSON;
//! * `GET /recorder.jsonl` — the flight-recorder ring as JSONL (404
//!   when no recorder is attached);
//! * `GET /journeys.jsonl` — the journey collector's current ring as
//!   JSONL (404 when none is attached; see [`serve_with_journeys`]);
//! * `GET /events.jsonl` — the structured event ring as JSONL (404 when
//!   none is attached; see [`serve_observatory`]). Accepts a
//!   `?since=<seq>` cursor for tail-only fetches: only events with a
//!   sequence number strictly greater than `since` are returned, and the
//!   header line's `next_since` is the cursor to pass on the next poll —
//!   a dashboard polling at 1 Hz re-downloads nothing it has seen;
//! * `GET /model.json` — the latest online-fitted cost model (404 when
//!   no publisher is attached);
//! * `GET /healthz` — liveness: always 200 with uptime and version, so
//!   orchestration can probe a run without touching the scrape routes.
//!
//! The server runs on one background thread, handling connections
//! serially — scrape endpoints see one client at a time and responses
//! are small, so there is no need for a thread pool. The returned
//! [`MetricsServer`] stops the thread on drop (it wakes the blocking
//! `accept` with a loopback connection).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::events::{EventLog, ModelPublisher};
use crate::journey::{journey_jsonl, JourneyCollector};
use crate::metrics::Registry;
use crate::recorder::FlightRecorder;

/// Handle to a running exposition server; shuts down on drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful when serving on port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the server thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve `registry` (and optionally a flight recorder's ring) on `addr`.
///
/// `addr` is anything [`ToSocketAddrs`] accepts, e.g. `"127.0.0.1:9184"`
/// or `"127.0.0.1:0"` to pick a free port (read it back from
/// [`MetricsServer::addr`]).
pub fn serve(
    addr: impl ToSocketAddrs,
    registry: &Registry,
    recorder: Option<&FlightRecorder>,
) -> std::io::Result<MetricsServer> {
    serve_with_journeys(addr, registry, recorder, None)
}

/// [`serve`], additionally exposing a journey collector's ring at
/// `GET /journeys.jsonl` so `pipemap doctor --attach` can analyse a
/// live run.
pub fn serve_with_journeys(
    addr: impl ToSocketAddrs,
    registry: &Registry,
    recorder: Option<&FlightRecorder>,
    journeys: Option<&JourneyCollector>,
) -> std::io::Result<MetricsServer> {
    serve_observatory(addr, registry, recorder, journeys, None, None)
}

/// The full exposition surface: [`serve_with_journeys`] plus the
/// structured event ring at `GET /events.jsonl` and the online-fitted
/// cost model at `GET /model.json`, so `pipemap top --attach` can render
/// a live dashboard.
pub fn serve_observatory(
    addr: impl ToSocketAddrs,
    registry: &Registry,
    recorder: Option<&FlightRecorder>,
    journeys: Option<&JourneyCollector>,
    events: Option<&EventLog>,
    model: Option<&ModelPublisher>,
) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let registry = registry.clone_handle();
    let recorder = recorder.map(FlightRecorder::share_ring);
    let journeys = journeys.cloned();
    let events = events.cloned();
    let model = model.cloned();
    let stop_flag = stop.clone();
    let thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if stop_flag.load(Ordering::Relaxed) {
                break;
            }
            let Ok(stream) = conn else { continue };
            // A misbehaving client must not wedge the scrape loop.
            let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
            let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
            let _ = handle(
                stream,
                &registry,
                recorder.as_ref(),
                journeys.as_ref(),
                events.as_ref(),
                model.as_ref(),
            );
        }
    });
    Ok(MetricsServer {
        addr: local,
        stop,
        thread: Some(thread),
    })
}

fn handle(
    mut stream: TcpStream,
    registry: &Registry,
    recorder: Option<&FlightRecorder>,
    journeys: Option<&JourneyCollector>,
    events: Option<&EventLog>,
    model: Option<&ModelPublisher>,
) -> std::io::Result<()> {
    let (path, query) = match read_request_path(&mut stream) {
        Some(p) => p,
        None => {
            return respond(
                &mut stream,
                "400 Bad Request",
                "text/plain; charset=utf-8",
                "bad request\n",
            )
        }
    };
    match path.as_str() {
        "/metrics" => respond(
            &mut stream,
            "200 OK",
            "application/openmetrics-text; version=1.0.0; charset=utf-8",
            &registry.to_openmetrics(),
        ),
        "/snapshot.json" => {
            let mut body = registry.snapshot().to_json().to_json_pretty();
            body.push('\n');
            respond(
                &mut stream,
                "200 OK",
                "application/json; charset=utf-8",
                &body,
            )
        }
        "/recorder.jsonl" => match recorder {
            Some(rec) => respond(
                &mut stream,
                "200 OK",
                "application/jsonl; charset=utf-8",
                &rec.to_jsonl(),
            ),
            None => respond(
                &mut stream,
                "404 Not Found",
                "text/plain; charset=utf-8",
                "no flight recorder attached\n",
            ),
        },
        "/journeys.jsonl" => match journeys {
            Some(col) => respond(
                &mut stream,
                "200 OK",
                "application/jsonl; charset=utf-8",
                &journey_jsonl(&col.snapshot()),
            ),
            None => respond(
                &mut stream,
                "404 Not Found",
                "text/plain; charset=utf-8",
                "no journey collector attached\n",
            ),
        },
        "/events.jsonl" => match events {
            Some(log) => {
                let since = query_param(&query, "since")
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(0);
                respond(
                    &mut stream,
                    "200 OK",
                    "application/jsonl; charset=utf-8",
                    &log.to_jsonl_since(since),
                )
            }
            None => respond(
                &mut stream,
                "404 Not Found",
                "text/plain; charset=utf-8",
                "no event log attached\n",
            ),
        },
        "/model.json" => match model {
            Some(slot) => {
                let mut body = slot.current();
                if !body.ends_with('\n') {
                    body.push('\n');
                }
                respond(
                    &mut stream,
                    "200 OK",
                    "application/json; charset=utf-8",
                    &body,
                )
            }
            None => respond(
                &mut stream,
                "404 Not Found",
                "text/plain; charset=utf-8",
                "no model publisher attached\n",
            ),
        },
        "/healthz" => {
            let mut doc = crate::json::Value::object();
            doc.set("status", "ok");
            doc.set("uptime_s", registry.uptime_s());
            doc.set("version", env!("CARGO_PKG_VERSION"));
            let mut body = doc.to_json();
            body.push('\n');
            respond(
                &mut stream,
                "200 OK",
                "application/json; charset=utf-8",
                &body,
            )
        }
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "routes: /metrics /snapshot.json /recorder.jsonl /journeys.jsonl /events.jsonl /model.json /healthz\n",
        ),
    }
}

/// The value of `name` in a raw query string (`a=1&b=2`), if present.
fn query_param<'q>(query: &'q str, name: &str) -> Option<&'q str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == name).then_some(v)
    })
}

/// Read up to the end of the request headers and return the request
/// path and query string (empty when absent), or `None` for anything
/// that is not a well-formed GET.
fn read_request_path(stream: &mut TcpStream) -> Option<(String, String)> {
    let mut buf = [0u8; 4096];
    let mut used = 0;
    loop {
        let n = stream.read(&mut buf[used..]).ok()?;
        if n == 0 {
            break;
        }
        used += n;
        if buf[..used].windows(4).any(|w| w == b"\r\n\r\n") || used == buf.len() {
            break;
        }
    }
    let text = std::str::from_utf8(&buf[..used]).ok()?;
    let mut parts = text.lines().next()?.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    let (path, query) = match path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (path, ""),
    };
    Some((path.to_string(), query.to_string()))
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::RecorderConfig;

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_snapshot_and_recorder() {
        let registry = Registry::new();
        let r = registry.recorder();
        r.add("srv.requests", 3);
        r.gauge_set("srv.level", 1.5);
        r.observe("srv.latency_s", 0.01);
        let rec = FlightRecorder::attach(&registry, RecorderConfig::default());
        rec.sample_now();
        rec.sample_now();

        let server = serve("127.0.0.1:0", &registry, Some(&rec)).unwrap();
        let addr = server.addr();

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("application/openmetrics-text"));
        assert!(body.contains("pipemap_srv_requests_total 3"));
        assert!(body.contains("# TYPE pipemap_srv_level gauge"));
        assert!(body.contains("pipemap_srv_latency_s_bucket"));
        assert!(body.ends_with("# EOF\n"));

        let (head, body) = http_get(addr, "/snapshot.json");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        let doc = crate::json::Value::parse(body.trim()).unwrap();
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("srv.requests"))
                .and_then(crate::json::Value::as_f64),
            Some(3.0)
        );

        let (head, body) = http_get(addr, "/recorder.jsonl");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(body.lines().count(), 2);

        let (head, _) = http_get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn recorder_route_is_404_without_a_recorder() {
        let registry = Registry::new();
        let server = serve("127.0.0.1:0", &registry, None).unwrap();
        let (head, _) = http_get(server.addr(), "/recorder.jsonl");
        assert!(head.starts_with("HTTP/1.1 404"));
        let (head, _) = http_get(server.addr(), "/journeys.jsonl");
        assert!(head.starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn journeys_route_serves_the_ring() {
        use crate::journey::{parse_journey_jsonl, JourneyCollector, JourneyConfig, JourneyKind};
        let registry = Registry::new();
        let col = JourneyCollector::new(JourneyConfig::default());
        let mut sink = col.sink();
        sink.record_at(1.0, JourneyKind::Source, 3, 0, 0, 0);
        sink.record_at(2.0, JourneyKind::Sink, 3, 1, 0, 0);
        sink.flush();
        let server = serve_with_journeys("127.0.0.1:0", &registry, None, Some(&col)).unwrap();
        let (head, body) = http_get(server.addr(), "/journeys.jsonl");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let events = parse_journey_jsonl(&body).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 3);
        // Serving snapshots without draining: the ring still holds both.
        assert_eq!(col.snapshot().len(), 2);
    }

    #[test]
    fn events_and_model_routes_serve_the_observatory() {
        use crate::events::{EventKind, EventLog, ModelPublisher, ObsEvent, Severity};
        let registry = Registry::new();
        let log = EventLog::default();
        log.emit(ObsEvent {
            t_us: 1.0,
            kind: EventKind::BottleneckChange,
            severity: Severity::Warning,
            stage: Some(1),
            value: 2.0,
            message: "moved".to_string(),
        });
        let model = ModelPublisher::new();
        let server = serve_observatory(
            "127.0.0.1:0",
            &registry,
            None,
            None,
            Some(&log),
            Some(&model),
        )
        .unwrap();
        let addr = server.addr();

        let (head, body) = http_get(addr, "/events.jsonl");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let events = crate::events::parse_events_jsonl(&body).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::BottleneckChange);

        // Before any publish the model route still serves valid JSON.
        let (head, body) = http_get(addr, "/model.json");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        crate::json::Value::parse(body.trim()).unwrap();
        model.publish("{\"schema\":\"x\"}".to_string());
        let (_, body) = http_get(addr, "/model.json");
        assert!(body.contains("\"schema\""), "{body}");
    }

    #[test]
    fn events_route_honours_the_since_cursor() {
        use crate::events::{EventKind, EventLog, ObsEvent, Severity};
        let registry = Registry::new();
        let log = EventLog::default();
        let mk = |t: f64| ObsEvent {
            t_us: t,
            kind: EventKind::Shed,
            severity: Severity::Info,
            stage: None,
            value: 0.0,
            message: "x".to_string(),
        };
        log.emit(mk(1.0));
        log.emit(mk(2.0));
        let server =
            serve_observatory("127.0.0.1:0", &registry, None, None, Some(&log), None).unwrap();
        let addr = server.addr();

        // Full fetch: header + 2 events, cursor = 2.
        let (_, body) = http_get(addr, "/events.jsonl");
        assert_eq!(body.lines().count(), 3, "{body}");
        let header = crate::json::Value::parse(body.lines().next().unwrap()).unwrap();
        assert_eq!(
            header
                .get("next_since")
                .and_then(crate::json::Value::as_f64),
            Some(2.0)
        );

        // Tail-only: nothing new after the cursor.
        let (_, body) = http_get(addr, "/events.jsonl?since=2");
        assert_eq!(body.lines().count(), 1, "{body}");

        log.emit(mk(3.0));
        let (_, body) = http_get(addr, "/events.jsonl?since=2");
        assert_eq!(body.lines().count(), 2, "{body}");
        let line = crate::json::Value::parse(body.lines().nth(1).unwrap()).unwrap();
        assert_eq!(
            line.get("seq").and_then(crate::json::Value::as_f64),
            Some(3.0)
        );

        // Garbage cursors fall back to a full fetch.
        let (_, body) = http_get(addr, "/events.jsonl?since=nope");
        assert_eq!(body.lines().count(), 4, "{body}");
    }

    #[test]
    fn healthz_always_answers() {
        let registry = Registry::new();
        let server = serve("127.0.0.1:0", &registry, None).unwrap();
        let (head, body) = http_get(server.addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let doc = crate::json::Value::parse(body.trim()).unwrap();
        assert_eq!(
            doc.get("status").and_then(crate::json::Value::as_str),
            Some("ok")
        );
        assert!(
            doc.get("uptime_s")
                .and_then(crate::json::Value::as_f64)
                .unwrap()
                >= 0.0
        );
        assert!(doc
            .get("version")
            .and_then(crate::json::Value::as_str)
            .is_some());
    }

    #[test]
    fn observatory_routes_are_404_when_unattached() {
        let registry = Registry::new();
        let server = serve("127.0.0.1:0", &registry, None).unwrap();
        let (head, _) = http_get(server.addr(), "/events.jsonl");
        assert!(head.starts_with("HTTP/1.1 404"));
        let (head, _) = http_get(server.addr(), "/model.json");
        assert!(head.starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn shutdown_stops_accepting() {
        let registry = Registry::new();
        let mut server = serve("127.0.0.1:0", &registry, None).unwrap();
        let addr = server.addr();
        server.shutdown();
        // The listener is gone: either connect fails or reads see EOF.
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = write!(s, "GET /metrics HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            assert!(out.is_empty(), "server answered after shutdown: {out}");
        }
    }
}
