//! Thread-safe metrics: counters, gauges, and log-bucketed histograms.
//!
//! A [`Registry`] owns the metric storage; cheap [`Recorder`] handles
//! are passed to instrumented code. A `Recorder` built from
//! [`Recorder::disabled`] (or from [`crate::global`] before a registry
//! is installed) is a no-op: every operation is a branch on `None` and
//! returns immediately, so instrumentation costs nothing when
//! observability is off.
//!
//! Histograms use logarithmic buckets — 8 sub-buckets per power of two
//! (3 mantissa bits), 128 octaves covering 2⁻⁶⁴..2⁶⁴ — so a recorded
//! value lands in a bucket whose width is ~12.5% of its magnitude and
//! quantile estimates carry at most ~±6% relative error. The maximum is
//! tracked exactly.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::json::Value;
use crate::trace::TraceEvent;

/// Sub-buckets per power of two (3 mantissa bits).
const SUB_BUCKETS: usize = 8;
/// Powers of two covered: exponents −64..=63.
const OCTAVES: usize = 128;
/// Total bucket count (8 KiB of counters per histogram).
const BUCKETS: usize = OCTAVES * SUB_BUCKETS;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Map a value to its bucket. Non-positive, subnormal, and tiny values
/// collapse into bucket 0; huge values into the last bucket.
fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    if exp < -(OCTAVES as i64 / 2) {
        return 0;
    }
    if exp >= OCTAVES as i64 / 2 {
        return BUCKETS - 1;
    }
    let sub = ((bits >> 49) & 0x7) as usize;
    (exp + OCTAVES as i64 / 2) as usize * SUB_BUCKETS + sub
}

/// Representative value of a bucket (its geometric middle, linearised).
fn bucket_value(idx: usize) -> f64 {
    let exp = (idx / SUB_BUCKETS) as i32 - OCTAVES as i32 / 2;
    let sub = (idx % SUB_BUCKETS) as f64;
    2f64.powi(exp) * (1.0 + (sub + 0.5) / SUB_BUCKETS as f64)
}

/// Inclusive upper bound of a bucket — the `le` label in OpenMetrics
/// exposition.
fn bucket_upper(idx: usize) -> f64 {
    let exp = (idx / SUB_BUCKETS) as i32 - OCTAVES as i32 / 2;
    let sub = (idx % SUB_BUCKETS) as f64;
    2f64.powi(exp) * (1.0 + (sub + 1.0) / SUB_BUCKETS as f64)
}

fn atomic_f64_add(cell: &AtomicU64, delta: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f64::from_bits(cur) + delta;
        match cell.compare_exchange_weak(cur, next.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

fn atomic_f64_max(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while v > f64::from_bits(cur) {
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

/// A log-bucketed histogram. All operations are lock-free.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram (standalone use; registries create their own
    /// via [`Recorder::observe`]).
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
            max: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: f64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum, v);
        atomic_f64_max(&self.max, v);
    }

    /// Raw per-bucket counts as `(bucket_index, count)` pairs over the
    /// non-empty buckets — the mergeable wire form of this histogram.
    /// Bucket indices are stable across processes (they derive from the
    /// f64 bit pattern alone), so two histograms of the same metric can
    /// be combined bucket-by-bucket without losing quantile accuracy.
    pub fn bucket_counts(&self) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        for (idx, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                out.push((idx as u32, c));
            }
        }
        out
    }

    /// Total observation count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum.load(Ordering::Relaxed))
    }

    /// Exact maximum observation (0 when empty).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max.load(Ordering::Relaxed))
    }

    /// Fold another histogram into this one. Because buckets are
    /// index-aligned, merge is exact at the bucket level: the merged
    /// histogram's quantiles equal those of a single histogram fed the
    /// union of both sample streams (property-tested in
    /// `tests/histogram_merge.rs`).
    pub fn merge(&self, other: &Histogram) {
        self.merge_cells(
            &other.bucket_counts(),
            other.count(),
            other.sum(),
            other.max(),
        );
    }

    /// Fold pre-extracted bucket deltas into this histogram — the
    /// receive side of the telemetry wire form. Out-of-range bucket
    /// indices (a newer peer with a different bucket layout) clamp into
    /// the last bucket rather than panicking.
    pub fn merge_cells(&self, buckets: &[(u32, u64)], count: u64, sum: f64, max: f64) {
        for &(idx, c) in buckets {
            let idx = (idx as usize).min(BUCKETS - 1);
            self.buckets[idx].fetch_add(c, Ordering::Relaxed);
        }
        self.count.fetch_add(count, Ordering::Relaxed);
        atomic_f64_add(&self.sum, sum);
        atomic_f64_max(&self.max, max);
    }

    /// Cumulative `(upper_bound, count)` pairs over the non-empty
    /// buckets, in increasing bound order — the OpenMetrics `_bucket`
    /// series (the implicit `+Inf` bound equals the total count).
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                cum += c;
                out.push((bucket_upper(idx), cum));
            }
        }
        out
    }

    /// A consistent-enough point-in-time summary (readers racing
    /// writers may see a count off by the in-flight observations).
    pub fn summary(&self) -> HistogramSummary {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let sum = f64::from_bits(self.sum.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max.load(Ordering::Relaxed));
        let quantile = |q: f64| -> f64 {
            if total == 0 {
                return 0.0;
            }
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (idx, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    // The exact max beats the bucket estimate at the top.
                    return bucket_value(idx).min(max);
                }
            }
            max
        };
        HistogramSummary {
            count: total,
            sum,
            mean: if total > 0 { sum / total as f64 } else { 0.0 },
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
            max,
        }
    }
}

/// Point-in-time digest of one histogram.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: f64,
    pub mean: f64,
    /// Median (≤ ~6% relative bucketing error).
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    /// Exact maximum observation.
    pub max: f64,
}

impl HistogramSummary {
    /// JSON form used in reports.
    pub fn to_json(&self) -> Value {
        let mut o = Value::object();
        o.set("count", self.count);
        o.set("sum", self.sum);
        o.set("mean", self.mean);
        o.set("p50", self.p50);
        o.set("p95", self.p95);
        o.set("p99", self.p99);
        o.set("max", self.max);
        o
    }
}

pub(crate) struct Inner {
    pub(crate) epoch: Instant,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    pub(crate) tracing: AtomicBool,
    pub(crate) events: Mutex<Vec<TraceEvent>>,
    pub(crate) lanes: Mutex<Vec<String>>,
}

/// Owner of all metric and trace storage for one observation session.
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry with tracing disabled and one lane ("main").
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                tracing: AtomicBool::new(false),
                events: Mutex::new(Vec::new()),
                lanes: Mutex::new(vec!["main".to_string()]),
            }),
        }
    }

    /// Turn span/event capture on or off (metrics always record).
    pub fn set_tracing(&self, on: bool) {
        self.inner.tracing.store(on, Ordering::Relaxed);
    }

    /// A recorder handle feeding this registry.
    pub fn recorder(&self) -> Recorder {
        Recorder {
            inner: Some(self.inner.clone()),
        }
    }

    /// A second owner of the same storage, for handing the registry to a
    /// background thread (the metrics server, the flight recorder).
    /// Snapshots taken through either handle see the same metrics.
    pub fn clone_handle(&self) -> Registry {
        Registry {
            inner: self.inner.clone(),
        }
    }

    /// Seconds since this registry was created.
    pub fn uptime_s(&self) -> f64 {
        self.inner.epoch.elapsed().as_secs_f64()
    }

    /// The histograms by name, with live access to their buckets (for
    /// exposition formats and delta shipping, which need more than the
    /// summary).
    pub fn histogram_cells(&self) -> Vec<(String, Arc<Histogram>)> {
        lock(&self.inner.histograms)
            .iter()
            .map(|(k, h)| (k.clone(), h.clone()))
            .collect()
    }

    /// Register a named trace lane (a Chrome `tid`); returns its id.
    pub fn register_lane(&self, name: impl Into<String>) -> u64 {
        let mut lanes = lock(&self.inner.lanes);
        lanes.push(name.into());
        (lanes.len() - 1) as u64
    }

    /// Lane names indexed by lane id.
    pub fn lane_names(&self) -> Vec<String> {
        lock(&self.inner.lanes).clone()
    }

    /// Drain all captured trace events.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut lock(&self.inner.events))
    }

    /// Copy the captured trace events without draining them.
    pub fn events(&self) -> Vec<TraceEvent> {
        lock(&self.inner.events).clone()
    }

    /// Point-in-time snapshot of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = lock(&self.inner.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = lock(&self.inner.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = lock(&self.inner.histograms)
            .iter()
            .map(|(k, h)| (k.clone(), h.summary()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Sorted point-in-time view of a registry's metrics.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// JSON form: `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> Value {
        let mut counters = Value::object();
        for (k, v) in &self.counters {
            counters.set(k.clone(), *v);
        }
        let mut gauges = Value::object();
        for (k, v) in &self.gauges {
            gauges.set(k.clone(), *v);
        }
        let mut histograms = Value::object();
        for (k, h) in &self.histograms {
            histograms.set(k.clone(), h.to_json());
        }
        let mut o = Value::object();
        o.set("counters", counters);
        o.set("gauges", gauges);
        o.set("histograms", histograms);
        o
    }

    /// Value of one counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Summary of one histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }
}

/// Cheap, cloneable handle used by instrumented code. All methods are
/// no-ops when the handle is [disabled](Recorder::disabled).
#[derive(Clone)]
pub struct Recorder {
    pub(crate) inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A handle that drops every observation (the no-op fast path).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether observations go anywhere.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Bump a counter.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            counter_cell(inner, name).fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// A reusable counter handle: one map lookup now, atomic adds after.
    /// Hot loops should hold one of these (or accumulate locally and
    /// [`Recorder::add`] once).
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cell: self.inner.as_ref().map(|inner| counter_cell(inner, name)),
        }
    }

    /// Set a gauge to an absolute value.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            let cell = {
                let mut gauges = lock(&inner.gauges);
                gauges
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits())))
                    .clone()
            };
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Record one histogram observation.
    pub fn observe(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            histogram_cell(inner, name).record(v);
        }
    }

    /// A reusable histogram handle.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        HistogramHandle {
            cell: self.inner.as_ref().map(|inner| histogram_cell(inner, name)),
        }
    }

    /// Time a scope into histogram `name` (seconds); stops on drop.
    pub fn timer(&self, name: &str) -> Timer {
        Timer {
            target: self
                .inner
                .as_ref()
                .map(|inner| (histogram_cell(inner, name), Instant::now())),
        }
    }
}

fn counter_cell(inner: &Inner, name: &str) -> Arc<AtomicU64> {
    let mut counters = lock(&inner.counters);
    counters
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(AtomicU64::new(0)))
        .clone()
}

fn histogram_cell(inner: &Inner, name: &str) -> Arc<Histogram> {
    let mut histograms = lock(&inner.histograms);
    histograms
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(Histogram::new()))
        .clone()
}

/// Pre-resolved counter (see [`Recorder::counter`]).
#[derive(Clone)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Bump by `delta`.
    pub fn add(&self, delta: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }
}

/// Pre-resolved histogram (see [`Recorder::histogram`]).
#[derive(Clone)]
pub struct HistogramHandle {
    cell: Option<Arc<Histogram>>,
}

impl HistogramHandle {
    /// Record one observation.
    pub fn record(&self, v: f64) {
        if let Some(cell) = &self.cell {
            cell.record(v);
        }
    }

    /// Fold pre-extracted bucket deltas in (see
    /// [`Histogram::merge_cells`]) — used when aggregating a remote
    /// worker's histogram into a local registry.
    pub fn merge_cells(&self, buckets: &[(u32, u64)], count: u64, sum: f64, max: f64) {
        if let Some(cell) = &self.cell {
            cell.merge_cells(buckets, count, sum, max);
        }
    }
}

/// Guard from [`Recorder::timer`]; records elapsed seconds on drop.
pub struct Timer {
    target: Option<(Arc<Histogram>, Instant)>,
}

impl Timer {
    /// Stop early and record (otherwise drop does it).
    pub fn stop(self) {}
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.target.take() {
            hist.record(start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_relative_error_is_bounded() {
        for &v in &[1e-6, 0.004, 0.7, 1.0, 1.5, 3.25, 1e3, 7.7e8] {
            let est = bucket_value(bucket_index(v));
            let rel = (est - v).abs() / v;
            assert!(rel < 0.07, "value {v}: estimate {est}, rel err {rel}");
        }
    }

    #[test]
    fn bucket_edges_are_safe() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e-300), 0);
        assert_eq!(bucket_index(1e300), BUCKETS - 1);
        assert_eq!(bucket_index(f64::INFINITY), BUCKETS - 1);
    }

    #[test]
    fn histogram_percentiles_match_known_distribution() {
        let h = Histogram::new();
        // 1..=1000 milliseconds, uniformly.
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert!((s.sum - 500.5).abs() < 1e-9);
        assert!((s.p50 - 0.5).abs() / 0.5 < 0.07, "p50 {}", s.p50);
        assert!((s.p95 - 0.95).abs() / 0.95 < 0.07, "p95 {}", s.p95);
        assert!((s.p99 - 0.99).abs() / 0.99 < 0.07, "p99 {}", s.p99);
        assert_eq!(s.max, 1.0);
    }

    #[test]
    fn quantiles_of_single_observation_are_that_observation() {
        let h = Histogram::new();
        h.record(0.25);
        let s = h.summary();
        for q in [s.p50, s.p95, s.p99] {
            assert!((q - 0.25).abs() / 0.25 < 0.07, "quantile {q}");
        }
        assert_eq!(s.max, 0.25);
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let s = Histogram::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn concurrent_recorders_agree_on_totals() {
        let registry = Registry::new();
        let recorder = registry.recorder();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let r = recorder.clone();
                scope.spawn(move || {
                    let c = r.counter("work.items");
                    for i in 0..1000 {
                        c.add(1);
                        r.observe("work.size", (t * 1000 + i + 1) as f64);
                    }
                    r.gauge_set("work.last_thread", t as f64);
                });
            }
        });
        let snap = registry.snapshot();
        assert_eq!(snap.counter("work.items"), Some(8000));
        let h = snap.histogram("work.size").unwrap();
        assert_eq!(h.count, 8000);
        assert_eq!(h.max, 8000.0);
        assert!(snap.gauges.iter().any(|(k, _)| k == "work.last_thread"));
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.enabled());
        r.add("x", 5);
        r.observe("y", 1.0);
        r.gauge_set("z", 2.0);
        r.counter("x").add(1);
        r.histogram("y").record(1.0);
        drop(r.timer("t"));
        // Nothing to assert against — the point is none of this panics
        // and none of it allocates registry state.
    }

    #[test]
    fn snapshot_serialises_to_json() {
        let registry = Registry::new();
        let r = registry.recorder();
        r.add("solver.cells", 12);
        r.observe("solver.wall_s", 0.5);
        let text = registry.snapshot().to_json().to_json();
        let doc = crate::json::Value::parse(&text).unwrap();
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("solver.cells"))
                .and_then(Value::as_f64),
            Some(12.0)
        );
        assert!(doc
            .get("histograms")
            .and_then(|h| h.get("solver.wall_s"))
            .is_some());
    }
}
