//! A minimal JSON value, writer, and parser.
//!
//! The workspace cannot take `serde_json` (offline build), and its needs
//! are small: serialise metric reports and Chrome traces, and re-parse
//! them in golden tests. Object keys keep insertion order so reports are
//! stable and diffable.

use std::fmt;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers are f64, like JavaScript. Non-finite values
    /// serialise as `null` (JSON has no NaN/Infinity).
    Number(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An empty object, ready for [`Value::set`].
    pub fn object() -> Self {
        Value::Object(Vec::new())
    }

    /// Append or replace `key` in an object. Panics on non-objects.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) -> &mut Self {
        let Value::Object(pairs) = self else {
            panic!("Value::set on a non-object");
        };
        let key = key.into();
        let value = value.into();
        match pairs.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value,
            None => pairs.push((key, value)),
        }
        self
    }

    /// Object field lookup (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` for non-arrays).
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs of an object (`None` for non-objects).
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The numeric value (`None` for non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value (`None` for non-booleans).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is JSON `null` (which is also how non-finite numbers
    /// serialise).
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Serialise compactly (single line, no spaces).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialise with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.is_finite() {
                    // `{}` on f64 prints the shortest string that
                    // round-trips, which is valid JSON for finite values.
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Value::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }

    /// Parse a JSON document. Exact enough for golden-testing our own
    /// output and any well-formed input; rejects trailing garbage.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound_document() {
        let mut doc = Value::object();
        doc.set("name", "dp_fill \"phase\"\n");
        doc.set("count", 42u64);
        doc.set("ratio", 0.125);
        doc.set("ok", true);
        doc.set("none", Value::Null);
        doc.set("items", vec![1.0, 2.5, -3.0]);
        let text = doc.to_json();
        assert_eq!(Value::parse(&text).unwrap(), doc);
        let pretty = doc.to_json_pretty();
        assert_eq!(Value::parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn parses_foreign_json() {
        let v = Value::parse(r#" { "a" : [ 1e3 , -2.5E-1, "\u0041\t" ], "b": {} } "#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1000.0));
        assert_eq!(a[1].as_f64(), Some(-0.25));
        assert_eq!(a[2].as_str(), Some("A\t"));
        assert_eq!(v.get("b"), Some(&Value::Object(vec![])));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn non_finite_numbers_serialise_as_null() {
        assert_eq!(Value::Number(f64::NAN).to_json(), "null");
        assert_eq!(Value::Number(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn set_replaces_existing_keys() {
        let mut doc = Value::object();
        doc.set("k", 1.0);
        doc.set("k", 2.0);
        assert_eq!(doc.get("k").and_then(Value::as_f64), Some(2.0));
        assert_eq!(doc.to_json(), r#"{"k":2}"#);
    }
}
