//! Structured observability events and the alert-rule engine.
//!
//! A run produces a bounded ring of [`ObsEvent`]s — SLO burn-rate
//! breaches, residual-threshold crossings, bottleneck changes,
//! backpressure onsets — that a live dashboard (`pipemap top`) or a
//! post-hoc reader consumes as JSONL (`/events.jsonl` on the exposition
//! server). Three producers live here:
//!
//! * [`AlertEngine`] — latency-SLO alerting with *fast* and *slow* burn
//!   windows in the multiwindow burn-rate style: the burn rate is the
//!   fraction of observations over the latency objective divided by the
//!   error budget `1 − target`. A short window at a high threshold
//!   catches sudden regressions in seconds; a long window at a low
//!   threshold catches slow budget bleed. Both rules carry hysteresis
//!   (recovery at half the firing threshold) so a burn rate hovering at
//!   the threshold cannot flap.
//! * [`BottleneckTracker`] — windowed per-stage effective-service
//!   argmax; emits a [`EventKind::BottleneckChange`] event when the
//!   most-loaded stage moves, which is exactly the condition under which
//!   the paper's mapping stops being optimal.
//! * [`ModelPublisher`] — a cloneable slot for the latest online-fitted
//!   cost-model JSON, served at `/model.json`.
//!
//! Timestamps are caller-provided microseconds (wall-relative for the
//! executor, virtual time × 1e6 for the simulators) so the engine is
//! deterministic under test and agnostic to the time base.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Value;

/// Schema identifier stamped into the header line of an event JSONL dump
/// (re-exported from [`crate::schema`], the single home of all tags).
pub const EVENT_SCHEMA: &str = crate::schema::EVENTS;

/// How loud an event is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// State change worth noting (recoveries, onsets clearing).
    Info,
    /// Degradation that needs attention but not paging.
    Warning,
    /// Burning the error budget fast enough to page.
    Critical,
}

impl Severity {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "critical" => Some(Severity::Critical),
            _ => None,
        }
    }
}

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Fast-window latency-SLO burn rate crossed its threshold.
    SloFastBurn,
    /// Slow-window latency-SLO burn rate crossed its threshold.
    SloSlowBurn,
    /// A previously-firing SLO rule dropped below half its threshold.
    SloRecovered,
    /// An online-fitted coefficient moved beyond the residual threshold
    /// from its static model.
    ResidualHigh,
    /// A previously-drifted stage's residual fell back under threshold.
    ResidualRecovered,
    /// The measured bottleneck stage changed.
    BottleneckChange,
    /// A stage started blocking on its downstream queue.
    BackpressureOnset,
    /// A previously backpressured stage stopped blocking.
    BackpressureEnd,
    /// Load was shed (a data set dropped instead of queued).
    Shed,
    /// An online-fitted cost drifted past its stage's exact stability
    /// margin: the solver's chosen mapping is provably no longer optimal
    /// (see `pipemap_core::stability_margins`). Unlike [`ResidualHigh`],
    /// which fires at a fixed residual threshold, this fires exactly at
    /// the drift factor where a different mapping starts to win.
    MarginCrossed,
}

impl EventKind {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::SloFastBurn => "slo_fast_burn",
            EventKind::SloSlowBurn => "slo_slow_burn",
            EventKind::SloRecovered => "slo_recovered",
            EventKind::ResidualHigh => "residual_high",
            EventKind::ResidualRecovered => "residual_recovered",
            EventKind::BottleneckChange => "bottleneck_change",
            EventKind::BackpressureOnset => "backpressure_onset",
            EventKind::BackpressureEnd => "backpressure_end",
            EventKind::Shed => "shed",
            EventKind::MarginCrossed => "margin_crossed",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "slo_fast_burn" => Some(EventKind::SloFastBurn),
            "slo_slow_burn" => Some(EventKind::SloSlowBurn),
            "slo_recovered" => Some(EventKind::SloRecovered),
            "residual_high" => Some(EventKind::ResidualHigh),
            "residual_recovered" => Some(EventKind::ResidualRecovered),
            "bottleneck_change" => Some(EventKind::BottleneckChange),
            "backpressure_onset" => Some(EventKind::BackpressureOnset),
            "backpressure_end" => Some(EventKind::BackpressureEnd),
            "shed" => Some(EventKind::Shed),
            "margin_crossed" => Some(EventKind::MarginCrossed),
            _ => None,
        }
    }
}

/// One structured event.
#[derive(Clone, Debug, PartialEq)]
pub struct ObsEvent {
    /// Timestamp, microseconds in the producer's time base.
    pub t_us: f64,
    /// What happened.
    pub kind: EventKind,
    /// How loud.
    pub severity: Severity,
    /// The stage the event is about, if any.
    pub stage: Option<u32>,
    /// The quantity that triggered the event (burn rate, residual,
    /// effective service seconds — see `kind`).
    pub value: f64,
    /// Human-readable one-liner.
    pub message: String,
}

impl ObsEvent {
    /// JSON form (one JSONL line when serialised).
    pub fn to_value(&self) -> Value {
        let mut o = Value::object();
        o.set("t_us", self.t_us);
        o.set("kind", self.kind.as_str());
        o.set("severity", self.severity.as_str());
        if let Some(s) = self.stage {
            o.set("stage", s as u64);
        }
        o.set("value", self.value);
        o.set("message", self.message.as_str());
        o
    }

    /// Parse the JSON form.
    pub fn from_value(v: &Value) -> Option<Self> {
        Some(Self {
            t_us: v.get("t_us").and_then(Value::as_f64)?,
            kind: EventKind::parse(v.get("kind").and_then(Value::as_str)?)?,
            severity: Severity::parse(v.get("severity").and_then(Value::as_str)?)?,
            stage: v.get("stage").and_then(Value::as_f64).map(|s| s as u32),
            value: v.get("value").and_then(Value::as_f64)?,
            message: v.get("message").and_then(Value::as_str)?.to_string(),
        })
    }
}

/// Configuration for [`EventLog`].
#[derive(Clone, Copy, Debug)]
pub struct EventLogConfig {
    /// Ring capacity in events; the oldest are dropped (and counted)
    /// beyond it.
    pub capacity: usize,
}

impl Default for EventLogConfig {
    fn default() -> Self {
        Self { capacity: 4096 }
    }
}

struct RingState {
    events: VecDeque<(u64, ObsEvent)>,
    /// Sequence number the next emitted event receives (first event is 1,
    /// so `since=0` means "everything").
    next_seq: u64,
}

struct LogInner {
    ring: Mutex<RingState>,
    dropped: AtomicU64,
    capacity: usize,
    /// Creation instant: the shared epoch for wall-clock producers (see
    /// [`EventLog::now_us`]).
    epoch: Instant,
}

/// A bounded, shared ring of [`ObsEvent`]s. Cloning shares the ring, so
/// one handle can sit in the exposition server while producers emit from
/// worker threads.
#[derive(Clone)]
pub struct EventLog {
    inner: Arc<LogInner>,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::new(EventLogConfig::default())
    }
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("len", &self.len())
            .field("capacity", &self.inner.capacity)
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl EventLog {
    /// A new empty log.
    pub fn new(config: EventLogConfig) -> Self {
        Self {
            inner: Arc::new(LogInner {
                ring: Mutex::new(RingState {
                    events: VecDeque::new(),
                    next_seq: 1,
                }),
                dropped: AtomicU64::new(0),
                capacity: config.capacity.max(1),
                epoch: Instant::now(),
            }),
        }
    }

    /// Microseconds since this log was created — the shared time base
    /// for wall-clock producers (every clone shares the epoch).
    /// Simulators ignore this and stamp virtual time instead.
    pub fn now_us(&self) -> f64 {
        self.inner.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Append an event, evicting the oldest if the ring is full.
    ///
    /// Timestamps are clamped to be non-decreasing in arrival order:
    /// producers on different threads (or ones that batch their clock
    /// reads) can race to the ring with slightly skewed `t_us`, and the
    /// lock here already defines the authoritative order.
    pub fn emit(&self, mut event: ObsEvent) -> u64 {
        let mut ring = self.inner.ring.lock().expect("event ring poisoned");
        if let Some((_, back)) = ring.events.back() {
            if event.t_us < back.t_us {
                event.t_us = back.t_us;
            }
        }
        while ring.events.len() >= self.inner.capacity {
            ring.events.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let seq = ring.next_seq;
        ring.next_seq += 1;
        ring.events.push_back((seq, event));
        seq
    }

    /// Copy of the current contents, oldest first.
    pub fn snapshot(&self) -> Vec<ObsEvent> {
        self.inner
            .ring
            .lock()
            .expect("event ring poisoned")
            .events
            .iter()
            .map(|(_, e)| e.clone())
            .collect()
    }

    /// Events strictly after cursor `since` (their sequence numbers
    /// included), plus the cursor a caller should pass next time. The
    /// first event ever emitted has sequence 1, so `since = 0` returns
    /// everything still in the ring. The returned cursor is always the
    /// newest sequence assigned so far (so a stale or garbage cursor
    /// self-corrects on the next poll). Evicted events are gone — a tail
    /// reader that falls more than one ring behind silently skips them
    /// (the `dropped` counter still tells the tale).
    pub fn snapshot_since(&self, since: u64) -> (Vec<(u64, ObsEvent)>, u64) {
        let ring = self.inner.ring.lock().expect("event ring poisoned");
        let events: Vec<(u64, ObsEvent)> = ring
            .events
            .iter()
            .filter(|(seq, _)| *seq > since)
            .cloned()
            .collect();
        (events, ring.next_seq - 1)
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.inner
            .ring
            .lock()
            .expect("event ring poisoned")
            .events
            .len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// The whole log as JSONL (header line + one line per event).
    pub fn to_jsonl(&self) -> String {
        self.to_jsonl_since(0)
    }

    /// Events after cursor `since` as JSONL. The header carries
    /// `next_since` — the cursor to pass on the next poll for a
    /// tail-only fetch — and each event line carries its `seq`.
    pub fn to_jsonl_since(&self, since: u64) -> String {
        let (events, next_since) = self.snapshot_since(since);
        let mut header = Value::object();
        header.set("event_schema", EVENT_SCHEMA);
        header.set("dropped", self.dropped());
        header.set("next_since", next_since);
        let mut out = header.to_json();
        out.push('\n');
        for (seq, e) in &events {
            let mut v = e.to_value();
            v.set("seq", *seq);
            out.push_str(&v.to_json());
            out.push('\n');
        }
        out
    }
}

/// Serialise events as JSONL: a header line carrying the schema and drop
/// count, then one event per line.
pub fn events_jsonl(events: &[ObsEvent], dropped: u64) -> String {
    let mut header = Value::object();
    header.set("event_schema", EVENT_SCHEMA);
    header.set("dropped", dropped);
    let mut out = header.to_json();
    out.push('\n');
    for e in events {
        out.push_str(&e.to_value().to_json());
        out.push('\n');
    }
    out
}

/// Parse an event JSONL dump (header line optional).
pub fn parse_events_jsonl(text: &str) -> Result<Vec<ObsEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = Value::parse(line).map_err(|e| format!("line {}: invalid JSON: {e:?}", i + 1))?;
        if v.get("event_schema").is_some() {
            continue;
        }
        events
            .push(ObsEvent::from_value(&v).ok_or_else(|| format!("line {}: not an event", i + 1))?);
    }
    Ok(events)
}

/// Parse an event JSONL dump *and* the paging cursor: returns the events
/// plus the `next_since` value to pass to the next
/// `/events.jsonl?since=` poll. Falls back to the largest per-line `seq`
/// (then to the given `since`) when the header predates the cursor, so
/// polling an old producer degrades to full fetches instead of erroring.
pub fn parse_events_jsonl_since(text: &str, since: u64) -> Result<(Vec<ObsEvent>, u64), String> {
    let mut events = Vec::new();
    let mut next = since;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = Value::parse(line).map_err(|e| format!("line {}: invalid JSON: {e:?}", i + 1))?;
        if v.get("event_schema").is_some() {
            if let Some(n) = v.get("next_since").and_then(Value::as_f64) {
                next = next.max(n as u64);
            }
            continue;
        }
        if let Some(s) = v.get("seq").and_then(Value::as_f64) {
            next = next.max(s as u64);
        }
        events
            .push(ObsEvent::from_value(&v).ok_or_else(|| format!("line {}: not an event", i + 1))?);
    }
    Ok((events, next))
}

/// A latency SLO with multiwindow burn-rate alerting thresholds.
#[derive(Clone, Copy, Debug)]
pub struct SloConfig {
    /// Latency objective in seconds: an observation over this burns
    /// budget.
    pub objective_s: f64,
    /// Target fraction of observations under the objective (e.g. 0.99);
    /// the error budget is `1 − target`.
    pub target: f64,
    /// Fast window length in seconds.
    pub fast_window_s: f64,
    /// Slow window length in seconds.
    pub slow_window_s: f64,
    /// Burn-rate threshold for the fast window (critical).
    pub fast_burn: f64,
    /// Burn-rate threshold for the slow window (warning).
    pub slow_burn: f64,
    /// Minimum observations in a window before its rule can fire.
    pub min_samples: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            objective_s: 0.1,
            target: 0.99,
            fast_window_s: 5.0,
            slow_window_s: 60.0,
            fast_burn: 10.0,
            slow_burn: 2.0,
            min_samples: 20,
        }
    }
}

impl SloConfig {
    /// Set the latency objective and target fraction.
    pub fn with_objective(mut self, objective_s: f64, target: f64) -> Self {
        self.objective_s = objective_s;
        self.target = target.clamp(0.0, 1.0 - 1e-9);
        self
    }

    /// Set the fast/slow window lengths in seconds.
    pub fn with_windows(mut self, fast_s: f64, slow_s: f64) -> Self {
        self.fast_window_s = fast_s;
        self.slow_window_s = slow_s.max(fast_s);
        self
    }
}

/// Time buckets per burn-rate window. The window expires in bucket
/// granularity, so the effective window length wanders within
/// `window ± window/BURN_BUCKETS` — irrelevant for alerting, and it
/// buys O(1) memory and O(1) amortised work per observation where a
/// per-sample deque would hold `window × rate` entries (a 60 s slow
/// window on a 400k datasets/s pipeline is 24M samples).
const BURN_BUCKETS: usize = 64;

/// One burn-rate rule's sliding window and firing state.
struct BurnRule {
    bucket_us: f64,
    threshold: f64,
    kind: EventKind,
    severity: Severity,
    counts: [u64; BURN_BUCKETS],
    overs: [u64; BURN_BUCKETS],
    total: u64,
    over: u64,
    cur: Option<u64>,
    active: bool,
}

impl BurnRule {
    fn new(window_s: f64, threshold: f64, kind: EventKind, severity: Severity) -> Self {
        Self {
            bucket_us: (window_s * 1e6 / BURN_BUCKETS as f64).max(1.0),
            threshold,
            kind,
            severity,
            counts: [0; BURN_BUCKETS],
            overs: [0; BURN_BUCKETS],
            total: 0,
            over: 0,
            cur: None,
            active: false,
        }
    }

    /// Rotate the ring forward to the bucket containing `t_us`, expiring
    /// everything that falls out of the window.
    fn advance(&mut self, idx: u64) {
        let cur = match self.cur {
            None => {
                self.cur = Some(idx);
                return;
            }
            Some(c) => c,
        };
        if idx <= cur {
            return;
        }
        if idx - cur >= BURN_BUCKETS as u64 {
            self.counts = [0; BURN_BUCKETS];
            self.overs = [0; BURN_BUCKETS];
            self.total = 0;
            self.over = 0;
        } else {
            for i in (cur + 1)..=idx {
                let slot = (i % BURN_BUCKETS as u64) as usize;
                self.total -= self.counts[slot];
                self.over -= self.overs[slot];
                self.counts[slot] = 0;
                self.overs[slot] = 0;
            }
        }
        self.cur = Some(idx);
    }

    fn observe(
        &mut self,
        t_us: f64,
        is_over: bool,
        budget: f64,
        min_samples: usize,
        log: &EventLog,
    ) {
        let idx = (t_us.max(0.0) / self.bucket_us) as u64;
        self.advance(idx);
        let slot = (idx % BURN_BUCKETS as u64) as usize;
        self.counts[slot] += 1;
        self.total += 1;
        if is_over {
            self.overs[slot] += 1;
            self.over += 1;
        }
        if (self.total as usize) < min_samples {
            return;
        }
        let burn = (self.over as f64 / self.total as f64) / budget;
        if !self.active && burn >= self.threshold {
            self.active = true;
            log.emit(ObsEvent {
                t_us,
                kind: self.kind,
                severity: self.severity,
                stage: None,
                value: burn,
                message: format!(
                    "{}: burn rate {burn:.1}x over threshold {:.1}x",
                    self.kind.as_str(),
                    self.threshold
                ),
            });
        } else if self.active && burn < self.threshold * 0.5 {
            // Hysteresis: recover at half the firing threshold so a burn
            // rate hovering at the threshold cannot flap.
            self.active = false;
            log.emit(ObsEvent {
                t_us,
                kind: EventKind::SloRecovered,
                severity: Severity::Info,
                stage: None,
                value: burn,
                message: format!("{} recovered: burn rate {burn:.1}x", self.kind.as_str()),
            });
        }
    }
}

/// Latency-SLO burn-rate alerting over a stream of end-to-end latency
/// observations. Feed it every (sampled) completion; it emits into its
/// [`EventLog`].
pub struct AlertEngine {
    cfg: SloConfig,
    log: EventLog,
    fast: BurnRule,
    slow: BurnRule,
}

impl AlertEngine {
    /// A new engine emitting into `log`.
    pub fn new(cfg: SloConfig, log: EventLog) -> Self {
        Self {
            fast: BurnRule::new(
                cfg.fast_window_s,
                cfg.fast_burn,
                EventKind::SloFastBurn,
                Severity::Critical,
            ),
            slow: BurnRule::new(
                cfg.slow_window_s,
                cfg.slow_burn,
                EventKind::SloSlowBurn,
                Severity::Warning,
            ),
            cfg,
            log,
        }
    }

    /// The configured SLO.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Record one end-to-end latency observation at `t_us`.
    pub fn observe_latency(&mut self, t_us: f64, latency_s: f64) {
        let is_over = latency_s > self.cfg.objective_s;
        let budget = (1.0 - self.cfg.target).max(1e-9);
        self.fast
            .observe(t_us, is_over, budget, self.cfg.min_samples, &self.log);
        self.slow
            .observe(t_us, is_over, budget, self.cfg.min_samples, &self.log);
    }
}

/// Windowed bottleneck detection: accumulate per-stage effective service
/// times (service / replicas) over `window` data sets, take the leftmost
/// argmax, and emit a [`EventKind::BottleneckChange`] event whenever it
/// moves between windows.
pub struct BottleneckTracker {
    replicas: Vec<f64>,
    window: usize,
    sums: Vec<f64>,
    n: usize,
    current: Option<usize>,
    log: EventLog,
}

impl BottleneckTracker {
    /// A new tracker for stages with the given replication degrees,
    /// re-evaluating every `window` data sets.
    pub fn new(replicas: &[usize], window: usize, log: EventLog) -> Self {
        Self {
            replicas: replicas.iter().map(|&r| r.max(1) as f64).collect(),
            window: window.max(1),
            sums: vec![0.0; replicas.len()],
            n: 0,
            current: None,
            log,
        }
    }

    /// The bottleneck of the last completed window.
    pub fn current(&self) -> Option<usize> {
        self.current
    }

    /// Record one data set's per-stage service seconds at `t_us`.
    pub fn observe(&mut self, t_us: f64, services: &[f64]) {
        for (s, d) in self.sums.iter_mut().zip(services) {
            *s += d;
        }
        self.n += 1;
        if self.n < self.window {
            return;
        }
        let mut idx = 0;
        let mut best = f64::NEG_INFINITY;
        for (i, s) in self.sums.iter().enumerate() {
            let eff = s / self.replicas[i];
            if eff > best {
                best = eff;
                idx = i;
            }
        }
        if let Some(prev) = self.current {
            if prev != idx {
                self.log.emit(ObsEvent {
                    t_us,
                    kind: EventKind::BottleneckChange,
                    severity: Severity::Warning,
                    stage: Some(idx as u32),
                    value: best / self.n as f64,
                    message: format!("bottleneck moved: stage {prev} -> stage {idx}"),
                });
            }
        }
        self.current = Some(idx);
        self.sums.fill(0.0);
        self.n = 0;
    }
}

/// A cloneable slot holding the latest online-fitted cost-model JSON;
/// the exposition server serves it at `/model.json`.
#[derive(Clone, Default)]
pub struct ModelPublisher {
    inner: Arc<Mutex<String>>,
}

impl ModelPublisher {
    /// A new empty publisher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the published document.
    pub fn publish(&self, json: String) {
        *self.inner.lock().expect("model slot poisoned") = json;
    }

    /// The current document; `{}` until the first publish so the route
    /// always serves well-formed JSON.
    pub fn current(&self) -> String {
        let s = self.inner.lock().expect("model slot poisoned").clone();
        if s.is_empty() {
            "{}".to_string()
        } else {
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(t_us: f64, kind: EventKind) -> ObsEvent {
        ObsEvent {
            t_us,
            kind,
            severity: Severity::Info,
            stage: Some(2),
            value: 1.5,
            message: "m".to_string(),
        }
    }

    #[test]
    fn event_round_trips_through_json() {
        let e = event(12.5, EventKind::BottleneckChange);
        let v = e.to_value();
        assert_eq!(ObsEvent::from_value(&v), Some(e.clone()));
        let text = events_jsonl(std::slice::from_ref(&e), 3);
        assert!(text.starts_with('{'));
        let parsed = parse_events_jsonl(&text).unwrap();
        assert_eq!(parsed, vec![e]);
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let log = EventLog::new(EventLogConfig { capacity: 4 });
        for i in 0..10 {
            log.emit(event(i as f64, EventKind::Shed));
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.dropped(), 6);
        let snap = log.snapshot();
        assert_eq!(snap[0].t_us, 6.0);
        assert_eq!(snap[3].t_us, 9.0);
    }

    #[test]
    fn since_cursor_pages_the_tail() {
        let log = EventLog::new(EventLogConfig { capacity: 4 });
        assert_eq!(log.emit(event(0.0, EventKind::Shed)), 1);
        assert_eq!(log.emit(event(1.0, EventKind::Shed)), 2);

        let (page, next) = log.snapshot_since(0);
        assert_eq!(page.len(), 2);
        assert_eq!(next, 2);

        // Nothing new: empty page, cursor stable.
        let (page, next) = log.snapshot_since(next);
        assert!(page.is_empty());
        assert_eq!(next, 2);

        log.emit(event(2.0, EventKind::MarginCrossed));
        let (page, next) = log.snapshot_since(next);
        assert_eq!(page.len(), 1);
        assert_eq!(page[0].0, 3);
        assert_eq!(page[0].1.kind, EventKind::MarginCrossed);
        assert_eq!(next, 3);

        // Eviction keeps sequence numbers monotone: after overflowing the
        // 4-slot ring, an old cursor sees only what survived.
        for i in 0..6 {
            log.emit(event(10.0 + i as f64, EventKind::Shed));
        }
        let (page, next) = log.snapshot_since(3);
        assert_eq!(next, 9);
        assert_eq!(
            page.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "ring holds the newest 4 of 9"
        );

        // JSONL form: header carries the cursor, lines carry seq.
        let text = log.to_jsonl_since(8);
        let mut lines = text.lines();
        let header = Value::parse(lines.next().unwrap()).unwrap();
        assert_eq!(header.get("next_since").and_then(Value::as_f64), Some(9.0));
        let line = Value::parse(lines.next().unwrap()).unwrap();
        assert_eq!(line.get("seq").and_then(Value::as_f64), Some(9.0));
        assert!(lines.next().is_none());
        // Events with seq fields still parse with the plain reader.
        assert_eq!(parse_events_jsonl(&text).unwrap().len(), 1);
    }

    #[test]
    fn kinds_and_severities_round_trip() {
        for k in [
            EventKind::SloFastBurn,
            EventKind::SloSlowBurn,
            EventKind::SloRecovered,
            EventKind::ResidualHigh,
            EventKind::ResidualRecovered,
            EventKind::BottleneckChange,
            EventKind::BackpressureOnset,
            EventKind::BackpressureEnd,
            EventKind::Shed,
            EventKind::MarginCrossed,
        ] {
            assert_eq!(EventKind::parse(k.as_str()), Some(k));
        }
        for s in [Severity::Info, Severity::Warning, Severity::Critical] {
            assert_eq!(Severity::parse(s.as_str()), Some(s));
        }
    }

    #[test]
    fn fast_burn_fires_and_recovers_with_hysteresis() {
        let log = EventLog::default();
        let cfg = SloConfig {
            objective_s: 0.1,
            target: 0.9,
            fast_window_s: 1.0,
            slow_window_s: 10.0,
            fast_burn: 5.0,
            slow_burn: 2.0,
            min_samples: 10,
        };
        let mut engine = AlertEngine::new(cfg, log.clone());
        // 30 observations all over the objective: burn = 1.0 / 0.1 = 10x.
        for i in 0..30 {
            engine.observe_latency(i as f64 * 1e4, 0.5);
        }
        let kinds: Vec<EventKind> = log.snapshot().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::SloFastBurn), "{kinds:?}");
        assert!(kinds.contains(&EventKind::SloSlowBurn), "{kinds:?}");
        // Exactly one firing each — no flapping while it stays hot.
        assert_eq!(
            kinds
                .iter()
                .filter(|k| **k == EventKind::SloFastBurn)
                .count(),
            1
        );
        // Healthy traffic long enough to flush the windows: recovery.
        for i in 30..300 {
            engine.observe_latency(i as f64 * 1e4, 0.01);
        }
        let kinds: Vec<EventKind> = log.snapshot().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::SloRecovered), "{kinds:?}");
    }

    #[test]
    fn burn_needs_min_samples() {
        let log = EventLog::default();
        let mut engine = AlertEngine::new(SloConfig::default(), log.clone());
        for i in 0..10 {
            engine.observe_latency(i as f64, 10.0);
        }
        assert!(log.is_empty(), "{:?}", log.snapshot());
    }

    #[test]
    fn bottleneck_change_emits_once_per_move() {
        let log = EventLog::default();
        let mut tracker = BottleneckTracker::new(&[1, 1, 1], 4, log.clone());
        // Stage 0 dominates for two windows, then stage 2 takes over.
        for i in 0..8 {
            tracker.observe(i as f64, &[3.0, 1.0, 1.0]);
        }
        assert_eq!(tracker.current(), Some(0));
        assert!(log.is_empty());
        for i in 8..16 {
            tracker.observe(i as f64, &[1.0, 1.0, 3.0]);
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 1, "{snap:?}");
        assert_eq!(snap[0].kind, EventKind::BottleneckChange);
        assert_eq!(snap[0].stage, Some(2));
        assert!(snap[0].message.contains("stage 0 -> stage 2"));
    }

    #[test]
    fn bottleneck_respects_replicas() {
        let log = EventLog::default();
        // Stage 0 is slower per data set but 4-way replicated; stage 1
        // wins on effective service.
        let mut tracker = BottleneckTracker::new(&[4, 1], 2, log.clone());
        for i in 0..2 {
            tracker.observe(i as f64, &[2.0, 1.0]);
        }
        assert_eq!(tracker.current(), Some(1));
    }

    #[test]
    fn model_publisher_defaults_to_empty_object() {
        let p = ModelPublisher::new();
        assert_eq!(p.current(), "{}");
        p.publish("{\"a\":1}".to_string());
        assert_eq!(p.clone().current(), "{\"a\":1}");
    }
}
