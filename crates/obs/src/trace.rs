//! Structured tracing: span guards, trace events, a JSONL sink, and a
//! Chrome `trace_event` exporter.
//!
//! Events are "complete" slices — a name, a lane (Chrome `tid`), a start
//! timestamp, and a duration, all in microseconds — plus optional
//! structured args. They can be dumped as JSONL (one object per line,
//! greppable) or as a Chrome trace JSON document that loads directly in
//! Perfetto / `chrome://tracing`.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use crate::json::Value;
use crate::metrics::{Inner, Recorder};

/// One completed slice of work.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Slice name (e.g. `"dp_fill"`, `"stage1.service"`).
    pub name: String,
    /// Category, used for filtering in trace viewers.
    pub cat: String,
    /// Lane id — rendered as a Chrome thread. See
    /// [`crate::Registry::register_lane`].
    pub lane: u64,
    /// Start, microseconds from the registry epoch.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Structured payload shown in the viewer's args pane.
    pub args: Vec<(String, Value)>,
}

impl TraceEvent {
    /// The JSONL form of this event (one flat object).
    pub fn to_json(&self) -> Value {
        let mut o = Value::object();
        o.set("name", self.name.clone());
        o.set("cat", self.cat.clone());
        o.set("lane", self.lane);
        o.set("ts_us", self.ts_us);
        o.set("dur_us", self.dur_us);
        if !self.args.is_empty() {
            let mut args = Value::object();
            for (k, v) in &self.args {
                args.set(k.clone(), v.clone());
            }
            o.set("args", args);
        }
        o
    }
}

/// Serialise events as JSON Lines: one event object per line.
pub fn events_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json().to_json());
        out.push('\n');
    }
    out
}

/// Build a Chrome `trace_event` document (the JSON Object Format):
/// one `"M"` thread-name metadata record per lane, then one `"X"`
/// complete event per slice. The result loads in Perfetto or
/// `chrome://tracing` as-is.
pub fn chrome_trace(events: &[TraceEvent], lane_names: &[String]) -> Value {
    chrome_trace_with_counters(events, lane_names, Vec::new())
}

/// [`chrome_trace`] plus extra pre-built `trace_event` records —
/// typically the `"C"` counter tracks of a flight recorder
/// ([`crate::recorder::FlightRecorder::counter_track_events`]) — appended
/// after the slices. Slices are emitted sorted by start timestamp, so
/// `ts` is monotonically non-decreasing within every lane.
pub fn chrome_trace_with_counters(
    events: &[TraceEvent],
    lane_names: &[String],
    counters: Vec<Value>,
) -> Value {
    // Capture order is completion order (span guards push on drop), so
    // re-sort by start time for viewers and round-trip guarantees.
    let mut ordered: Vec<&TraceEvent> = events.iter().collect();
    ordered.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
    let events = ordered;
    let mut trace_events = Vec::with_capacity(events.len() + lane_names.len() + counters.len());
    for (lane, name) in lane_names.iter().enumerate() {
        let mut meta = Value::object();
        meta.set("ph", "M");
        meta.set("name", "thread_name");
        meta.set("pid", 1u64);
        meta.set("tid", lane as u64);
        let mut args = Value::object();
        args.set("name", name.clone());
        meta.set("args", args);
        trace_events.push(meta);
    }
    for e in events {
        let mut x = Value::object();
        x.set("ph", "X");
        x.set("name", e.name.clone());
        x.set("cat", e.cat.clone());
        x.set("pid", 1u64);
        x.set("tid", e.lane);
        x.set("ts", e.ts_us);
        x.set("dur", e.dur_us);
        if !e.args.is_empty() {
            let mut args = Value::object();
            for (k, v) in &e.args {
                args.set(k.clone(), v.clone());
            }
            x.set("args", args);
        }
        trace_events.push(x);
    }
    trace_events.extend(counters);
    let mut doc = Value::object();
    doc.set("traceEvents", Value::Array(trace_events));
    doc.set("displayTimeUnit", "ms");
    doc
}

impl crate::Registry {
    /// Export the captured events (and lane names) as a Chrome trace
    /// document without draining them.
    pub fn chrome_trace(&self) -> Value {
        chrome_trace(&self.events(), &self.lane_names())
    }
}

impl Recorder {
    /// Whether span capture is on (a registry is attached *and* its
    /// tracing flag is set). Use to skip arg-building work.
    pub fn tracing(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.tracing.load(Ordering::Relaxed))
    }

    /// Open a timed span on lane 0 ("main"); closes on drop.
    pub fn span(&self, name: &str, cat: &str) -> SpanGuard {
        self.span_on(0, name, cat)
    }

    /// Open a timed span on a specific lane; closes on drop.
    pub fn span_on(&self, lane: u64, name: &str, cat: &str) -> SpanGuard {
        let active = self.inner.as_ref().and_then(|inner| {
            if inner.tracing.load(Ordering::Relaxed) {
                Some(ActiveSpan {
                    inner: inner.clone(),
                    name: name.to_string(),
                    cat: cat.to_string(),
                    lane,
                    args: Vec::new(),
                    start: Instant::now(),
                })
            } else {
                None
            }
        });
        SpanGuard { active }
    }

    /// Record a pre-timed slice (for work measured out-of-band).
    pub fn event(&self, e: TraceEvent) {
        if let Some(inner) = &self.inner {
            if inner.tracing.load(Ordering::Relaxed) {
                inner
                    .events
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(e);
            }
        }
    }

    /// Microseconds since the registry epoch (0.0 when disabled).
    /// Pair with [`Recorder::event`] to stamp out-of-band slices.
    pub fn now_us(&self) -> f64 {
        self.inner
            .as_ref()
            .map(|i| i.epoch.elapsed().as_secs_f64() * 1e6)
            .unwrap_or(0.0)
    }
}

struct ActiveSpan {
    inner: Arc<Inner>,
    name: String,
    cat: String,
    lane: u64,
    args: Vec<(String, Value)>,
    start: Instant,
}

/// Guard from [`Recorder::span`]; emits a [`TraceEvent`] when dropped.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Attach a structured arg shown in the trace viewer.
    pub fn arg(&mut self, key: &str, value: impl Into<Value>) -> &mut Self {
        if let Some(a) = &mut self.active {
            a.args.push((key.to_string(), value.into()));
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            let end = Instant::now();
            let ts_us = a.start.duration_since(a.inner.epoch).as_secs_f64() * 1e6;
            let dur_us = end.duration_since(a.start).as_secs_f64() * 1e6;
            a.inner
                .events
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(TraceEvent {
                    name: a.name,
                    cat: a.cat,
                    lane: a.lane,
                    ts_us,
                    dur_us,
                    args: a.args,
                });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn spans_capture_when_tracing_is_on() {
        let registry = Registry::new();
        registry.set_tracing(true);
        let r = registry.recorder();
        {
            let mut s = r.span("phase_a", "solver");
            s.arg("cells", 42u64);
        }
        drop(r.span("phase_b", "solver"));
        let events = registry.take_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "phase_a");
        assert_eq!(
            events[0].args,
            vec![("cells".to_string(), Value::Number(42.0))]
        );
        assert!(events[0].dur_us >= 0.0);
        assert!(events[1].ts_us >= events[0].ts_us);
    }

    #[test]
    fn spans_are_noops_when_tracing_is_off() {
        let registry = Registry::new();
        let r = registry.recorder();
        drop(r.span("ignored", "x"));
        assert!(registry.events().is_empty());
        assert!(!r.tracing());
        // Fully disabled recorder too.
        drop(Recorder::disabled().span("ignored", "x"));
    }

    #[test]
    fn jsonl_has_one_parseable_object_per_line() {
        let events = vec![
            TraceEvent {
                name: "a".into(),
                cat: "c".into(),
                lane: 0,
                ts_us: 1.0,
                dur_us: 2.0,
                args: vec![("k".to_string(), Value::from("v"))],
            },
            TraceEvent {
                name: "b".into(),
                cat: "c".into(),
                lane: 1,
                ts_us: 3.0,
                dur_us: 4.0,
                args: vec![],
            },
        ];
        let jsonl = events_to_jsonl(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            Value::parse(line).unwrap();
        }
    }

    #[test]
    fn chrome_trace_document_is_valid_and_complete() {
        let registry = Registry::new();
        registry.set_tracing(true);
        let lane = registry.register_lane("stage0.inst0");
        let r = registry.recorder();
        drop(r.span_on(lane, "service", "exec"));
        let doc = registry.chrome_trace();
        let parsed = Value::parse(&doc.to_json_pretty()).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        // 2 lanes ("main" + registered) of metadata + 1 slice.
        assert_eq!(events.len(), 3);
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2);
        let slice = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .unwrap();
        assert_eq!(slice.get("name").and_then(Value::as_str), Some("service"));
        assert_eq!(slice.get("tid").and_then(Value::as_f64), Some(lane as f64));
        assert!(slice.get("dur").and_then(Value::as_f64).unwrap() >= 0.0);
    }

    #[test]
    fn manual_events_respect_tracing_flag() {
        let registry = Registry::new();
        let r = registry.recorder();
        let ev = TraceEvent {
            name: "manual".into(),
            cat: "sim".into(),
            lane: 0,
            ts_us: 0.0,
            dur_us: 5.0,
            args: vec![],
        };
        r.event(ev.clone());
        assert!(registry.events().is_empty());
        registry.set_tracing(true);
        r.event(ev);
        assert_eq!(registry.events().len(), 1);
    }
}
