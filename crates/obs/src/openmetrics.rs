//! OpenMetrics / Prometheus text exposition of a [`Registry`].
//!
//! [`render_openmetrics`] turns the live registry into the text format
//! Prometheus scrapes: one `counter` family per counter (`_total`
//! sample), one `gauge` family per gauge, and for every histogram both a
//! `histogram` family (cumulative `_bucket{le=...}` series over the
//! non-empty log buckets, plus `_sum`/`_count`) and a companion
//! `summary` family `<name>_q` carrying the p50/p95/p99 estimates. The
//! document ends with the `# EOF` terminator OpenMetrics requires.
//!
//! Metric names are sanitised to `[a-zA-Z0-9_:]` (the registry's dotted
//! names become underscored) and prefixed with `pipemap_`.

use crate::metrics::Registry;

/// Sanitise a registry metric name into an exposition metric name.
fn metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 8);
    out.push_str("pipemap_");
    // The "pipemap_" prefix guarantees a valid first character, so
    // digits are acceptable anywhere in the remainder.
    for c in raw.chars() {
        match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => out.push(c),
            _ => out.push('_'),
        }
    }
    out
}

/// Escape a label *value* for the exposition format: inside the double
/// quotes, backslash, double quote, and newline must be escaped as
/// `\\`, `\"`, and `\n` respectively (anything else passes through).
pub fn escape_label_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Render one labelled sample line: `name{k1="v1",k2="v2"} value`, with
/// every label value escaped via [`escape_label_value`].
fn labelled_sample(name: &str, labels: &[(&str, &str)], value: &str) -> String {
    let mut out = String::from(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
    out
}

/// Format a float the way Prometheus expects (`+Inf`/`-Inf`/`NaN` words).
fn number(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Split `exec.link.<link>.<metric>` into `(link, metric)`; `None` for
/// any other name. The metric is the last dot-separated segment.
fn split_link_counter(name: &str) -> Option<(&str, &str)> {
    let rest = name.strip_prefix(crate::names::EXEC_LINK_PREFIX)?;
    let (link, metric) = rest.rsplit_once('.')?;
    if link.is_empty() || !matches!(metric, "bytes" | "frames" | "items") {
        return None;
    }
    Some((link, metric))
}

/// Split `exec.worker.s<stage>i<inst>.p<pid>.<metric>` into
/// `(stage, instance, pid, metric)`; `None` for any other name. The
/// metric may itself contain dots (a worker registry ships its full
/// dotted names).
fn split_worker_metric(name: &str) -> Option<(&str, &str, &str, &str)> {
    let rest = name.strip_prefix(crate::names::EXEC_WORKER_PREFIX)?;
    let (ident, rest) = rest.split_once('.')?;
    let (stage, instance) = ident.strip_prefix('s')?.split_once('i')?;
    let (pid, metric) = rest.split_once('.')?;
    let pid = pid.strip_prefix('p')?;
    let numeric = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
    if !numeric(stage) || !numeric(instance) || !numeric(pid) || metric.is_empty() {
        return None;
    }
    Some((stage, instance, pid, metric))
}

/// Render the registry's current metrics as OpenMetrics text.
pub fn render_openmetrics(registry: &Registry) -> String {
    let snap = registry.snapshot();
    let mut out = String::new();

    let mut link_families_typed: Vec<String> = Vec::new();
    let mut worker_counters_typed: Vec<String> = Vec::new();
    for (name, v) in &snap.counters {
        // Per-boundary transport counters (`exec.link.<link>.<metric>`)
        // fold the link into a label instead of mangling it into the
        // metric name: one `pipemap_exec_link_<metric>` family, one
        // series per boundary. Link labels never contain a dot (stage
        // names are dot-free), so the final segment is the metric.
        if let Some((link, metric)) = split_link_counter(name) {
            let m = format!("pipemap_exec_link_{metric}");
            if !link_families_typed.contains(&m) {
                out.push_str(&format!("# TYPE {m} counter\n"));
                link_families_typed.push(m.clone());
            }
            out.push_str(&labelled_sample(
                &format!("{m}_total"),
                &[("link", link)],
                &v.to_string(),
            ));
            continue;
        }
        // Per-worker telemetry series fold the worker's identity into
        // stage/instance/pid labels: one `pipemap_exec_worker_<metric>`
        // family, one series per worker process.
        if let Some((stage, instance, pid, metric)) = split_worker_metric(name) {
            let m = metric_name(&format!("exec.worker.{metric}"));
            if !worker_counters_typed.contains(&m) {
                out.push_str(&format!("# TYPE {m} counter\n"));
                worker_counters_typed.push(m.clone());
            }
            out.push_str(&labelled_sample(
                &format!("{m}_total"),
                &[("stage", stage), ("instance", instance), ("pid", pid)],
                &v.to_string(),
            ));
            continue;
        }
        let m = metric_name(name);
        out.push_str(&format!("# TYPE {m} counter\n"));
        out.push_str(&format!("{m}_total {v}\n"));
    }
    let mut worker_gauges_typed: Vec<String> = Vec::new();
    for (name, v) in &snap.gauges {
        if let Some((stage, instance, pid, metric)) = split_worker_metric(name) {
            let m = metric_name(&format!("exec.worker.{metric}"));
            if !worker_gauges_typed.contains(&m) {
                out.push_str(&format!("# TYPE {m} gauge\n"));
                worker_gauges_typed.push(m.clone());
            }
            out.push_str(&labelled_sample(
                &m,
                &[("stage", stage), ("instance", instance), ("pid", pid)],
                &number(*v),
            ));
            continue;
        }
        let m = metric_name(name);
        out.push_str(&format!("# TYPE {m} gauge\n"));
        out.push_str(&format!("{m} {}\n", number(*v)));
    }
    for (name, hist) in registry.histogram_cells() {
        let m = metric_name(&name);
        let summary = hist.summary();
        out.push_str(&format!("# TYPE {m} histogram\n"));
        for (le, cum) in hist.cumulative_buckets() {
            out.push_str(&labelled_sample(
                &format!("{m}_bucket"),
                &[("le", &number(le))],
                &cum.to_string(),
            ));
        }
        out.push_str(&labelled_sample(
            &format!("{m}_bucket"),
            &[("le", "+Inf")],
            &summary.count.to_string(),
        ));
        out.push_str(&format!("{m}_sum {}\n", number(summary.sum)));
        out.push_str(&format!("{m}_count {}\n", summary.count));
        // Companion summary family with the quantile estimates.
        out.push_str(&format!("# TYPE {m}_q summary\n"));
        for (q, v) in [
            ("0.5", summary.p50),
            ("0.95", summary.p95),
            ("0.99", summary.p99),
        ] {
            out.push_str(&labelled_sample(
                &format!("{m}_q"),
                &[("quantile", q)],
                &number(v),
            ));
        }
        out.push_str(&format!("{m}_q_sum {}\n", number(summary.sum)));
        out.push_str(&format!("{m}_q_count {}\n", summary.count));
    }

    let up = metric_name("uptime_seconds");
    out.push_str(&format!("# TYPE {up} gauge\n"));
    out.push_str(&format!("{up} {}\n", number(registry.uptime_s())));
    out.push_str("# EOF\n");
    out
}

impl Registry {
    /// The registry's metrics in OpenMetrics text form (see
    /// [`render_openmetrics`]).
    pub fn to_openmetrics(&self) -> String {
        render_openmetrics(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitised_and_prefixed() {
        assert_eq!(
            metric_name("solver.dp_mapping.cells"),
            "pipemap_solver_dp_mapping_cells"
        );
        assert_eq!(metric_name("9lives"), "pipemap_9lives");
    }

    #[test]
    fn label_values_escape_quotes_backslashes_and_newlines() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("C:\\tmp\\x"), "C:\\\\tmp\\\\x");
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
        // All three at once, in order.
        assert_eq!(escape_label_value("\"\\\n"), "\\\"\\\\\\n");
    }

    #[test]
    fn labelled_samples_escape_their_values_and_stay_single_line() {
        let line = labelled_sample(
            "pipemap_m",
            &[("stage", "fft \"rows\""), ("path", "a\\b\nc")],
            "1",
        );
        assert_eq!(
            line,
            "pipemap_m{stage=\"fft \\\"rows\\\"\",path=\"a\\\\b\\nc\"} 1\n"
        );
        // A hostile label value cannot break the sample across lines.
        assert_eq!(line.matches('\n').count(), 1);
        // No labels at all: a bare sample.
        assert_eq!(labelled_sample("pipemap_m", &[], "2"), "pipemap_m 2\n");
    }

    #[test]
    fn exposition_has_counter_gauge_and_histogram_families() {
        let registry = Registry::new();
        let r = registry.recorder();
        r.add("solver.cells", 7);
        r.gauge_set("pipeline.utilization", 0.5);
        r.observe("solver.wall_s", 0.25);
        r.observe("solver.wall_s", 0.5);
        let text = registry.to_openmetrics();

        assert!(text.contains("# TYPE pipemap_solver_cells counter\n"));
        assert!(text.contains("pipemap_solver_cells_total 7\n"));
        assert!(text.contains("# TYPE pipemap_pipeline_utilization gauge\n"));
        assert!(text.contains("pipemap_pipeline_utilization 0.5\n"));
        assert!(text.contains("# TYPE pipemap_solver_wall_s histogram\n"));
        assert!(text.contains("pipemap_solver_wall_s_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("pipemap_solver_wall_s_count 2\n"));
        assert!(text.contains("pipemap_solver_wall_s_q{quantile=\"0.5\"}"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn link_counters_become_labelled_series() {
        let registry = Registry::new();
        let r = registry.recorder();
        r.add("exec.link.source->mix:7.bytes", 4096);
        r.add("exec.link.source->mix:7.items", 32);
        r.add("exec.link.mix:7->sink.bytes", 2048);
        // A counter that merely shares the prefix but has no metric
        // suffix stays a plain counter.
        r.add("exec.link.weird", 1);
        let text = registry.to_openmetrics();

        assert!(text.contains("# TYPE pipemap_exec_link_bytes counter\n"));
        assert!(text.contains("pipemap_exec_link_bytes_total{link=\"source->mix:7\"} 4096\n"));
        assert!(text.contains("pipemap_exec_link_bytes_total{link=\"mix:7->sink\"} 2048\n"));
        assert!(text.contains("pipemap_exec_link_items_total{link=\"source->mix:7\"} 32\n"));
        // One TYPE line per family, not per series.
        assert_eq!(
            text.matches("# TYPE pipemap_exec_link_bytes counter")
                .count(),
            1
        );
        assert!(text.contains("pipemap_exec_link_weird_total 1\n"));
    }

    #[test]
    fn worker_series_become_labelled_families() {
        let registry = Registry::new();
        let r = registry.recorder();
        r.add("exec.worker.s0i1.p4242.items", 96);
        r.add("exec.worker.s2i0.p4243.items", 41);
        r.add("exec.worker.s0i1.p4242.exec.batch.messages", 3);
        r.gauge_set("exec.worker.s0i1.p4242.cpu_pct", 37.5);
        r.gauge_set("exec.worker.s2i0.p4243.cpu_pct", 12.0);
        r.gauge_set("exec.worker.s0i1.p4242.rss_bytes", 1.5e7);
        // Near-misses stay flat: malformed identity segments.
        r.add("exec.worker.s0.p1.items", 5);
        r.add("exec.worker.sxiy.pz.items", 5);
        let text = registry.to_openmetrics();

        assert!(text.contains("# TYPE pipemap_exec_worker_items counter\n"));
        assert!(text.contains(
            "pipemap_exec_worker_items_total{stage=\"0\",instance=\"1\",pid=\"4242\"} 96\n"
        ));
        assert!(text.contains(
            "pipemap_exec_worker_items_total{stage=\"2\",instance=\"0\",pid=\"4243\"} 41\n"
        ));
        // Dotted worker metrics sanitise into the family name.
        assert!(text.contains(
            "pipemap_exec_worker_exec_batch_messages_total{stage=\"0\",instance=\"1\",pid=\"4242\"} 3\n"
        ));
        assert!(text.contains("# TYPE pipemap_exec_worker_cpu_pct gauge\n"));
        assert!(text.contains(
            "pipemap_exec_worker_cpu_pct{stage=\"0\",instance=\"1\",pid=\"4242\"} 37.5\n"
        ));
        assert!(text.contains(
            "pipemap_exec_worker_rss_bytes{stage=\"0\",instance=\"1\",pid=\"4242\"} 15000000\n"
        ));
        // One TYPE line per family across all workers.
        assert_eq!(
            text.matches("# TYPE pipemap_exec_worker_items counter")
                .count(),
            1
        );
        assert_eq!(
            text.matches("# TYPE pipemap_exec_worker_cpu_pct gauge")
                .count(),
            1
        );
        // Malformed identities fall back to flat sanitised names.
        assert!(text.contains("pipemap_exec_worker_s0_p1_items_total 5\n"));
        assert!(text.contains("pipemap_exec_worker_sxiy_pz_items_total 5\n"));
    }

    #[test]
    fn link_labels_are_escaped() {
        let registry = Registry::new();
        let r = registry.recorder();
        r.add("exec.link.a\"b->c.frames", 3);
        let text = registry.to_openmetrics();
        assert!(
            text.contains("pipemap_exec_link_frames_total{link=\"a\\\"b->c\"} 3\n"),
            "{text}"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_ordered() {
        let registry = Registry::new();
        let r = registry.recorder();
        for v in [0.1, 0.2, 0.4, 0.8, 1.6] {
            r.observe("h", v);
        }
        let text = registry.to_openmetrics();
        let mut last_le = f64::NEG_INFINITY;
        let mut last_cum = 0u64;
        let mut seen = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("pipemap_h_bucket{le=\"") {
                let (le_s, cum_s) = rest.split_once("\"} ").unwrap();
                let le = if le_s == "+Inf" {
                    f64::INFINITY
                } else {
                    le_s.parse().unwrap()
                };
                let cum: u64 = cum_s.parse().unwrap();
                assert!(le > last_le, "le bounds must increase: {line}");
                assert!(cum >= last_cum, "cumulative counts must not drop: {line}");
                last_le = le;
                last_cum = cum;
                seen += 1;
            }
        }
        assert!(seen >= 5, "expected one bucket per distinct octave + Inf");
        assert_eq!(last_cum, 5);
    }
}
