//! The flight recorder: a background sampler that snapshots the
//! registry at a fixed interval into a bounded ring buffer.
//!
//! Each [`FlightSample`] pairs a timestamp (seconds since the registry
//! epoch) with a full [`MetricsSnapshot`]. Rates — DP cells/sec,
//! data-sets/sec, per-stage wait time per second — are derived from
//! counter deltas between consecutive samples at dump time, so sampling
//! itself stays cheap. The ring can be dumped as JSONL
//! ([`FlightRecorder::to_jsonl`]) or turned into Chrome `trace_event`
//! counter tracks ([`FlightRecorder::counter_track_events`]) that render
//! as per-metric stripcharts alongside the span lanes in Perfetto.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::json::Value;
use crate::metrics::{MetricsSnapshot, Registry};

/// Sampling cadence and ring capacity for a [`FlightRecorder`].
#[derive(Clone, Copy, Debug)]
pub struct RecorderConfig {
    /// Time between samples.
    pub interval: Duration,
    /// Maximum samples retained; older samples are dropped first.
    pub capacity: usize,
}

impl Default for RecorderConfig {
    /// 200 ms cadence, 512 samples (~100 s of history).
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(200),
            capacity: 512,
        }
    }
}

/// One flight-recorder sample: when, and what every metric read.
#[derive(Clone, Debug)]
pub struct FlightSample {
    /// Seconds since the registry epoch.
    pub t_s: f64,
    /// The registry's metrics at that instant.
    pub snapshot: MetricsSnapshot,
}

struct Shared {
    registry: Registry,
    ring: Mutex<VecDeque<FlightSample>>,
    capacity: usize,
    stop: AtomicBool,
}

impl Shared {
    fn sample(&self) {
        let sample = FlightSample {
            t_s: self.registry.uptime_s(),
            snapshot: self.registry.snapshot(),
        };
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(sample);
    }
}

/// A running (or manually driven) registry sampler. Stops and joins its
/// thread on drop.
pub struct FlightRecorder {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl FlightRecorder {
    /// Start a background sampler over `registry` (shares its storage).
    pub fn start(registry: &Registry, config: RecorderConfig) -> Self {
        let mut rec = Self::attach(registry, config);
        let shared = rec.shared.clone();
        let interval = config.interval;
        rec.thread = Some(std::thread::spawn(move || {
            while !shared.stop.load(Ordering::Relaxed) {
                shared.sample();
                // Sleep in small slices so stop() returns promptly.
                let mut left = interval;
                while !shared.stop.load(Ordering::Relaxed) && left > Duration::ZERO {
                    let step = left.min(Duration::from_millis(25));
                    std::thread::sleep(step);
                    left = left.saturating_sub(step);
                }
            }
        }));
        rec
    }

    /// A second handle sharing this recorder's ring (and registry) but
    /// not its thread — for the exposition server. Dropping the shared
    /// handle does not stop the original's sampling.
    pub(crate) fn share_ring(&self) -> FlightRecorder {
        FlightRecorder {
            shared: self.shared.clone(),
            thread: None,
        }
    }

    /// A recorder with no background thread; drive it with
    /// [`FlightRecorder::sample_now`] (deterministic tests, polling
    /// loops that own their cadence).
    pub fn attach(registry: &Registry, config: RecorderConfig) -> Self {
        Self {
            shared: Arc::new(Shared {
                registry: registry.clone_handle(),
                ring: Mutex::new(VecDeque::new()),
                capacity: config.capacity.max(2),
                stop: AtomicBool::new(false),
            }),
            thread: None,
        }
    }

    /// Take one sample immediately.
    pub fn sample_now(&self) {
        self.shared.sample();
    }

    /// Stop the sampler thread (if any) and take a final sample, so the
    /// record always covers the end of the run.
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.shared.sample();
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> Vec<FlightSample> {
        self.shared
            .ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Dump the ring as JSONL: one object per sample with the raw
    /// counters/gauges and, from the second sample on, per-counter
    /// `rates` (delta per second versus the previous sample).
    pub fn to_jsonl(&self) -> String {
        let samples = self.samples();
        let mut out = String::new();
        for (i, s) in samples.iter().enumerate() {
            let mut o = Value::object();
            o.set("t_s", s.t_s);
            let mut counters = Value::object();
            for (k, v) in &s.snapshot.counters {
                counters.set(k.clone(), *v);
            }
            o.set("counters", counters);
            let mut gauges = Value::object();
            for (k, v) in &s.snapshot.gauges {
                gauges.set(k.clone(), *v);
            }
            o.set("gauges", gauges);
            if i > 0 {
                let mut rates = Value::object();
                for (name, rate) in counter_rates(&samples[i - 1], s) {
                    rates.set(name, rate);
                }
                o.set("rates", rates);
            }
            out.push_str(&o.to_json());
            out.push('\n');
        }
        out
    }

    /// Chrome `trace_event` counter records (`"ph": "C"`): one track per
    /// counter carrying its derived rate (`<name>/s`) and one per gauge
    /// carrying its raw value. Append these to a trace document's
    /// `traceEvents` (see [`crate::trace::chrome_trace_with_counters`]).
    pub fn counter_track_events(&self) -> Vec<Value> {
        let samples = self.samples();
        let mut out = Vec::new();
        for i in 1..samples.len() {
            let ts_us = samples[i].t_s * 1e6;
            for (name, rate) in counter_rates(&samples[i - 1], &samples[i]) {
                out.push(counter_event(&format!("{name}/s"), ts_us, rate));
            }
            for (name, v) in &samples[i].snapshot.gauges {
                out.push(counter_event(name, ts_us, *v));
            }
        }
        out
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        // Only the handle that owns the thread stops the sampler;
        // shared ring handles (see `share_ring`) drop silently. Like
        // `stop`, take a final sample after the join so a short-lived
        // run that drops the recorder without calling `stop` still
        // records the last window of counter deltas.
        if let Some(t) = self.thread.take() {
            self.shared.stop.store(true, Ordering::Relaxed);
            let _ = t.join();
            self.shared.sample();
        }
    }
}

/// Per-counter rate (delta per second) between two samples.
fn counter_rates(prev: &FlightSample, cur: &FlightSample) -> Vec<(String, f64)> {
    let dt = cur.t_s - prev.t_s;
    if dt <= 0.0 {
        return Vec::new();
    }
    cur.snapshot
        .counters
        .iter()
        .map(|(name, v)| {
            let before = prev.snapshot.counter(name).unwrap_or(0);
            (name.clone(), v.saturating_sub(before) as f64 / dt)
        })
        .collect()
}

fn counter_event(name: &str, ts_us: f64, value: f64) -> Value {
    let mut e = Value::object();
    e.set("ph", "C");
    e.set("name", name);
    e.set("pid", 1u64);
    e.set("tid", 0u64);
    e.set("ts", ts_us);
    let mut args = Value::object();
    args.set("value", value);
    e.set("args", args);
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_sampling_derives_rates_from_counter_deltas() {
        let registry = Registry::new();
        let r = registry.recorder();
        let rec = FlightRecorder::attach(&registry, RecorderConfig::default());
        r.add("work.cells", 100);
        rec.sample_now();
        std::thread::sleep(Duration::from_millis(5));
        r.add("work.cells", 300);
        rec.sample_now();

        let samples = rec.samples();
        assert_eq!(samples.len(), 2);
        let rates = counter_rates(&samples[0], &samples[1]);
        let (_, rate) = rates.iter().find(|(n, _)| n == "work.cells").unwrap();
        assert!(*rate > 0.0, "rate {rate}");

        let jsonl = rec.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let last = Value::parse(lines[1]).unwrap();
        assert_eq!(
            last.get("counters")
                .and_then(|c| c.get("work.cells"))
                .and_then(Value::as_f64),
            Some(400.0)
        );
        assert!(last
            .get("rates")
            .and_then(|r| r.get("work.cells"))
            .and_then(Value::as_f64)
            .is_some_and(|v| v > 0.0));
    }

    #[test]
    fn ring_is_bounded() {
        let registry = Registry::new();
        let rec = FlightRecorder::attach(
            &registry,
            RecorderConfig {
                capacity: 4,
                ..Default::default()
            },
        );
        for _ in 0..10 {
            rec.sample_now();
        }
        let samples = rec.samples();
        assert_eq!(samples.len(), 4);
        // Oldest dropped: timestamps strictly from the tail of the run.
        assert!(samples.windows(2).all(|w| w[0].t_s <= w[1].t_s));
    }

    #[test]
    fn background_sampler_collects_and_stops() {
        let registry = Registry::new();
        let r = registry.recorder();
        let mut rec = FlightRecorder::start(
            &registry,
            RecorderConfig {
                interval: Duration::from_millis(5),
                capacity: 128,
            },
        );
        r.add("bg.ticks", 1);
        std::thread::sleep(Duration::from_millis(30));
        rec.stop();
        let n = rec.samples().len();
        assert!(n >= 2, "expected several samples, got {n}");
        // Stopped: no further growth.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rec.samples().len(), n);
    }

    #[test]
    fn drop_flushes_a_final_sample() {
        let registry = Registry::new();
        let r = registry.recorder();
        // Interval far longer than the run: the background thread takes
        // exactly one sample at startup, so only the drop-time flush can
        // observe the counter increment below.
        let rec = FlightRecorder::start(
            &registry,
            RecorderConfig {
                interval: Duration::from_secs(60),
                capacity: 128,
            },
        );
        std::thread::sleep(Duration::from_millis(10));
        r.add("final.window", 7);
        let shared = rec.shared.clone();
        drop(rec);
        let ring = shared.ring.lock().unwrap_or_else(|e| e.into_inner());
        let last = ring.back().expect("at least the final sample");
        assert_eq!(
            last.snapshot.counter("final.window"),
            Some(7),
            "drop must sample the final counter window"
        );
    }

    #[test]
    fn counter_tracks_are_chrome_counter_events() {
        let registry = Registry::new();
        let r = registry.recorder();
        let rec = FlightRecorder::attach(&registry, RecorderConfig::default());
        r.add("evt.count", 5);
        r.gauge_set("evt.level", 2.5);
        rec.sample_now();
        std::thread::sleep(Duration::from_millis(2));
        r.add("evt.count", 5);
        rec.sample_now();
        let events = rec.counter_track_events();
        assert!(!events.is_empty());
        for e in &events {
            assert_eq!(e.get("ph").and_then(Value::as_str), Some("C"));
            assert!(e.get("ts").and_then(Value::as_f64).is_some());
            assert!(e
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(Value::as_f64)
                .is_some());
        }
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Value::as_str) == Some("evt.count/s")));
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Value::as_str) == Some("evt.level")));
    }
}
