//! The one place every `pipemap-*/v1` schema tag lives.
//!
//! Each JSON document the tooling emits carries a schema tag so
//! consumers can reject documents they do not understand. Those tags
//! used to be string literals scattered across the emitting crates;
//! collecting them here means a version bump is a one-line change and
//! the emitters cannot drift apart from the parsers.
//!
//! A tag is always `pipemap-<family>/v<version>`; [`split`] takes one
//! apart and [`all`] enumerates every tag the workspace emits (used by
//! the round-trip test below and by anything that wants to sanity-check
//! a document's tag against the known set).

/// Sampled per-dataset journey events (JSONL header + event lines).
pub const JOURNEY: &str = "pipemap-journey/v1";
/// Observatory alert/event stream (`/events.jsonl`).
pub const EVENTS: &str = "pipemap-events/v1";
/// Drift-doctor report (`pipemap doctor --report json`).
pub const DOCTOR: &str = "pipemap-doctor/v1";
/// Decision-provenance document (`pipemap explain`).
pub const EXPLAIN: &str = "pipemap-explain/v1";
/// Measured transport cost fit (`pipemap calibrate`).
pub const CALIBRATION: &str = "pipemap-calibration/v1";
/// Incremental re-solve artifact report (`pipemap resolve`).
pub const RESOLVE: &str = "pipemap-resolve/v1";
/// Online fitted cost model (`/model.json`).
pub const MODEL: &str = "pipemap-model/v1";
/// Perf-regression harness document (`pipemap bench`).
pub const BENCH: &str = "pipemap-bench/v1";
/// Cross-process telemetry delta snapshots (worker → parent frames).
pub const TELEMETRY: &str = "pipemap-telemetry/v1";

/// Every schema tag the workspace emits, with a short family label.
pub fn all() -> &'static [(&'static str, &'static str)] {
    &[
        ("journey", JOURNEY),
        ("events", EVENTS),
        ("doctor", DOCTOR),
        ("explain", EXPLAIN),
        ("calibration", CALIBRATION),
        ("resolve", RESOLVE),
        ("model", MODEL),
        ("bench", BENCH),
        ("telemetry", TELEMETRY),
    ]
}

/// Split a tag into `(family, version)`: `pipemap-doctor/v1` →
/// `("doctor", 1)`. `None` when the tag is not of that shape.
pub fn split(tag: &str) -> Option<(&str, u32)> {
    let rest = tag.strip_prefix("pipemap-")?;
    let (family, version) = rest.split_once("/v")?;
    if family.is_empty() {
        return None;
    }
    Some((family, version.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_declared_tag_round_trips_through_split() {
        for (label, tag) in all() {
            let (family, version) = split(tag)
                .unwrap_or_else(|| panic!("schema tag '{tag}' is not pipemap-<family>/v<n>"));
            assert_eq!(family, *label, "family label drifted for '{tag}'");
            assert_eq!(version, 1, "unexpected version in '{tag}'");
            assert_eq!(
                *tag,
                format!("pipemap-{family}/v{version}"),
                "tag does not rebuild from its parts"
            );
        }
    }

    #[test]
    fn tags_are_unique() {
        let tags: Vec<&str> = all().iter().map(|(_, t)| *t).collect();
        for (i, t) in tags.iter().enumerate() {
            assert!(!tags[i + 1..].contains(t), "duplicate schema tag '{t}'");
        }
    }

    #[test]
    fn split_rejects_malformed_tags() {
        assert_eq!(split("pipemap-doctor/v1"), Some(("doctor", 1)));
        assert_eq!(split("doctor/v1"), None);
        assert_eq!(split("pipemap-/v1"), None);
        assert_eq!(split("pipemap-doctor"), None);
        assert_eq!(split("pipemap-doctor/vx"), None);
    }
}
