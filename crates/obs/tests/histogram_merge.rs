//! Properties of histogram merging (the telemetry plane's aggregation
//! primitive): merging per-worker log-bucketed histograms must be
//! associative and commutative at the bucket level, and the merged
//! quantiles must match a single histogram fed the union of all
//! samples — otherwise per-worker aggregation in the parent would
//! report different percentiles than an in-process run would have.

use pipemap_obs::Histogram;
use proptest::prelude::*;

/// Observations spanning ~12 octaves around 1.0 (microseconds to
/// kiloseconds when read as seconds) — enough to cross many buckets.
fn samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1e-4f64..1e4f64, 0..120)
}

fn fed(samples: &[f64]) -> Histogram {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Everything bucket-derived must agree exactly; `sum` only up to
/// floating-point addition order.
fn assert_equivalent(a: &Histogram, b: &Histogram) {
    assert_eq!(a.bucket_counts(), b.bucket_counts());
    assert_eq!(a.count(), b.count());
    assert_eq!(a.max(), b.max());
    let (sa, sb) = (a.summary(), b.summary());
    assert_eq!(sa.p50, sb.p50);
    assert_eq!(sa.p95, sb.p95);
    assert_eq!(sa.p99, sb.p99);
    let scale = sa.sum.abs().max(sb.sum.abs()).max(1.0);
    assert!(
        (sa.sum - sb.sum).abs() <= 1e-9 * scale,
        "sums diverged beyond fp reassociation: {} vs {}",
        sa.sum,
        sb.sum
    );
}

proptest! {
    #[test]
    fn merge_is_commutative(xs in samples(), ys in samples()) {
        let ab = fed(&xs);
        ab.merge(&fed(&ys));
        let ba = fed(&ys);
        ba.merge(&fed(&xs));
        assert_equivalent(&ab, &ba);
    }

    #[test]
    fn merge_is_associative(
        xs in samples(),
        ys in samples(),
        zs in samples(),
    ) {
        // ((x ∪ y) ∪ z)
        let left = fed(&xs);
        left.merge(&fed(&ys));
        left.merge(&fed(&zs));
        // (x ∪ (y ∪ z))
        let yz = fed(&ys);
        yz.merge(&fed(&zs));
        let right = fed(&xs);
        right.merge(&yz);
        assert_equivalent(&left, &right);
    }

    #[test]
    fn merged_quantiles_match_union_fed_histogram(
        xs in samples(),
        ys in samples(),
        zs in samples(),
    ) {
        // Three "workers" merged into one parent histogram...
        let merged = fed(&xs);
        merged.merge(&fed(&ys));
        merged.merge(&fed(&zs));
        // ...versus one histogram that saw every sample directly.
        let union: Vec<f64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        let direct = fed(&union);
        assert_equivalent(&merged, &direct);
        let (m, d) = (merged.summary(), direct.summary());
        prop_assert_eq!(m.p50, d.p50);
        prop_assert_eq!(m.p99, d.p99);
        prop_assert_eq!(m.max, d.max);
        prop_assert_eq!(m.count, d.count);
    }
}

#[test]
fn merge_cells_round_trips_through_wire_form() {
    // The wire form (sparse bucket deltas + count/sum/max) must rebuild
    // the source histogram exactly when applied to an empty one.
    let src = fed(&[0.001, 0.002, 0.004, 0.004, 1.5, 300.0]);
    let dst = Histogram::new();
    dst.merge_cells(&src.bucket_counts(), src.count(), src.sum(), src.max());
    assert_equivalent(&src, &dst);
}
