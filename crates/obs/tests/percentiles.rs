//! Histogram percentile accuracy against known distributions.
//!
//! The log-bucketed histogram promises quantile estimates within the
//! bucket-width relative-error bound (8 sub-buckets per octave → bucket
//! width 2^(1/8) ≈ 9%, representative point in the middle → ≤ ~6–7%
//! relative error). Feed it large deterministic samples from a uniform
//! and a lognormal distribution and compare its p50/p95/p99 against the
//! *exact* sample quantiles (same rank convention), so sampling noise
//! cancels and only bucketing error remains.

use pipemap_obs::{Histogram, Registry};

/// The histogram's worst-case relative quantile error from bucketing.
const BUCKET_REL_ERROR: f64 = 0.07;

/// Exact sample quantile with the histogram's rank convention
/// (`rank = ceil(q·n)` clamped to `[1, n]`, 1-indexed order statistic).
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

fn assert_quantiles_close(values: &mut [f64], label: &str) {
    let h = Histogram::new();
    for &v in values.iter() {
        h.record(v);
    }
    values.sort_by(|a, b| a.total_cmp(b));
    let s = h.summary();
    assert_eq!(s.count, values.len() as u64);
    for (q, est) in [(0.50, s.p50), (0.95, s.p95), (0.99, s.p99)] {
        let exact = exact_quantile(values, q);
        let rel = (est - exact).abs() / exact;
        assert!(
            rel <= BUCKET_REL_ERROR,
            "{label} p{:.0}: estimate {est}, exact {exact}, rel err {rel:.4} > {BUCKET_REL_ERROR}",
            q * 100.0
        );
    }
    // The maximum is tracked exactly, not bucketed.
    assert_eq!(s.max, *values.last().unwrap());
}

#[test]
fn uniform_distribution_quantiles_within_bucket_error() {
    // 100k evenly spaced points over (0, 2.5] — a uniform sample with
    // zero sampling noise.
    let mut values: Vec<f64> = (1..=100_000).map(|i| i as f64 * 2.5e-5).collect();
    assert_quantiles_close(&mut values, "uniform(0, 2.5]");
}

#[test]
fn uniform_distribution_spanning_octaves() {
    // Uniform over [0.001, 10): exercises ~13 octaves of buckets.
    let mut values: Vec<f64> = (0..100_000)
        .map(|i| 0.001 + i as f64 * (10.0 - 0.001) / 100_000.0)
        .collect();
    assert_quantiles_close(&mut values, "uniform[0.001, 10)");
}

#[test]
fn lognormal_distribution_quantiles_within_bucket_error() {
    // Deterministic lognormal(μ=-1, σ=0.75) via Box–Muller over an LCG.
    let mut state = 0x2545f4914f6cdd1du64;
    let mut next_u01 = move || {
        // Numerical Recipes LCG; take the high bits.
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 + 0.5) / (1u64 << 53) as f64
    };
    let (mu, sigma) = (-1.0, 0.75);
    let mut values = Vec::with_capacity(100_000);
    while values.len() < 100_000 {
        let u1: f64 = next_u01();
        let u2: f64 = next_u01();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        for z in [r * theta.cos(), r * theta.sin()] {
            values.push((mu + sigma * z).exp());
        }
    }
    assert_quantiles_close(&mut values, "lognormal(-1, 0.75)");
}

#[test]
fn quantiles_survive_the_registry_roundtrip() {
    // Same bound when recording through a Recorder into a Registry.
    let registry = Registry::new();
    let r = registry.recorder();
    let mut values: Vec<f64> = (1..=50_000).map(|i| i as f64 * 1e-4).collect();
    for &v in &values {
        r.observe("rt.latency_s", v);
    }
    values.sort_by(|a, b| a.total_cmp(b));
    let snap = registry.snapshot();
    let s = snap.histogram("rt.latency_s").unwrap();
    for (q, est) in [(0.50, s.p50), (0.95, s.p95), (0.99, s.p99)] {
        let exact = exact_quantile(&values, q);
        let rel = (est - exact).abs() / exact;
        assert!(rel <= BUCKET_REL_ERROR, "p{}: rel err {rel}", q * 100.0);
    }
}
