//! Guard: the uninstalled-recorder path must cost nothing.
//!
//! A detached [`Recorder`] (no registry installed) is the state every
//! instrumented hot loop runs in by default, so its operations must not
//! allocate or take locks — each one is a single branch on `None`. This
//! test pins that down with a counting global allocator: any future
//! change that makes the disabled path allocate (e.g. building the
//! metric name eagerly) fails here. A matching wall-time micro-check
//! lives in `crates/bench/benches/kernels.rs`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pipemap_obs::Recorder;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations observed while running `f`.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// Minimum allocation count over a few runs of `f`. The counter is
/// process-global, so a concurrently-finishing sibling test (libtest
/// runs tests on parallel threads) can leak its harness allocations
/// into one measured window. A path that truly allocates does so on
/// every run; transient cross-thread noise does not, so the minimum
/// keeps the guard's power without the flake.
fn min_allocations_during(mut f: impl FnMut()) -> u64 {
    (0..3).map(|_| allocations_during(&mut f)).min().unwrap()
}

#[test]
fn disabled_recorder_operations_do_not_allocate() {
    let r = Recorder::disabled();
    // Resolve handles once outside the measured window, like a hot loop
    // would.
    let counter = r.counter("hot.items");
    let hist = r.histogram("hot.size");

    let allocs = min_allocations_during(|| {
        for i in 0..10_000u64 {
            r.add("hot.items", 1);
            r.observe("hot.size", i as f64);
            r.gauge_set("hot.level", i as f64);
            counter.add(1);
            hist.record(i as f64);
            drop(r.timer("hot.wall_s"));
            drop(r.span("hot.phase", "test"));
        }
    });
    assert_eq!(
        allocs, 0,
        "disabled recorder must not allocate (saw {allocs} allocations over 70k ops)"
    );
}

#[test]
fn detached_handles_are_allocation_free_to_create() {
    let r = Recorder::disabled();
    let allocs = min_allocations_during(|| {
        for _ in 0..1000 {
            let c = r.counter("x.y");
            c.add(1);
            let h = r.histogram("x.z");
            h.record(1.0);
            let r2 = r.clone();
            r2.add("x.w", 1);
        }
    });
    assert_eq!(
        allocs, 0,
        "handle creation on a disabled recorder allocated"
    );
}
