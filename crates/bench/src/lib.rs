//! # pipemap-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation (§6), plus the ablations called out in DESIGN.md.
//!
//! Regeneration binaries (run with `cargo run --release -p pipemap-bench
//! --bin <name>`):
//!
//! | target    | paper artefact |
//! |-----------|----------------|
//! | `table1`  | Table 1 — optimal and feasible-optimal FFT-Hist mappings |
//! | `table2`  | Table 2 — predicted vs measured vs data-parallel throughput |
//! | `figure2` | Figure 2 — execution-model Gantt chart from a simulated run |
//! | `figure3` | Figure 3 — replication: response time up, throughput up |
//! | `figure4` | Figure 4 — the DP's subchain tables |
//! | `figure5` | Figure 5 — the FFT-Hist task graph |
//! | `figure6` | Figure 6 — the optimal mapping placed on the 8×8 array |
//! | `ablation`| algorithm quality/runtime, comm-blind mapping, replication policy |
//!
//! (Figure 1's four mapping styles are the root crate's
//! `examples/mapping_styles.rs`.) Criterion micro-benches for the solver
//! and substrate components live under `benches/`.

use pipemap_apps::{fft_hist, FftHistConfig};
use pipemap_machine::{AppWorkload, MachineConfig};

/// The four FFT-Hist configurations of Tables 1 and 2, with labels.
pub fn fft_hist_configs() -> Vec<(AppWorkload, MachineConfig, &'static str, &'static str)> {
    vec![
        (
            fft_hist(FftHistConfig::n256()),
            MachineConfig::iwarp_message(),
            "256x256",
            "Message",
        ),
        (
            fft_hist(FftHistConfig::n256()),
            MachineConfig::iwarp_systolic(),
            "256x256",
            "Systolic",
        ),
        (
            fft_hist(FftHistConfig::n512()),
            MachineConfig::iwarp_message(),
            "512x512",
            "Message",
        ),
        (
            fft_hist(FftHistConfig::n512()),
            MachineConfig::iwarp_systolic(),
            "512x512",
            "Systolic",
        ),
    ]
}

/// Render one mapping as the paper's `(p_i, r_i)` tuple list.
pub fn mapping_tuple(mapping: &pipemap_chain::Mapping) -> String {
    mapping
        .modules
        .iter()
        .map(|m| format!("p={:<2} r={:<2}", m.procs, m.replicas))
        .collect::<Vec<_>>()
        .join(" | ")
}
