//! Regenerate **Table 1**: optimal and feasible-optimal mappings for
//! FFT-Hist on the 64-processor machine, for both data-set sizes and both
//! communication modes.
//!
//! Paper reference (Subhlok & Vondran 1995, Table 1):
//!
//! ```text
//! 256x256 Message : optimal (3,8)(4,10) 14.60/s ; feasible identical
//! 256x256 Systolic: optimal (3,6)(4,11) 14.74/s ; feasible identical
//! 512x512 Message : optimal (20,1)(14,3) 3.14/s ; feasible identical
//! 512x512 Systolic: optimal (12,2)(13,3) 2.99/s ; feasible (12,2)(12,3) 2.83/s
//! ```

use pipemap_bench::{fft_hist_configs, mapping_tuple};
use pipemap_core::dp_mapping;
use pipemap_machine::{feasible_optimal, synthesize_problem, FeasibleSearch};
use pipemap_profile::training::fit_problem;
use pipemap_profile::TrainingConfig;
use pipemap_tool::render_mapping;

fn main() {
    println!("Table 1: Optimal and Feasible Optimal Mappings for FFT-Hist");
    println!("(paper values in the rightmost column for comparison)\n");
    println!(
        "{:<9} {:<9} {:<28} {:>8}   {:<28} {:>8}   paper optimal",
        "Size", "Comm", "Optimal (p,r per module)", "thr/s", "Feasible", "thr/s"
    );
    let paper = [
        "(3,8)(4,10) 14.60",
        "(3,6)(4,11) 14.74",
        "(20,1)(14,3) 3.14",
        "(12,2)(13,3) 2.99; feas (12,2)(12,3) 2.83",
    ];
    for ((app, machine, size, comm), paper_row) in fft_hist_configs().into_iter().zip(paper) {
        let truth = synthesize_problem(&app, &machine);
        let fitted = fit_problem(&truth, &TrainingConfig::for_procs(truth.total_procs));
        let optimal = dp_mapping(&fitted).expect("FFT-Hist is mappable");
        let feasible = feasible_optimal(
            &fitted,
            &machine,
            &optimal.mapping.clustering(),
            FeasibleSearch::default(),
        );
        let (fm, fthr) = match &feasible {
            Some((m, t)) => (mapping_tuple(m), format!("{t:.2}")),
            None => ("(none found)".to_string(), "-".to_string()),
        };
        println!(
            "{:<9} {:<9} {:<28} {:>8.2}   {:<28} {:>8}   {}",
            size,
            comm,
            mapping_tuple(&optimal.mapping),
            optimal.throughput,
            fm,
            fthr,
            paper_row
        );
        println!(
            "          clustering: {}",
            render_mapping(&fitted, &optimal.mapping)
        );
    }
}
