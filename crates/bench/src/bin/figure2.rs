//! Regenerate **Figure 2**: the execution model of a chain of tasks — a
//! Gantt chart where each module instance alternates receive (`r`),
//! execute (`#`), and send (`s`) phases, with sender and receiver
//! occupied simultaneously during every transfer.
//!
//! Generated from an actual simulated run of a 3-task chain (not drawn by
//! hand): the vertical alignment of each `s` row with the `r` row below
//! it is the rendezvous the paper's Figure 2 depicts.

use pipemap_chain::{ChainBuilder, Edge, Mapping, ModuleAssignment, Task};
use pipemap_model::{PolyEcom, PolyUnary};
use pipemap_sim::{simulate, SimConfig};

fn main() {
    let chain = ChainBuilder::new()
        .task(Task::new("t1", PolyUnary::new(3.0, 0.0, 0.0)))
        .edge(Edge::new(
            PolyUnary::zero(),
            PolyEcom::new(1.0, 0.0, 0.0, 0.0, 0.0),
        ))
        .task(Task::new("t2", PolyUnary::new(2.0, 0.0, 0.0)))
        .edge(Edge::new(
            PolyUnary::zero(),
            PolyEcom::new(1.0, 0.0, 0.0, 0.0, 0.0),
        ))
        .task(Task::new("t3", PolyUnary::new(3.0, 0.0, 0.0)))
        .build();
    let mapping = Mapping::new(vec![
        ModuleAssignment::new(0, 0, 1, 2),
        ModuleAssignment::new(1, 1, 1, 2),
        ModuleAssignment::new(2, 2, 1, 2),
    ]);
    let cfg = SimConfig {
        num_datasets: 6,
        warmup: 1,
        ..SimConfig::default()
    }
    .with_trace();
    let result = simulate(&chain, &mapping, &cfg);
    println!("Figure 2: execution model of a chain of tasks");
    println!("(r = receive, # = execute, s = send; rows are module instances)\n");
    println!(
        "{}",
        result.trace.expect("trace requested").render_gantt(100)
    );
    println!(
        "steady-state throughput {:.3} data sets/s (analytic bottleneck: t1 with f = 3 + 1 = 4s → 0.25/s)",
        result.throughput
    );
}
