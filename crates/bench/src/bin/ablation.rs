//! Ablation studies backing the design decisions (DESIGN.md A1–A3):
//!
//! * **A1** — solution quality and runtime of the DP vs the greedy
//!   heuristic vs brute force over random chains (the paper's claim that
//!   the greedy is near-optimal at a fraction of the cost);
//! * **A2** — the value of a real communication model: mappings computed
//!   with communication ignored (the Choudhary-et-al. regime the paper
//!   argues against) evaluated under the true model;
//! * **A3** — the §3.2 maximal-replication rule vs a free replication
//!   search, on the radar pipeline where tiny instances hurt their
//!   neighbours' transfers.

use std::time::Instant;

use pipemap_apps::{radar, RadarConfig};
use pipemap_chain::{throughput, ChainBuilder, Edge, Problem, Task};
use pipemap_core::{brute_force_mapping, cluster_heuristic, dp_mapping, GreedyOptions, SolveError};
use pipemap_machine::{feasible_optimal, synthesize_problem, FeasibleSearch, MachineConfig};
use pipemap_model::{PolyEcom, PolyUnary, UnaryCost};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_problem(rng: &mut StdRng, k: usize, p: usize) -> Problem {
    let mut b = ChainBuilder::new().task(random_task(rng, 0));
    for i in 1..k {
        b = b.edge(random_edge(rng)).task(random_task(rng, i));
    }
    Problem::new(b.build(), p, 1e9).without_replication()
}

fn random_task(rng: &mut StdRng, i: usize) -> Task {
    Task::new(
        format!("t{i}"),
        PolyUnary::new(
            rng.gen_range(0.0..0.5),
            rng.gen_range(1.0..10.0),
            rng.gen_range(0.0..0.05),
        ),
    )
}

fn random_edge(rng: &mut StdRng) -> Edge {
    Edge::new(
        PolyUnary::new(rng.gen_range(0.0..0.3), rng.gen_range(0.0..1.0), 0.0),
        PolyEcom::new(
            rng.gen_range(0.0..0.5),
            rng.gen_range(0.0..2.0),
            rng.gen_range(0.0..2.0),
            rng.gen_range(0.0..0.05),
            rng.gen_range(0.0..0.05),
        ),
    )
}

fn ablation_a1() {
    println!("A1: solver quality and runtime (random chains, no replication)\n");
    println!(
        "{:>3} {:>4} | {:>10} {:>10} {:>10} | {:>10} {:>10} | {:>8}",
        "k", "P", "brute", "dp", "greedy", "dp time", "greedy t", "gap%"
    );
    let mut rng = StdRng::seed_from_u64(2024);
    for (k, p, trials) in [
        (3usize, 8usize, 10usize),
        (4, 10, 10),
        (5, 24, 5),
        (4, 64, 5),
    ] {
        let mut dp_total = 0.0;
        let mut greedy_total = 0.0;
        let mut worst_gap: f64 = 0.0;
        let mut brute_thr = f64::NAN;
        let mut dp_thr = 0.0;
        let mut greedy_thr = 0.0;
        for _ in 0..trials {
            let problem = random_problem(&mut rng, k, p);
            let t0 = Instant::now();
            let dp = dp_mapping(&problem).unwrap();
            dp_total += t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let greedy = cluster_heuristic(&problem, GreedyOptions::adaptive()).unwrap();
            greedy_total += t0.elapsed().as_secs_f64();
            match brute_force_mapping(&problem) {
                Ok(b) => {
                    assert!(
                        dp.throughput >= b.throughput * (1.0 - 1e-9),
                        "DP must match brute force: {} vs {}",
                        dp.throughput,
                        b.throughput
                    );
                    brute_thr = b.throughput;
                }
                Err(SolveError::TooLarge { .. }) => brute_thr = f64::NAN,
                Err(e) => panic!("{e}"),
            }
            let gap = 100.0 * (dp.throughput - greedy.throughput) / dp.throughput;
            worst_gap = worst_gap.max(gap);
            dp_thr = dp.throughput;
            greedy_thr = greedy.throughput;
        }
        println!(
            "{:>3} {:>4} | {:>10.3} {:>10.3} {:>10.3} | {:>9.1}ms {:>9.1}ms | {:>8.2}",
            k,
            p,
            brute_thr,
            dp_thr,
            greedy_thr,
            1e3 * dp_total / trials as f64,
            1e3 * greedy_total / trials as f64,
            worst_gap
        );
    }
    println!("(gap% = worst greedy shortfall vs the optimal DP over the trials)\n");
}

fn ablation_a2() {
    println!("A2: mapping with communication ignored (Choudhary et al. regime)\n");
    // A chain whose transfers are expensive: the comm-blind mapper will
    // split it; the comm-aware mapper clusters.
    let mk_chain = |free_comm: bool| {
        let ecom = if free_comm {
            PolyEcom::zero()
        } else {
            PolyEcom::new(0.4, 1.0, 1.0, 0.02, 0.02)
        };
        let icom = if free_comm {
            UnaryCost::Zero
        } else {
            UnaryCost::Poly(PolyUnary::new(0.05, 0.2, 0.0))
        };
        ChainBuilder::new()
            .task(Task::new("a", PolyUnary::new(0.1, 6.0, 0.01)))
            .edge(Edge::new(icom.clone(), ecom))
            .task(Task::new("b", PolyUnary::new(0.1, 8.0, 0.01)))
            .edge(Edge::new(icom, ecom))
            .task(Task::new("c", PolyUnary::new(0.1, 4.0, 0.01)))
            .build()
    };
    let p = 32;
    let real = Problem::new(mk_chain(false), p, 1e9).without_replication();
    let blind = Problem::new(mk_chain(true), p, 1e9).without_replication();

    let aware = dp_mapping(&real).unwrap();
    let blind_sol = dp_mapping(&blind).unwrap();
    // Evaluate the comm-blind mapping under the true cost model.
    let blind_under_real = throughput(&real.chain, &blind_sol.mapping);
    println!(
        "  comm-aware optimal:  {:?} -> {:.3}/s",
        aware.mapping.clustering(),
        aware.throughput
    );
    println!(
        "  comm-blind mapping:  {:?} -> {:.3}/s under the real model ({:.3}/s believed)",
        blind_sol.mapping.clustering(),
        blind_under_real,
        blind_sol.throughput
    );
    println!(
        "  penalty for ignoring communication: {:.1}%\n",
        100.0 * (aware.throughput - blind_under_real) / aware.throughput
    );
    assert!(aware.throughput >= blind_under_real - 1e-9);
}

fn ablation_a3() {
    println!("A3: maximal replication (§3.2 rule) vs free replication\n");
    let machine = MachineConfig::iwarp_systolic();
    let problem = synthesize_problem(&radar(RadarConfig::paper()), &machine);
    let policy = dp_mapping(&problem).unwrap();
    let free_dp = pipemap_core::dp_mapping_free(&problem).unwrap();
    let free_search = feasible_optimal(
        &problem,
        &machine,
        &policy.mapping.clustering(),
        FeasibleSearch::default(),
    );
    let fmt = |m: &pipemap_chain::Mapping| -> Vec<(usize, usize)> {
        m.modules.iter().map(|m| (m.procs, m.replicas)).collect()
    };
    println!(
        "  §3.2-policy DP:           {:.2}/s  {:?}",
        policy.throughput,
        fmt(&policy.mapping)
    );
    println!(
        "  free-replication DP:      {:.2}/s  {:?}",
        free_dp.throughput,
        fmt(&free_dp.mapping)
    );
    if let Some((m, thr)) = free_search {
        println!("  free search (same clust): {:.2}/s  {:?}", thr, fmt(&m));
    }
    assert!(free_dp.throughput >= policy.throughput - 1e-9);
    println!("\n  The §3.2 rule replicates maximally subject to memory floors, which");
    println!("  is optimal when cost functions are superlinearity-free AND neighbours");
    println!("  are unaffected — but an instance's size also appears in its");
    println!("  neighbours' transfer costs, so floors of 1 let the rule shatter");
    println!("  modules into 1-processor instances whose transfers are slow. The");
    println!("  free-replication DP (binary search on throughput + a min-processor");
    println!("  DP with closed-form r* = ceil(f*T)) removes the rule exactly.");
}

fn main() {
    ablation_a1();
    ablation_a2();
    ablation_a3();
}
