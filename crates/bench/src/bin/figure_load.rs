//! Extension experiment: latency under load. The paper's model covers a
//! saturated source; with an open-loop source (a camera at a fixed frame
//! rate) the sojourn time per data set follows the classic queueing
//! hockey-stick as the arrival rate approaches the mapping's capacity.

use pipemap_apps::{fft_hist, FftHistConfig};
use pipemap_core::{cluster_heuristic, latency, GreedyOptions};
use pipemap_machine::{synthesize_problem, MachineConfig};
use pipemap_profile::training::fit_problem;
use pipemap_profile::TrainingConfig;
use pipemap_sim::{simulate, SimConfig};

fn main() {
    let machine = MachineConfig::iwarp_message();
    let truth = synthesize_problem(&fft_hist(FftHistConfig::n256()), &machine);
    let fitted = fit_problem(&truth, &TrainingConfig::for_procs(truth.total_procs));
    let sol = cluster_heuristic(&fitted, GreedyOptions::adaptive()).expect("mappable");
    let capacity = sol.throughput;
    let unloaded = latency(&fitted.chain, &sol.mapping);

    println!("Latency under load — FFT-Hist 256x256, optimal mapping");
    println!(
        "capacity {:.2} data sets/s, unloaded latency {:.3}s\n",
        capacity, unloaded
    );
    println!(
        "{:>10} {:>12} | {:>11} {:>11} {:>11}",
        "load", "arrivals/s", "mean lat s", "max lat s", "thr/s"
    );
    for load in [0.2, 0.5, 0.8, 0.9, 0.95, 1.05, 1.3] {
        let rate: f64 = load * capacity;
        let cfg = SimConfig::with_datasets(800).with_arrival_period(1.0 / rate);
        let r = simulate(&truth.chain, &sol.mapping, &cfg);
        println!(
            "{:>9.0}% {:>12.2} | {:>11.3} {:>11.3} {:>11.2}",
            100.0 * load,
            rate,
            r.latency.mean,
            r.latency.max,
            r.throughput
        );
    }
    println!("\nBelow saturation the sojourn time stays near the unloaded");
    println!("latency; past it, queues grow without bound (the max-latency");
    println!("column is limited only by the run length) while throughput");
    println!("pins at the mapping's capacity — the paper's bottleneck law");
    println!("seen from the arrival side.");
}
