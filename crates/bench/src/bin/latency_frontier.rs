//! Extension experiment (DESIGN.md: the reference-\[14\] direction):
//! the latency/throughput frontier of FFT-Hist. For a sweep of
//! throughput floors, find the minimum-latency mapping meeting each
//! floor, tracing how the mapper trades pipeline depth and replication
//! for response time.

use pipemap_apps::{fft_hist, FftHistConfig};
use pipemap_bench::mapping_tuple;
use pipemap_core::{best_latency_mapping, dp_mapping, latency};
use pipemap_machine::{synthesize_problem, MachineConfig};
use pipemap_profile::training::fit_problem;
use pipemap_profile::TrainingConfig;

fn main() {
    let machine = MachineConfig::iwarp_message();
    let truth = synthesize_problem(&fft_hist(FftHistConfig::n256()), &machine);
    let problem = fit_problem(&truth, &TrainingConfig::for_procs(truth.total_procs));

    let thr_opt = dp_mapping(&problem).expect("mappable");
    println!("latency/throughput frontier — FFT-Hist 256x256, message passing, 64 procs");
    println!(
        "(throughput-optimal mapping: {} at {:.2}/s, latency {:.3}s)\n",
        mapping_tuple(&thr_opt.mapping),
        thr_opt.throughput,
        latency(&problem.chain, &thr_opt.mapping)
    );
    println!(
        "{:>12} | {:>10} {:>10}  mapping",
        "floor (/s)", "latency s", "thr/s"
    );
    for frac in [0.0, 0.25, 0.5, 0.7, 0.85, 0.95, 0.999] {
        let floor = thr_opt.throughput * frac;
        match best_latency_mapping(&problem, floor) {
            Ok(sol) => println!(
                "{:>12.2} | {:>10.3} {:>10.2}  {}",
                floor,
                sol.latency,
                sol.throughput,
                mapping_tuple(&sol.mapping)
            ),
            Err(e) => println!("{floor:>12.2} | {e}"),
        }
    }
    println!("\nLow floors admit one wide unreplicated module (minimum latency);");
    println!("demanding floors force the throughput-optimal pipelined + replicated");
    println!("structure, whose per-data-set latency is several times higher.");
}
