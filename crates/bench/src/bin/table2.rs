//! Regenerate **Table 2**: predicted vs measured optimal throughput,
//! percent difference, data-parallel throughput, and the
//! optimal/data-parallel ratio — for the four FFT-Hist configurations
//! plus the radar and stereo applications.
//!
//! Paper reference (Subhlok & Vondran 1995, Table 2):
//!
//! ```text
//! FFT-Hist 256 Message : pred 14.60 meas 16.28 (+11.51%)  dp 1.86  ratio 8.75
//! FFT-Hist 256 Systolic: pred 14.74 meas 14.35 (−2.65%)   dp 1.86  ratio 7.72
//! FFT-Hist 512 Message : pred 3.14  meas 2.93  (−6.69%)   dp 1.35  ratio 2.17
//! FFT-Hist 512 Systolic: pred 2.83  meas 2.65  (−6.36%)   dp 1.35  ratio 1.96
//! Radar    512x10x4 Sys: pred 81.21 meas 81.18 (−0.03%)   dp 18.95 ratio 4.28
//! Stereo   256x100  Sys: pred 43.12 meas 43.15 (+0.07%)   dp 15.67 ratio 2.75
//! ```

use pipemap_apps::{radar, stereo, RadarConfig, StereoConfig};
use pipemap_machine::MachineConfig;
use pipemap_tool::{auto_map, MapperOptions};

fn main() {
    let mut rows = pipemap_bench::fft_hist_configs();
    rows.push((
        radar(RadarConfig::paper()),
        MachineConfig::iwarp_systolic(),
        "512x10x4",
        "Systolic",
    ));
    rows.push((
        stereo(StereoConfig::paper()),
        MachineConfig::iwarp_systolic(),
        "256x100",
        "Systolic",
    ));
    // 3.14 here is the paper's reported FFT-Hist 512/message throughput,
    // not an approximation of π.
    #[allow(clippy::approx_constant)]
    let paper = [
        (14.60, 16.28, 1.86, 8.75),
        (14.74, 14.35, 1.86, 7.72),
        (3.14, 2.93, 1.35, 2.17),
        (2.83, 2.65, 1.35, 1.96),
        (81.21, 81.18, 18.95, 4.28),
        (43.12, 43.15, 15.67, 2.75),
    ];

    println!("Table 2: Performance Results (ours vs paper)\n");
    println!(
        "{:<22} {:<9} | {:>9} {:>9} {:>8} {:>8} {:>7} | {:>9} {:>9} {:>8} {:>7}",
        "Program",
        "Comm",
        "pred/s",
        "meas/s",
        "diff%",
        "dp/s",
        "ratio",
        "paperPre",
        "paperMea",
        "paperDp",
        "paperR"
    );
    let options = MapperOptions {
        measurement_runs: 5,
        ..MapperOptions::default()
    };
    for ((app, machine, size, comm), (p_pred, p_meas, p_dp, p_ratio)) in rows.into_iter().zip(paper)
    {
        let report = auto_map(&app, &machine, &options).expect("mappable");
        println!(
            "{:<22} {:<9} | {:>9.2} {:>9.2} {:>+8.2} {:>8.2} {:>7.2} | {:>9.2} {:>9.2} {:>8.2} {:>7.2}   (meas over {} runs: {:.2} ± {:.2})",
            format!("{} {}", report.app.split(' ').next().unwrap_or(""), size),
            comm,
            report.predicted_throughput,
            report.measured.throughput,
            report.percent_difference(),
            report.data_parallel.throughput,
            report.optimal_over_data_parallel(),
            p_pred,
            p_meas,
            p_dp,
            p_ratio,
            report.measured_spread.count,
            report.measured_spread.mean,
            report.measured_spread.std_dev
        );
    }
    println!(
        "\n(\"measured\" is the pipeline simulator on ground-truth machine costs with noise;\n predicted is the optimiser's value on the fitted polynomial model.)"
    );
}
