//! Extension experiment: quantify §6.4's closing argument — "the
//! inaccuracies in predicting an optimal mapping for a practical system
//! are small as compared to the benefits that are obtained by choosing a
//! good mapping". For each paper application, perturb every fitted cost
//! by a systematic per-function error and measure the *regret* of the
//! originally chosen mapping against the perturbed-model optimum, next
//! to the benefit over pure data parallelism.

use pipemap_apps::{fft_hist, radar, stereo, FftHistConfig, RadarConfig, StereoConfig};
use pipemap_chain::{throughput, Mapping};
use pipemap_core::{cluster_heuristic, GreedyOptions};
use pipemap_machine::{synthesize_problem, MachineConfig};
use pipemap_profile::training::fit_problem;
use pipemap_profile::TrainingConfig;
use pipemap_tool::robustness;

fn main() {
    println!("Robustness of the chosen mapping to model error");
    println!("(regret = throughput lost vs the optimum of the perturbed model)\n");
    println!(
        "{:<22} | {:>9} | {:>12} {:>12} {:>9} | {:>12}",
        "app", "error", "mean regret", "max regret", "reclust", "dp benefit"
    );
    let configs: Vec<(pipemap_machine::AppWorkload, MachineConfig)> = vec![
        (
            fft_hist(FftHistConfig::n256()),
            MachineConfig::iwarp_message(),
        ),
        (
            fft_hist(FftHistConfig::n512()),
            MachineConfig::iwarp_message(),
        ),
        (radar(RadarConfig::paper()), MachineConfig::iwarp_systolic()),
        (
            stereo(StereoConfig::paper()),
            MachineConfig::iwarp_systolic(),
        ),
    ];
    for (app, machine) in configs {
        let truth = synthesize_problem(&app, &machine);
        let fitted = fit_problem(&truth, &TrainingConfig::for_procs(truth.total_procs));
        let sol = cluster_heuristic(&fitted, GreedyOptions::adaptive()).expect("mappable");
        let dp_thr = throughput(&fitted.chain, &Mapping::data_parallel(&fitted));
        let benefit = sol.throughput / dp_thr;
        for spread in [0.10, 0.25] {
            let r = robustness(&fitted, &sol.mapping, spread, 20, 0xfeed).expect("solvable");
            println!(
                "{:<22} | {:>8.0}% | {:>11.1}% {:>11.1}% {:>6}/{:<2} | {:>11.2}x",
                app.name,
                100.0 * spread,
                100.0 * r.regret.mean,
                100.0 * r.regret.max,
                r.clustering_changes,
                r.trials,
                benefit
            );
        }
    }
    println!("\nEven a consistent 25% error in any cost function costs a few");
    println!("percent of throughput at worst, while choosing a good mapping in");
    println!("the first place is worth 2-9x — the paper's §6.4 conclusion, made");
    println!("quantitative.");
}
