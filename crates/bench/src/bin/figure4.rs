//! Regenerate **Figure 4**: processor assignment with dynamic
//! programming — the subchain tables `A_j(p_total, p_last, p_next)` the
//! DP builds stage by stage. We print a slice of each stage's table for a
//! small instance so the structure is visible.

use pipemap_chain::{ChainBuilder, Edge, Problem, Task};
use pipemap_core::dp::dp_assignment_traced;
use pipemap_model::{PolyEcom, PolyUnary};

fn main() {
    let chain = ChainBuilder::new()
        .task(Task::new("t1", PolyUnary::perfectly_parallel(6.0)))
        .edge(Edge::new(
            PolyUnary::zero(),
            PolyEcom::new(0.2, 0.5, 0.5, 0.0, 0.0),
        ))
        .task(Task::new("t2", PolyUnary::perfectly_parallel(10.0)))
        .edge(Edge::new(
            PolyUnary::zero(),
            PolyEcom::new(0.1, 0.25, 0.25, 0.0, 0.0),
        ))
        .task(Task::new("t3", PolyUnary::perfectly_parallel(4.0)))
        .build();
    let p = 8;
    let problem = Problem::new(chain, p, 1e9).without_replication();
    let trace = dp_assignment_traced(&problem).expect("feasible");

    println!("Figure 4: processor assignment with dynamic programming");
    println!("chain: t1 → t2 → t3, P = {p} processors\n");
    for stage in &trace.stages {
        let j = stage.task;
        println!(
            "stage {}: V_{}(p_total = {}, p_last, p_next) — best bottleneck throughput",
            j, j, p
        );
        print!("  p_last \\ p_next |");
        let pn_values: Vec<usize> = if j + 1 == 3 {
            vec![0]
        } else {
            (1..=p).collect()
        };
        for pn in &pn_values {
            if *pn == 0 {
                print!("    φ   ");
            } else {
                print!("  {pn:>4}  ");
            }
        }
        println!();
        for pl in 1..=p {
            print!("  {pl:>14} |");
            for &pn in &pn_values {
                let v = stage.get(p, pl, pn);
                if v == f64::NEG_INFINITY {
                    print!("    -   ");
                } else {
                    print!(" {v:>6.3} ");
                }
            }
            println!();
        }
        println!();
    }
    println!(
        "optimal assignment A = {:?}, throughput {:.3}/s",
        trace.assignment, trace.throughput
    );
    println!("(each stage-j entry is the best assignment to the subchain t1..t_j given");
    println!(" the processors of t_j and t_j+1 — the paper's Lemma 1 decomposition)");
}
