//! Reproduce the §6.3 model-accuracy check: "We checked the accuracy of
//! the model by comparing the predicted and actual communication and
//! computation times for a set of mappings and the difference averaged
//! less than 10%."
//!
//! For each application we profile the ground truth with the standard
//! training set, fit the §5 polynomial models, and report the fit error —
//! both averaged uniformly over the whole processor grid (pessimistic:
//! includes extreme corners like a 1→64 transfer) and at the operating
//! points of the optimal mapping (the comparison the paper describes).

use pipemap_apps::{fft_hist, radar, stereo, FftHistConfig, RadarConfig, StereoConfig};
use pipemap_core::{cluster_heuristic, GreedyOptions};
use pipemap_machine::{synthesize_problem, MachineConfig};
use pipemap_profile::training::{fit_problem, model_accuracy};
use pipemap_profile::TrainingConfig;

fn main() {
    println!("Model accuracy: fitted §5 polynomials vs machine-level ground truth\n");
    println!(
        "{:<22} {:<9} | {:>10} {:>10} | {:>14}",
        "app", "comm", "grid mean%", "grid max%", "at mapping, %"
    );
    let configs: Vec<(pipemap_machine::AppWorkload, MachineConfig)> = vec![
        (
            fft_hist(FftHistConfig::n256()),
            MachineConfig::iwarp_message(),
        ),
        (
            fft_hist(FftHistConfig::n256()),
            MachineConfig::iwarp_systolic(),
        ),
        (
            fft_hist(FftHistConfig::n512()),
            MachineConfig::iwarp_message(),
        ),
        (radar(RadarConfig::paper()), MachineConfig::iwarp_systolic()),
        (
            stereo(StereoConfig::paper()),
            MachineConfig::iwarp_systolic(),
        ),
    ];
    for (app, machine) in configs {
        let truth = synthesize_problem(&app, &machine);
        let fitted = fit_problem(&truth, &TrainingConfig::for_procs(truth.total_procs));
        let grid = model_accuracy(&truth.chain, &fitted.chain, truth.total_procs);

        // Error at the operating points of the chosen mapping: compare
        // per-module response times under truth vs fitted model.
        let sol = cluster_heuristic(&fitted, GreedyOptions::adaptive()).expect("mappable");
        let mut sum = 0.0;
        let mut n = 0.0f64;
        for i in 0..sol.mapping.num_modules() {
            let t = pipemap_chain::module_response(&truth.chain, &sol.mapping, i).total();
            let f = pipemap_chain::module_response(&fitted.chain, &sol.mapping, i).total();
            if t > 0.0 {
                sum += ((f - t) / t).abs();
                n += 1.0;
            }
        }
        let at_mapping = 100.0 * sum / n.max(1.0);
        println!(
            "{:<22} {:<9} | {:>10.1} {:>10.1} | {:>14.1}",
            app.name,
            machine.mode.label(),
            100.0 * grid.mean_rel_error,
            100.0 * grid.max_rel_error,
            at_mapping
        );
    }
    println!("\nThe paper's \"<10% average\" claim concerns the operating-point");
    println!("comparison (rightmost column); the uniform grid average includes");
    println!("corners no mapping visits and is naturally higher.");
}
