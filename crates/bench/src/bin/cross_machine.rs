//! Extension experiment: the same program, three machines. §1 lists the
//! Fx compiler's targets (iWarp, Paragon, networks of workstations); the
//! optimal mapping of FFT-Hist changes shape with the machine's
//! compute/communication balance and memory capacity — demonstrating why
//! an *automatic* tool beats a hand mapping carried between machines.

use pipemap_apps::{fft_hist, FftHistConfig};
use pipemap_core::{cluster_heuristic, GreedyOptions};
use pipemap_machine::{synthesize_problem, MachineConfig};
use pipemap_profile::training::fit_problem;
use pipemap_profile::TrainingConfig;
use pipemap_sim::{simulate, SimConfig};
use pipemap_tool::render_mapping;

fn main() {
    println!("Cross-machine study: FFT-Hist 256x256 on three machine models\n");
    let machines: Vec<(MachineConfig, &str)> = vec![
        (MachineConfig::iwarp_message(), "iWarp 8x8 (message)"),
        (MachineConfig::paragon(), "Paragon-like 16x8"),
        (
            MachineConfig::workstation_cluster(8),
            "8 workstations (PVM)",
        ),
    ];
    for (machine, label) in machines {
        let truth = synthesize_problem(&fft_hist(FftHistConfig::n256()), &machine);
        let fitted = fit_problem(&truth, &TrainingConfig::for_procs(truth.total_procs));
        let sol = cluster_heuristic(&fitted, GreedyOptions::adaptive()).expect("mappable");
        let measured = simulate(&truth.chain, &sol.mapping, &SimConfig::with_datasets(300));
        println!("{label} ({} procs):", machine.total_procs());
        println!(
            "  mapping  {}\n  model {:.2}/s, simulated {:.2}/s\n",
            render_mapping(&fitted, &sol.mapping),
            sol.throughput,
            measured.throughput
        );
    }
    println!("Observations: the iWarp's 0.5 MB cells force 3-4 processor");
    println!("instances with heavy replication; the Paragon's 16 MB nodes");
    println!("lift the memory floors (fewer, freer choices, higher absolute");
    println!("rate); and on a workstation cluster the millisecond messages");
    println!("make fusing the whole chain the only sensible structure.");
    println!();
    println!("(The workstation row also shows a known limit of the §5 model:");
    println!(" a redistribution is genuinely free on one processor, but the");
    println!(" polynomial family cannot pass through zero at p = 1 and match");
    println!(" p >= 2, so single-processor-instance mappings are predicted");
    println!(" conservatively; the simulator shows the true, higher rate.)");
}
