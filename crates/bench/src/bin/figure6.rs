//! Regenerate **Figure 6**: the FFT-Hist (256×256, message-passing)
//! optimal mapping laid out on the 8×8 processor array — module 1
//! (colffts) replicated into instances of 3 processors, module 2
//! (rowffts + hist) into instances of 4.

use pipemap_apps::{fft_hist, FftHistConfig};
use pipemap_machine::MachineConfig;
use pipemap_tool::{auto_map, render_mapping, render_placement, MapperOptions};

fn main() {
    let app = fft_hist(FftHistConfig::n256());
    let machine = MachineConfig::iwarp_message();
    let report = auto_map(&app, &machine, &MapperOptions::exact()).expect("mappable");

    println!("Figure 6: FFT-Hist program mapping (256x256, Message)\n");
    println!(
        "mapping: {}\n",
        render_mapping(&report.fitted, report.chosen())
    );
    println!("{}", render_placement(&machine, report.chosen()));
    println!("\n(each letter is one module instance; instances of module 1 hold");
    println!(" 3 processors each, instances of module 2 hold 4 — the paper's");
    println!(" Figure 6 shows the same 8 + 10 instance layout)");
    println!(
        "\npredicted throughput {:.2} data sets/s (paper: 14.60)",
        report.predicted_throughput
    );
}
