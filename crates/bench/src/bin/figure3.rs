//! Regenerate **Figure 3**: replication. Dividing a module's processors
//! into replicated instances processing alternate data sets increases the
//! per-data-set response time but increases throughput — measured here
//! with the pipeline simulator, not just the closed form.

use pipemap_chain::{ChainBuilder, Mapping, ModuleAssignment, Task};
use pipemap_model::PolyUnary;
use pipemap_sim::{simulate, SimConfig};

fn main() {
    // A task with a non-trivial sequential fraction: 1s fixed + 8s
    // parallel work. 8 processors are available to the module.
    let chain = ChainBuilder::new()
        .task(Task::new("work", PolyUnary::new(1.0, 8.0, 0.0)))
        .build();
    println!("Figure 3: replication trades response time for throughput");
    println!("(module of 8 processors split into r instances of 8/r each)\n");
    println!(
        "{:>3} {:>8} {:>12} {:>14} {:>14}",
        "r", "procs", "response/s", "eff resp/s", "sim thr/s"
    );
    for r in [1usize, 2, 4, 8] {
        let procs = 8 / r;
        let mapping = Mapping::new(vec![ModuleAssignment::new(0, 0, r, procs)]);
        let response = pipemap_chain::module_response(&chain, &mapping, 0);
        let sim = simulate(&chain, &mapping, &SimConfig::with_datasets(500));
        println!(
            "{:>3} {:>8} {:>12.3} {:>14.3} {:>14.3}",
            r,
            procs,
            response.total(),
            response.effective(),
            sim.throughput
        );
    }
    println!("\nResponse time per data set rises with r (fewer processors per");
    println!("instance), but the module finishes r data sets concurrently, so");
    println!("throughput rises whenever the task does not scale perfectly.");
}
