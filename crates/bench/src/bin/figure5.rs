//! Regenerate **Figure 5**: the FFT-Hist example program and task graph,
//! with the model characteristics the mapper extracts for each task.

use pipemap_apps::{fft_hist, FftHistConfig};
use pipemap_machine::{synthesize_problem, MachineConfig};

fn main() {
    let config = FftHistConfig::n256();
    let app = fft_hist(config);
    let machine = MachineConfig::iwarp_message();
    let problem = synthesize_problem(&app, &machine);

    println!("Figure 5: FFT-Hist example program and task graph\n");
    println!("  do i = 1, m");
    println!("     call colffts(A)     ! 1D FFTs on the columns");
    println!("     call rowffts(A)     ! 1D FFTs on the rows");
    println!("     call hist(A)        ! statistical analysis + output");
    println!("  end do\n");
    println!("  [input] ──> (colffts) ══transpose══> (rowffts) ──aligned──> (hist) ──> [output]\n");
    for (i, t) in app.tasks.iter().enumerate() {
        let floor = problem.task_floor(i).unwrap();
        println!(
            "  {:<9} par {:>10.0} flops  seq {:>9.0} flops  grain {:>4}  mem floor {} procs  t(1)={:.3}s t(16)={:.3}s",
            t.name,
            t.par_flops,
            t.seq_flops,
            t.grain,
            floor,
            problem.chain.task(i).exec.eval(1),
            problem.chain.task(i).exec.eval(16),
        );
    }
    println!();
    for (e, w) in app.edges.iter().enumerate() {
        println!(
            "  edge {}→{}: {:?} {:>9.0} bytes; icom(8) = {:.4}s, ecom(4,4) = {:.4}s",
            e,
            e + 1,
            w.pattern,
            w.bytes,
            problem.chain.edge(e).icom.eval(8),
            problem.chain.edge(e).ecom.eval(4, 4),
        );
    }
    println!("\n(colffts and rowffts are pure FFT sweeps; the transpose between them");
    println!(" is a full exchange; rowffts and hist share a distribution, so their");
    println!(" edge redistributes nothing when the two are clustered.)");
}
