//! Criterion benches of the mapping algorithms: the `O(P⁴k²)` DP vs the
//! `O(Pk)` greedy across processor counts — the scaling claim that
//! motivates the heuristic (§4: the DP "can be unacceptably high when the
//! number of processors is large, particularly when mapping tasks
//! dynamically").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pipemap_chain::{ChainBuilder, Edge, Problem, Task};
use pipemap_core::{
    best_latency_mapping, cluster_heuristic, dp_assignment, dp_mapping, greedy_assignment,
    min_procs_mapping, GreedyOptions,
};
use pipemap_model::{MemoryReq, PolyEcom, PolyUnary};

/// A deterministic synthetic chain of `k` tasks with non-trivial
/// communication and memory floors.
fn chain(k: usize) -> pipemap_chain::TaskChain {
    let task = |i: usize| {
        Task::new(
            format!("t{i}"),
            PolyUnary::new(0.1 + 0.02 * i as f64, 4.0 + i as f64, 0.01),
        )
        .with_memory(MemoryReq::new(1e3, 40e3 + 10e3 * i as f64))
    };
    let edge = |i: usize| {
        Edge::new(
            PolyUnary::new(0.02, 0.2, 0.0),
            PolyEcom::new(0.05, 0.5 + 0.1 * i as f64, 0.5, 0.01, 0.01),
        )
    };
    let mut b = ChainBuilder::new().task(task(0));
    for i in 1..k {
        b = b.edge(edge(i - 1)).task(task(i));
    }
    b.build()
}

fn problem(k: usize, p: usize) -> Problem {
    Problem::new(chain(k), p, 64e3)
}

fn bench_dp_assignment(c: &mut Criterion) {
    let mut g = c.benchmark_group("dp_assignment");
    for p in [16usize, 32, 64] {
        g.bench_with_input(BenchmarkId::new("P", p), &p, |b, &p| {
            let prob = problem(4, p);
            b.iter(|| dp_assignment(&prob).unwrap());
        });
    }
    g.finish();
}

fn bench_dp_mapping(c: &mut Criterion) {
    let mut g = c.benchmark_group("dp_mapping");
    g.sample_size(10);
    for p in [16usize, 32, 64] {
        g.bench_with_input(BenchmarkId::new("P", p), &p, |b, &p| {
            let prob = problem(4, p);
            b.iter(|| dp_mapping(&prob).unwrap());
        });
    }
    for k in [2usize, 4, 6] {
        g.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            let prob = problem(k, 32);
            b.iter(|| dp_mapping(&prob).unwrap());
        });
    }
    g.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let mut g = c.benchmark_group("greedy");
    for p in [16usize, 64, 256] {
        g.bench_with_input(BenchmarkId::new("assignment/P", p), &p, |b, &p| {
            let prob = problem(4, p);
            b.iter(|| greedy_assignment(&prob, GreedyOptions::paper()).unwrap());
        });
    }
    for p in [16usize, 64, 256] {
        g.bench_with_input(BenchmarkId::new("cluster_heuristic/P", p), &p, |b, &p| {
            let prob = problem(4, p);
            b.iter(|| cluster_heuristic(&prob, GreedyOptions::adaptive()).unwrap());
        });
    }
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    for p in [16usize, 32] {
        g.bench_with_input(BenchmarkId::new("latency_dp/P", p), &p, |b, &p| {
            let prob = problem(4, p);
            let thr = dp_mapping(&prob).unwrap().throughput;
            b.iter(|| best_latency_mapping(&prob, 0.5 * thr).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("min_procs/P", p), &p, |b, &p| {
            let prob = problem(4, p);
            let thr = dp_mapping(&prob).unwrap().throughput;
            b.iter(|| min_procs_mapping(&prob, 0.5 * thr).unwrap());
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_dp_assignment,
    bench_dp_mapping,
    bench_greedy,
    bench_extensions
);
criterion_main!(benches);
