//! Criterion benches of the substrate components: cost-table
//! construction, rectangle packing, model fitting, throughput
//! evaluation, and the pipeline simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pipemap_apps::{fft_hist, FftHistConfig};
use pipemap_chain::{CostTable, Mapping, ModuleAssignment};
use pipemap_machine::{pack_rectangles, synthesize_problem, MachineConfig, PackRequest};
use pipemap_profile::training::{fit_chain, profile_chain, TrainingConfig};
use pipemap_profile::{fit_ecom, fit_unary, FitOptions};
use pipemap_sim::{simulate, SimConfig};

fn bench_cost_table(c: &mut Criterion) {
    let machine = MachineConfig::iwarp_message();
    let problem = synthesize_problem(&fft_hist(FftHistConfig::n256()), &machine);
    c.bench_function("cost_table/fft_hist_256_p64", |b| {
        b.iter(|| CostTable::build(&problem));
    });
}

fn bench_packing(c: &mut Criterion) {
    let mut g = c.benchmark_group("packing");
    // The paper's Table 1 row 1 layout: 8×3 + 10×4 on an 8×8 array.
    g.bench_function("table1_row1", |b| {
        let mut areas = vec![3usize; 8];
        areas.extend(vec![4usize; 10]);
        b.iter(|| pack_rectangles(&PackRequest::new(8, 8, areas.clone())).is_some());
    });
    // An infeasible case must also resolve quickly.
    g.bench_function("infeasible_prime", |b| {
        b.iter(|| pack_rectangles(&PackRequest::new(8, 8, vec![20, 14, 14, 13])).is_none());
    });
    g.finish();
}

fn bench_fitting(c: &mut Criterion) {
    let mut g = c.benchmark_group("fitting");
    let unary: Vec<(usize, f64)> = [1usize, 2, 3, 4, 8, 16, 32, 64]
        .iter()
        .map(|&p| (p, 0.3 + 5.0 / p as f64 + 0.01 * p as f64))
        .collect();
    g.bench_function("fit_unary_8pts", |b| {
        b.iter(|| fit_unary(&unary, FitOptions::default()));
    });
    let ecom: Vec<((usize, usize), f64)> = [
        (1usize, 1usize),
        (2, 2),
        (4, 4),
        (8, 8),
        (16, 16),
        (2, 16),
        (16, 2),
        (4, 8),
        (8, 4),
    ]
    .iter()
    .map(|&(s, r)| ((s, r), 0.1 + 1.0 / s as f64 + 1.5 / r as f64))
    .collect();
    g.bench_function("fit_ecom_9pts", |b| {
        b.iter(|| fit_ecom(&ecom, FitOptions::default()));
    });
    let machine = MachineConfig::iwarp_message();
    let problem = synthesize_problem(&fft_hist(FftHistConfig::n256()), &machine);
    let cfg = TrainingConfig::for_procs(64);
    g.bench_function("profile_and_fit_fft_hist", |b| {
        b.iter(|| {
            let profile = profile_chain(&problem.chain, &cfg);
            fit_chain(&problem.chain, &profile, FitOptions::default())
        });
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let machine = MachineConfig::iwarp_message();
    let problem = synthesize_problem(&fft_hist(FftHistConfig::n256()), &machine);
    // The paper's optimal mapping.
    let mapping = Mapping::new(vec![
        ModuleAssignment::new(0, 0, 8, 3),
        ModuleAssignment::new(1, 2, 10, 4),
    ]);
    let mut g = c.benchmark_group("simulator");
    for n in [200usize, 1000] {
        g.bench_with_input(BenchmarkId::new("datasets", n), &n, |b, &n| {
            let cfg = SimConfig::with_datasets(n);
            b.iter(|| simulate(&problem.chain, &mapping, &cfg));
        });
    }
    g.bench_function("datasets/1000_noisy", |b| {
        let cfg = SimConfig::with_datasets(1000).with_noise(0.05, 42);
        b.iter(|| simulate(&problem.chain, &mapping, &cfg));
    });
    g.finish();
}

fn bench_throughput_eval(c: &mut Criterion) {
    let machine = MachineConfig::iwarp_message();
    let problem = synthesize_problem(&fft_hist(FftHistConfig::n256()), &machine);
    let mapping = Mapping::new(vec![
        ModuleAssignment::new(0, 0, 8, 3),
        ModuleAssignment::new(1, 2, 10, 4),
    ]);
    c.bench_function("throughput_eval/fft_hist", |b| {
        b.iter(|| pipemap_chain::throughput(&problem.chain, &mapping));
    });
}

criterion_group!(
    benches,
    bench_cost_table,
    bench_packing,
    bench_fitting,
    bench_simulator,
    bench_throughput_eval
);
criterion_main!(benches);
