//! Criterion benches of the real data parallel kernels in
//! `pipemap-exec` — the computations the example pipelines actually run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pipemap_exec::kernels::{
    disparity_differences, error_images, fft_cols, fft_inplace, fft_rows, histogram, min_depth,
    Complex, Image, Matrix,
};

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for n in [256usize, 1024, 4096] {
        g.bench_with_input(BenchmarkId::new("1d", n), &n, |b, &n| {
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin(), 0.0))
                .collect();
            b.iter(|| {
                let mut d = data.clone();
                fft_inplace(&mut d);
                d
            });
        });
    }
    g.bench_function("2d_128_rows_then_cols", |b| {
        let m = Matrix::from_fn(128, |r, col| Complex::new((r + col) as f64, 0.0));
        b.iter(|| {
            let mut x = m.clone();
            fft_cols(&mut x, 1);
            fft_rows(&mut x, 1);
            x
        });
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let m = Matrix::from_fn(256, |r, col| {
        Complex::new((r % 16) as f64, (col % 9) as f64)
    });
    let mut g = c.benchmark_group("histogram");
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("256x256/threads", threads),
            &threads,
            |b, &t| {
                b.iter(|| histogram(&m, 64, 512.0, t));
            },
        );
    }
    g.finish();
}

fn bench_stereo(c: &mut Criterion) {
    let reference = Image::from_fn(256, 64, |x, y| ((x * 7 + y * 13) % 251) as u8);
    let other = Image::from_fn(256, 64, |x, y| {
        if x + 3 < 256 {
            reference.pixels[y * 256 + x + 3]
        } else {
            0
        }
    });
    let mut g = c.benchmark_group("stereo");
    g.bench_function("differences_8_disparities", |b| {
        b.iter(|| disparity_differences(&other, &reference, 8, 1));
    });
    let diffs = disparity_differences(&other, &reference, 8, 1);
    g.bench_function("error_images_window1", |b| {
        b.iter(|| error_images(&diffs, 256, 64, 1, 1));
    });
    let errors = error_images(&diffs, 256, 64, 1, 1);
    g.bench_function("min_depth", |b| {
        b.iter(|| min_depth(&errors, 256, 64, 1));
    });
    g.finish();
}

/// Micro-check that the disabled (no-op) recorder adds nothing
/// measurable to a hot kernel loop: the instrumented FFT run must track
/// the bare one. The zero-allocation guarantee itself is asserted by
/// `pipemap-obs`'s `noop_overhead` test; this keeps the wall-clock side
/// visible in the bench report.
fn bench_noop_recorder(c: &mut Criterion) {
    let m = Matrix::from_fn(128, |r, col| Complex::new((r + col) as f64, 0.0));
    let mut g = c.benchmark_group("noop_recorder");
    g.bench_function("fft128_bare", |b| {
        b.iter(|| {
            let mut x = m.clone();
            fft_rows(&mut x, 1);
            x
        });
    });
    g.bench_function("fft128_instrumented_disabled", |b| {
        let rec = pipemap_obs::Recorder::disabled();
        let counter = rec.counter("bench.fft.rows");
        b.iter(|| {
            let mut x = m.clone();
            let _t = rec.timer("bench.fft.wall_s");
            fft_rows(&mut x, 1);
            counter.add(1);
            x
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fft,
    bench_histogram,
    bench_stereo,
    bench_noop_recorder
);
criterion_main!(benches);
