//! Criterion benches of the end-to-end mapping tool (profile → fit → map
//! → feasibility → simulate), greedy path — the cost of one full
//! "automatic mapping" of each paper application, which is what a
//! compile-time tool pays per program.

use criterion::{criterion_group, criterion_main, Criterion};
use pipemap_apps::{fft_hist, radar, stereo, FftHistConfig, RadarConfig, StereoConfig};
use pipemap_machine::MachineConfig;
use pipemap_tool::{auto_map, MapperOptions};

fn greedy_options() -> MapperOptions {
    MapperOptions {
        run_dp: false, // the DP path is benchmarked separately in solvers.rs
        sim_datasets: 200,
        ..MapperOptions::exact()
    }
}

fn bench_auto_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("auto_map_greedy");
    g.sample_size(10);
    g.bench_function("fft_hist_256_message", |b| {
        let app = fft_hist(FftHistConfig::n256());
        let machine = MachineConfig::iwarp_message();
        let opts = greedy_options();
        b.iter(|| auto_map(&app, &machine, &opts).unwrap());
    });
    g.bench_function("radar_systolic", |b| {
        let app = radar(RadarConfig::paper());
        let machine = MachineConfig::iwarp_systolic();
        let opts = greedy_options();
        b.iter(|| auto_map(&app, &machine, &opts).unwrap());
    });
    g.bench_function("stereo_systolic", |b| {
        let app = stereo(StereoConfig::paper());
        let machine = MachineConfig::iwarp_systolic();
        let opts = greedy_options();
        b.iter(|| auto_map(&app, &machine, &opts).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_auto_map);
criterion_main!(benches);
