//! Reusable buffer pool for pipeline payloads.
//!
//! A sustained stream allocates one payload per data set — a matrix, an
//! image, a sample vector — uses it for a few milliseconds, and drops it
//! at the sink. At high rates that alloc/free churn (and the page faults
//! behind it) becomes a measurable fraction of the per-dataset cost. The
//! [`BufferPool`] recycles payloads instead: the source *takes* a
//! [`Lease`] (recycled when available, freshly built otherwise), the
//! lease travels through the pipeline as an ordinary type-erased
//! [`Data`](crate::stage::Data) box, and when the last consumer drops it
//! the payload returns to the pool shelf for the next data set.
//!
//! Leases deref to the payload, so stage functions mutate in place
//! (`|mut m: Lease<Matrix>, t| { fft_rows(&mut m, t); m }`). The pool is
//! type-indexed: one shelf per payload type, each bounded so a burst
//! cannot pin unbounded memory. Takes and returns are counted and
//! published to the observability registry under the
//! [`pipemap_obs::names`] `exec.pool.*` names.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Default bound on recycled payloads kept per type.
pub const DEFAULT_SHELF_CAP: usize = 64;

struct Shelves {
    shelves: Mutex<HashMap<TypeId, Vec<Box<dyn Any + Send>>>>,
    shelf_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    discarded: AtomicU64,
}

/// A typed, bounded, thread-safe recycling pool. Cloning is cheap and
/// shares the shelves.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<Shelves>,
}

/// Counters describing a pool's effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Takes served from a shelf (no allocation).
    pub hits: u64,
    /// Takes that had to build a fresh payload.
    pub misses: u64,
    /// Leases returned to a shelf on drop.
    pub returns: u64,
    /// Leases dropped because their shelf was full.
    pub discarded: u64,
}

impl PoolStats {
    /// Fraction of takes served from a shelf, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new(DEFAULT_SHELF_CAP)
    }
}

impl BufferPool {
    /// A pool keeping at most `shelf_cap` recycled payloads per type.
    pub fn new(shelf_cap: usize) -> Self {
        Self {
            inner: Arc::new(Shelves {
                shelves: Mutex::new(HashMap::new()),
                shelf_cap,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                returns: AtomicU64::new(0),
                discarded: AtomicU64::new(0),
            }),
        }
    }

    /// Take a payload of type `T`: a recycled one when the shelf has
    /// any (the caller must overwrite its contents — recycled payloads
    /// keep their previous values), else a fresh `init()`.
    pub fn take<T: Send + 'static>(&self, init: impl FnOnce() -> T) -> Lease<T> {
        let recycled = {
            let mut shelves = self.inner.shelves.lock().expect("pool lock");
            shelves.get_mut(&TypeId::of::<T>()).and_then(Vec::pop)
        };
        let value = match recycled {
            Some(boxed) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                boxed.downcast::<T>().expect("shelf is type-indexed")
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                Box::new(init())
            }
        };
        Lease {
            value: Some(value),
            pool: Arc::downgrade(&self.inner),
        }
    }

    /// Number of payloads currently shelved (all types).
    pub fn shelved(&self) -> usize {
        self.inner
            .shelves
            .lock()
            .expect("pool lock")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            returns: self.inner.returns.load(Ordering::Relaxed),
            discarded: self.inner.discarded.load(Ordering::Relaxed),
        }
    }

    /// Publish the counters to the global observability registry as the
    /// `exec.pool.*` gauges (no-op when no registry is installed).
    pub fn publish(&self) {
        let rec = pipemap_obs::global();
        let s = self.stats();
        rec.gauge_set(pipemap_obs::names::EXEC_POOL_HITS, s.hits as f64);
        rec.gauge_set(pipemap_obs::names::EXEC_POOL_MISSES, s.misses as f64);
        rec.gauge_set(pipemap_obs::names::EXEC_POOL_SHELVED, self.shelved() as f64);
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "BufferPool(shelved {}, hits {}, misses {})",
            self.shelved(),
            s.hits,
            s.misses
        )
    }
}

/// An exclusive lease on a pooled payload. Derefs to `T`; returning the
/// payload to the pool happens on drop (or is skipped if the pool is
/// gone or the shelf is full — the payload is then simply freed).
pub struct Lease<T: Send + 'static> {
    value: Option<Box<T>>,
    pool: Weak<Shelves>,
}

impl<T: Send + 'static> Lease<T> {
    /// A lease not backed by any pool; dropping it frees the payload.
    /// Useful for code paths that are generic over leased data but run
    /// with pooling disabled.
    pub fn detached(value: T) -> Self {
        Lease {
            value: Some(Box::new(value)),
            pool: Weak::new(),
        }
    }

    /// Take the payload out, detaching it from the pool.
    pub fn into_inner(mut self) -> T {
        *self
            .value
            .take()
            .expect("lease holds a value until dropped")
    }
}

impl<T: Send + 'static> Deref for Lease<T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.value.as_ref().expect("lease holds a value")
    }
}

impl<T: Send + 'static> DerefMut for Lease<T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value.as_mut().expect("lease holds a value")
    }
}

impl<T: Send + 'static> Drop for Lease<T> {
    fn drop(&mut self) {
        let Some(boxed) = self.value.take() else {
            return;
        };
        let Some(pool) = self.pool.upgrade() else {
            return;
        };
        let mut shelves = pool.shelves.lock().expect("pool lock");
        let shelf = shelves.entry(TypeId::of::<T>()).or_default();
        if shelf.len() < pool.shelf_cap {
            shelf.push(boxed as Box<dyn Any + Send>);
            drop(shelves);
            pool.returns.fetch_add(1, Ordering::Relaxed);
        } else {
            drop(shelves);
            pool.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl<T: Send + std::fmt::Debug + 'static> std::fmt::Debug for Lease<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Lease({:?})", self.deref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_miss_then_hit_recycles_the_same_payload() {
        let pool = BufferPool::new(8);
        let mut a = pool.take(|| vec![0u64; 4]);
        a[0] = 7;
        drop(a);
        assert_eq!(pool.shelved(), 1);
        let b = pool.take(|| vec![0u64; 4]);
        // Recycled payloads keep their previous contents.
        assert_eq!(b[0], 7);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.returns), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shelves_are_type_indexed_and_bounded() {
        let pool = BufferPool::new(2);
        drop(pool.take(|| 1u32));
        drop(pool.take(|| String::from("x")));
        assert_eq!(pool.shelved(), 2);
        // Fill the u32 shelf beyond its cap.
        let (a, b, c) = (pool.take(|| 2u32), pool.take(|| 3u32), pool.take(|| 4u32));
        drop(a);
        drop(b);
        drop(c);
        let s = pool.stats();
        assert_eq!(s.discarded, 1, "{s:?}");
        // u32 shelf capped at 2, plus the shelved String.
        assert_eq!(pool.shelved(), 3);
    }

    #[test]
    fn lease_outliving_the_pool_is_fine() {
        let pool = BufferPool::new(4);
        let lease = pool.take(|| vec![1u8; 16]);
        drop(pool);
        assert_eq!(lease.len(), 16);
        drop(lease); // frees instead of returning
    }

    #[test]
    fn detached_and_into_inner() {
        let mut d = Lease::detached(vec![1, 2, 3]);
        d.push(4);
        assert_eq!(d.into_inner(), vec![1, 2, 3, 4]);

        let pool = BufferPool::new(4);
        let lease = pool.take(|| 9i64);
        assert_eq!(lease.into_inner(), 9);
        // into_inner detaches: nothing returned to the shelf.
        assert_eq!(pool.shelved(), 0);
    }

    #[test]
    fn pool_is_shared_across_clones_and_threads() {
        let pool = BufferPool::new(16);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = pool.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        let mut l = p.take(|| vec![0u64; 8]);
                        l[0] += 1;
                    }
                });
            }
        });
        let st = pool.stats();
        assert_eq!(st.hits + st.misses, 200);
        assert!(st.hits > 0, "concurrent takes should recycle: {st:?}");
    }
}
