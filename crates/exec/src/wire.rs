//! Byte-level stage kernels and plans for the out-of-process data plane.
//!
//! The in-process executor passes `Box<dyn Any>` between stages; a
//! worker *process* can only receive bytes. [`WireKernel`] is the small
//! closed set of computations a worker knows how to run directly on
//! encoded payloads: each kernel decodes little-endian bytes into
//! scratch, runs the same kernel functions from [`crate::kernels`], and
//! re-encodes. Because both the in-process and cross-process paths call
//! the same kernels on the same decoded values and encode with
//! `to_le_bytes`, output is bit-identical across transports — the
//! property the UDS tests pin down.
//!
//! [`WirePlan`] is the cross-process analogue of
//! [`crate::PipelinePlan`]: stage kernels, replica and thread counts,
//! and transport tuning (batch, age flush, queue depth). It serializes
//! to a single-line string handed to workers via the
//! `PIPEMAP_WIRE_PLAN` environment variable, and hashes to the value
//! both ends validate during the `HELLO` handshake.

use std::sync::Arc;

use crate::kernels::{fft_cols, fft_rows, histogram, Complex, Matrix};
use crate::stage::Stage;

/// Environment variable carrying the serialized plan to workers.
pub const WIRE_PLAN_ENV: &str = "PIPEMAP_WIRE_PLAN";

/// Multiplier of the `mix` micro-kernel (same constant as the tool's
/// in-process micro workload, so the two planes compute the same
/// function).
pub const MIX_PRIME: u64 = 0x9E37_79B9_7F4A_7C15;

/// Default age-based flush for half-full coalescing buffers (µs),
/// mirroring the in-process transport.
pub const DEFAULT_FLUSH_US: u64 = 200;

/// A computation a worker process can run on encoded payloads.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WireKernel {
    /// `u64` array, each element `x → rotl(x · MIX_PRIME, 13) ^ salt`.
    Mix {
        /// Per-stage salt so consecutive stages differ.
        salt: u64,
    },
    /// FFT of every row of a square complex matrix.
    FftRows,
    /// FFT of every column (transpose · row-FFT · transpose).
    FftCols,
    /// Histogram of squared magnitudes into `bins` buckets over
    /// `[0, max)`; output is the `u64` bin counts.
    Histogram {
        /// Number of buckets.
        bins: u32,
        /// Upper bound of the value range.
        max: f64,
    },
    /// Identity: output bytes equal input bytes (calibration probe).
    Echo,
    /// Identity that abruptly kills the process after `n` items — a
    /// fault-injection kernel for the worker-death tests.
    CrashAfter {
        /// Items to pass through before exiting.
        n: u64,
    },
}

/// Reusable decode/compute buffers so steady-state kernel application
/// allocates nothing.
#[derive(Default)]
pub struct WireScratch {
    words: Vec<u64>,
    matrix: Option<Matrix>,
}

fn decode_words(bytes: &[u8], out: &mut Vec<u64>) -> Result<(), String> {
    if !bytes.len().is_multiple_of(8) {
        return Err(format!(
            "payload length {} not a multiple of 8",
            bytes.len()
        ));
    }
    out.clear();
    out.reserve(bytes.len() / 8);
    for chunk in bytes.chunks_exact(8) {
        out.push(u64::from_le_bytes(chunk.try_into().expect("sized")));
    }
    Ok(())
}

fn encode_words(words: &[u64], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(words.len() * 8);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

fn decode_matrix(bytes: &[u8], slot: &mut Option<Matrix>) -> Result<(), String> {
    if !bytes.len().is_multiple_of(16) {
        return Err(format!(
            "matrix payload length {} not a multiple of 16",
            bytes.len()
        ));
    }
    let elems = bytes.len() / 16;
    let n = (elems as f64).sqrt().round() as usize;
    if n * n != elems {
        return Err(format!("matrix payload of {elems} elements is not square"));
    }
    let m = slot.get_or_insert_with(|| Matrix::zero(n));
    if m.n != n {
        *m = Matrix::zero(n);
    }
    for (i, chunk) in bytes.chunks_exact(16).enumerate() {
        let re = f64::from_le_bytes(chunk[..8].try_into().expect("sized"));
        let im = f64::from_le_bytes(chunk[8..].try_into().expect("sized"));
        m.data[i] = Complex::new(re, im);
    }
    Ok(())
}

fn encode_matrix(m: &Matrix, out: &mut Vec<u8>) {
    out.clear();
    out.reserve(m.data.len() * 16);
    for c in &m.data {
        out.extend_from_slice(&c.re.to_le_bytes());
        out.extend_from_slice(&c.im.to_le_bytes());
    }
}

/// The `mix` transform shared with the tool's micro workload.
pub fn mix_words(words: &mut [u64], salt: u64) {
    for x in words.iter_mut() {
        *x = x.wrapping_mul(MIX_PRIME).rotate_left(13) ^ salt;
    }
}

impl WireKernel {
    /// Run the kernel: decode `input`, compute with `threads`, encode
    /// into `out` (cleared first). `CrashAfter` behaves as `Echo` here —
    /// the *process exit* is the worker loop's job, not the kernel's.
    pub fn apply(
        &self,
        input: &[u8],
        out: &mut Vec<u8>,
        scratch: &mut WireScratch,
        threads: usize,
    ) -> Result<(), String> {
        match *self {
            WireKernel::Mix { salt } => {
                decode_words(input, &mut scratch.words)?;
                mix_words(&mut scratch.words, salt);
                encode_words(&scratch.words, out);
            }
            WireKernel::FftRows => {
                decode_matrix(input, &mut scratch.matrix)?;
                let m = scratch.matrix.as_mut().expect("decoded");
                fft_rows(m, threads);
                encode_matrix(m, out);
            }
            WireKernel::FftCols => {
                decode_matrix(input, &mut scratch.matrix)?;
                let m = scratch.matrix.as_mut().expect("decoded");
                fft_cols(m, threads);
                encode_matrix(m, out);
            }
            WireKernel::Histogram { bins, max } => {
                decode_matrix(input, &mut scratch.matrix)?;
                let m = scratch.matrix.as_ref().expect("decoded");
                let h = histogram(m, bins as usize, max, threads);
                encode_words(&h, out);
            }
            WireKernel::Echo | WireKernel::CrashAfter { .. } => {
                out.clear();
                out.extend_from_slice(input);
            }
        }
        Ok(())
    }

    /// A short display name for stats and stage labels.
    pub fn name(&self) -> String {
        match self {
            WireKernel::Mix { salt } => format!("mix{salt}"),
            WireKernel::FftRows => "rowffts".to_string(),
            WireKernel::FftCols => "colffts".to_string(),
            WireKernel::Histogram { .. } => "histogram".to_string(),
            WireKernel::Echo => "echo".to_string(),
            WireKernel::CrashAfter { .. } => "crash".to_string(),
        }
    }

    /// The same computation as an in-process [`Stage`] over `Vec<u8>`
    /// payloads — the reference the UDS bit-identity property compares
    /// against.
    pub fn stage(&self) -> Stage {
        let k = *self;
        let name: Arc<str> = self.name().into();
        Stage::new::<Vec<u8>, Vec<u8>, _>(name, move |input, threads| {
            let mut scratch = WireScratch::default();
            let mut out = Vec::new();
            k.apply(&input, &mut out, &mut scratch, threads)
                .unwrap_or_else(|e| panic!("wire kernel {k:?}: {e}"));
            out
        })
    }

    fn format(&self) -> String {
        match self {
            WireKernel::Mix { salt } => format!("mix:{salt}"),
            WireKernel::FftRows => "fftrows".to_string(),
            WireKernel::FftCols => "fftcols".to_string(),
            WireKernel::Histogram { bins, max } => {
                format!("hist:{bins}:{}", max.to_bits())
            }
            WireKernel::Echo => "echo".to_string(),
            WireKernel::CrashAfter { n } => format!("crash:{n}"),
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or("");
        let kernel = match head {
            "mix" => WireKernel::Mix {
                salt: parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("bad mix kernel '{s}'"))?,
            },
            "fftrows" => WireKernel::FftRows,
            "fftcols" => WireKernel::FftCols,
            "hist" => {
                let bins = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("bad hist bins in '{s}'"))?;
                let max_bits: u64 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("bad hist max in '{s}'"))?;
                WireKernel::Histogram {
                    bins,
                    max: f64::from_bits(max_bits),
                }
            }
            "echo" => WireKernel::Echo,
            "crash" => WireKernel::CrashAfter {
                n: parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("bad crash kernel '{s}'"))?,
            },
            other => return Err(format!("unknown wire kernel '{other}'")),
        };
        if parts.next().is_some() {
            return Err(format!("trailing fields in kernel '{s}'"));
        }
        Ok(kernel)
    }
}

/// One stage of a wire plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireStagePlan {
    /// The computation.
    pub kernel: WireKernel,
    /// Worker processes running this stage (round-robin by seq).
    pub replicas: usize,
    /// Data-parallel threads inside each worker.
    pub threads: usize,
}

impl WireStagePlan {
    /// A stage plan.
    pub fn new(kernel: WireKernel, replicas: usize, threads: usize) -> Self {
        Self {
            kernel,
            replicas: replicas.max(1),
            threads: threads.max(1),
        }
    }
}

/// A cross-process pipeline plan: what every worker needs to know to
/// play its part, serialized into its environment.
#[derive(Clone, Debug, PartialEq)]
pub struct WirePlan {
    /// The stages, source to sink.
    pub stages: Vec<WireStagePlan>,
    /// Items coalesced per `DATA` frame before an eager flush.
    pub batch: usize,
    /// Age-based flush for partially filled frames (µs).
    pub flush_us: u64,
    /// Bound on queued frames inside each worker.
    pub queue_depth: usize,
    /// Journey sampling: record every `sample`-th data set (0 = off).
    pub journey_sample: u64,
    /// Shared wall-clock epoch (unix µs) so per-process timestamps form
    /// one timeline. The parent picks it just before spawning.
    pub epoch_unix_us: u64,
    /// Telemetry snapshot interval (µs). When nonzero each worker runs
    /// a local registry and ships delta snapshots to the parent over a
    /// dedicated TELEMETRY socket this often; 0 disables the sidecar.
    pub telemetry_us: u64,
}

impl WirePlan {
    /// A plan with transport defaults (batch 32, 200 µs flush, queue
    /// depth 4, journeys off).
    pub fn new(stages: Vec<WireStagePlan>) -> Self {
        Self {
            stages,
            batch: 32,
            flush_us: DEFAULT_FLUSH_US,
            queue_depth: 4,
            journey_sample: 0,
            epoch_unix_us: 0,
            telemetry_us: 0,
        }
    }

    /// Serialize to the single-line form carried in `PIPEMAP_WIRE_PLAN`.
    pub fn serialize(&self) -> String {
        let mut s = format!(
            "v1;batch={};flush_us={};queue={};sample={};epoch={};telem={}",
            self.batch,
            self.flush_us,
            self.queue_depth,
            self.journey_sample,
            self.epoch_unix_us,
            self.telemetry_us
        );
        for st in &self.stages {
            s.push_str(&format!(
                ";stage={}@{}x{}",
                st.kernel.format(),
                st.replicas,
                st.threads
            ));
        }
        s
    }

    /// Parse the serialized form.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut fields = s.split(';');
        if fields.next() != Some("v1") {
            return Err(format!("unknown wire plan version in '{s}'"));
        }
        let mut plan = WirePlan::new(Vec::new());
        for field in fields {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("malformed wire plan field '{field}'"))?;
            let num = |v: &str| -> Result<u64, String> {
                v.parse()
                    .map_err(|_| format!("bad number '{v}' in '{field}'"))
            };
            match key {
                "batch" => plan.batch = num(value)? as usize,
                "flush_us" => plan.flush_us = num(value)?,
                "queue" => plan.queue_depth = num(value)? as usize,
                "sample" => plan.journey_sample = num(value)?,
                "epoch" => plan.epoch_unix_us = num(value)?,
                "telem" => plan.telemetry_us = num(value)?,
                "stage" => {
                    let (kernel, shape) = value
                        .split_once('@')
                        .ok_or_else(|| format!("stage missing shape in '{value}'"))?;
                    let (replicas, threads) = shape
                        .split_once('x')
                        .ok_or_else(|| format!("stage shape not RxT in '{shape}'"))?;
                    plan.stages.push(WireStagePlan::new(
                        WireKernel::parse(kernel)?,
                        num(replicas)? as usize,
                        num(threads)? as usize,
                    ));
                }
                other => return Err(format!("unknown wire plan field '{other}'")),
            }
        }
        if plan.stages.is_empty() {
            return Err("wire plan has no stages".to_string());
        }
        if plan.batch == 0 || plan.queue_depth == 0 {
            return Err("batch and queue depth must be >= 1".to_string());
        }
        Ok(plan)
    }

    /// FNV-1a hash of the serialized plan — the value the `HELLO`
    /// handshake validates so mismatched processes fail fast instead of
    /// mis-parsing each other's frames.
    pub fn hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.serialize().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Stage display names, in order.
    pub fn stage_names(&self) -> Vec<String> {
        self.stages.iter().map(|s| s.kernel.name()).collect()
    }

    /// Replica counts, in order.
    pub fn replicas(&self) -> Vec<usize> {
        self.stages.iter().map(|s| s.replicas).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_round_trips_through_its_env_form() {
        let mut plan = WirePlan::new(vec![
            WireStagePlan::new(WireKernel::Mix { salt: 7 }, 2, 3),
            WireStagePlan::new(WireKernel::FftRows, 1, 2),
            WireStagePlan::new(
                WireKernel::Histogram {
                    bins: 64,
                    max: 123.456,
                },
                4,
                1,
            ),
            WireStagePlan::new(WireKernel::CrashAfter { n: 9 }, 1, 1),
        ]);
        plan.batch = 16;
        plan.flush_us = 500;
        plan.queue_depth = 2;
        plan.journey_sample = 8;
        plan.epoch_unix_us = 1_234_567;
        plan.telemetry_us = 250_000;
        let s = plan.serialize();
        let back = WirePlan::parse(&s).expect("parse");
        assert_eq!(back, plan);
        assert_eq!(back.hash(), plan.hash());
        // Histogram max survives bit-exactly (it travels as bits).
        match back.stages[2].kernel {
            WireKernel::Histogram { max, .. } => assert_eq!(max.to_bits(), 123.456f64.to_bits()),
            other => panic!("wrong kernel {other:?}"),
        }
    }

    #[test]
    fn different_plans_hash_differently() {
        let a = WirePlan::new(vec![WireStagePlan::new(WireKernel::Mix { salt: 1 }, 1, 1)]);
        let b = WirePlan::new(vec![WireStagePlan::new(WireKernel::Mix { salt: 2 }, 1, 1)]);
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(WirePlan::parse("v2;stage=echo@1x1").is_err());
        assert!(WirePlan::parse("v1").is_err(), "no stages");
        assert!(WirePlan::parse("v1;stage=warp@1x1").is_err());
        assert!(WirePlan::parse("v1;batch=0;stage=echo@1x1").is_err());
        assert!(WirePlan::parse("v1;stage=echo").is_err(), "missing shape");
    }

    #[test]
    fn mix_kernel_is_deterministic_and_threadcount_free() {
        let input: Vec<u8> = (0..64u64).flat_map(|x| x.to_le_bytes()).collect();
        let k = WireKernel::Mix { salt: 3 };
        let mut scratch = WireScratch::default();
        let mut a = Vec::new();
        let mut b = Vec::new();
        k.apply(&input, &mut a, &mut scratch, 1).unwrap();
        k.apply(&input, &mut b, &mut scratch, 4).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, input);
    }

    #[test]
    fn fft_kernels_are_threadcount_invariant_at_the_byte_level() {
        // 8x8 matrix of deterministic values.
        let n = 8usize;
        let mut input = Vec::new();
        for i in 0..n * n {
            input.extend_from_slice(&(i as f64).to_le_bytes());
            input.extend_from_slice(&(0.0f64).to_le_bytes());
        }
        for k in [WireKernel::FftRows, WireKernel::FftCols] {
            let mut s1 = WireScratch::default();
            let mut s4 = WireScratch::default();
            let mut a = Vec::new();
            let mut b = Vec::new();
            k.apply(&input, &mut a, &mut s1, 1).unwrap();
            k.apply(&input, &mut b, &mut s4, 4).unwrap();
            assert_eq!(a, b, "{k:?} must not depend on thread count");
        }
    }

    #[test]
    fn histogram_kernel_counts_every_element() {
        let n = 4usize;
        let mut input = Vec::new();
        for i in 0..n * n {
            input.extend_from_slice(&(i as f64 * 0.1).to_le_bytes());
            input.extend_from_slice(&(0.0f64).to_le_bytes());
        }
        let k = WireKernel::Histogram { bins: 8, max: 4.0 };
        let mut scratch = WireScratch::default();
        let mut out = Vec::new();
        k.apply(&input, &mut out, &mut scratch, 2).unwrap();
        let mut total = 0u64;
        for c in out.chunks_exact(8) {
            total += u64::from_le_bytes(c.try_into().unwrap());
        }
        assert_eq!(total, (n * n) as u64);
    }

    #[test]
    fn stage_wrapper_matches_direct_apply() {
        let k = WireKernel::Mix { salt: 11 };
        let input: Vec<u8> = (0..16u64).flat_map(|x| x.to_le_bytes()).collect();
        let mut scratch = WireScratch::default();
        let mut direct = Vec::new();
        k.apply(&input, &mut direct, &mut scratch, 1).unwrap();
        let staged = k.stage().apply(Box::new(input), 1);
        assert_eq!(*staged.downcast::<Vec<u8>>().unwrap(), direct);
    }

    #[test]
    fn bad_payloads_are_errors_not_panics() {
        let mut scratch = WireScratch::default();
        let mut out = Vec::new();
        assert!(WireKernel::Mix { salt: 0 }
            .apply(&[1, 2, 3], &mut out, &mut scratch, 1)
            .is_err());
        assert!(
            WireKernel::FftRows
                .apply(&[0u8; 48], &mut out, &mut scratch, 1)
                .is_err(),
            "3 elements is not square"
        );
    }
}
