//! Framed transport backends for the out-of-process data plane.
//!
//! The in-process executor moves `Box<dyn Any>` payloads through
//! channels; crossing a process boundary instead moves *bytes* through a
//! stream socket. This module defines that wire contract once, behind
//! the [`Transport`] trait, so the engine in [`crate::proc`] is written
//! against an abstract link and the socket machinery stays here:
//!
//! * **length-prefixed frames** — `[u32 len][u8 kind][payload]`, with
//!   `DATA` frames carrying a whole coalesced batch (the batched /
//!   age-flush path of the in-process transport, reused at the frame
//!   level);
//! * **vectored writes** — a `DATA` frame is written as one small header
//!   buffer plus one [`IoSlice`] per item payload, so item bytes are
//!   never copied into a contiguous staging buffer;
//! * **pooled receives** — inbound frames land in
//!   [`BufferPool`]-leased buffers and are parsed in place, so the
//!   deserialize path allocates nothing at steady state.
//!
//! [`UdsLink`] is the Unix-domain-socket backend; [`InProcLink`] moves
//! the same batches through a bounded channel (used to test the engine
//! without sockets, and as the degenerate single-process transport).
//! [`UdsLink::send_data_naive`] is the deliberately unbatched,
//! copy-per-item reference path the bench suite compares against.

use std::io::{self, IoSlice, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use crate::pool::{BufferPool, Lease};

/// Wire protocol version; both ends of a link must agree.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on a single frame, as a sanity check against a corrupt
/// or hostile length prefix (256 MiB).
pub const MAX_FRAME_BYTES: usize = 256 << 20;

/// Per-item header inside a `DATA` frame: `u64` seq + `u32` byte length.
const ITEM_HEADER: usize = 12;

/// Frame type tags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Connection opener: protocol version, plan hash, sender identity.
    Hello = 0,
    /// Handshake acknowledgement.
    Ready = 1,
    /// A coalesced batch of data items.
    Data = 2,
    /// Clean end of stream.
    Eof = 3,
    /// Fatal error, UTF-8 message payload.
    Err = 4,
    /// A worker's delta snapshot (JSON `pipemap-telemetry/v1` payload)
    /// on the dedicated telemetry socket.
    Telemetry = 5,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(FrameKind::Hello),
            1 => Some(FrameKind::Ready),
            2 => Some(FrameKind::Data),
            3 => Some(FrameKind::Eof),
            4 => Some(FrameKind::Err),
            5 => Some(FrameKind::Telemetry),
            _ => None,
        }
    }
}

/// Which backend a link runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// Bounded in-memory channel (single process).
    InProc,
    /// Unix domain socket (crosses processes).
    Uds,
}

impl TransportKind {
    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "inproc" => Some(TransportKind::InProc),
            "uds" => Some(TransportKind::Uds),
            _ => None,
        }
    }

    /// The CLI name.
    pub fn as_str(self) -> &'static str {
        match self {
            TransportKind::InProc => "inproc",
            TransportKind::Uds => "uds",
        }
    }
}

/// One data set on the wire: sequence number plus its encoded payload.
/// The payload rides a [`Lease`] so send-side buffers recycle through
/// the pool once the frame is written.
pub struct WireItem {
    /// Global dataset sequence number (drives round-robin routing and
    /// sink reordering).
    pub seq: u64,
    /// Encoded payload bytes.
    pub payload: Lease<Vec<u8>>,
}

/// Byte/frame/item counters for one link direction pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// `DATA` frames written.
    pub frames_out: u64,
    /// Items carried by those frames.
    pub items_out: u64,
    /// Total bytes written (headers + payloads).
    pub bytes_out: u64,
    /// `DATA` frames read.
    pub frames_in: u64,
    /// Items carried by those frames.
    pub items_in: u64,
    /// Total bytes read (headers + payloads).
    pub bytes_in: u64,
}

impl LinkStats {
    /// Merge another link's counters into this one.
    pub fn merge(&mut self, o: &LinkStats) {
        self.frames_out += o.frames_out;
        self.items_out += o.items_out;
        self.bytes_out += o.bytes_out;
        self.frames_in += o.frames_in;
        self.items_in += o.items_in;
        self.bytes_in += o.bytes_in;
    }
}

/// An inbound `DATA` batch: either a pooled frame buffer parsed in
/// place (UDS) or the items themselves (in-proc).
pub enum DataBatch {
    /// A raw frame payload leased from the receive pool.
    Framed(Lease<Vec<u8>>),
    /// Items moved directly through a channel.
    Direct(Vec<WireItem>),
}

impl std::fmt::Debug for DataBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataBatch::Framed(buf) => write!(f, "DataBatch::Framed({} bytes)", buf.len()),
            DataBatch::Direct(items) => write!(f, "DataBatch::Direct({} items)", items.len()),
        }
    }
}

impl DataBatch {
    /// Number of items in the batch.
    pub fn len(&self) -> usize {
        match self {
            DataBatch::Framed(buf) => {
                u32::from_le_bytes(buf[..4].try_into().expect("frame validated on read")) as usize
            }
            DataBatch::Direct(items) => items.len(),
        }
    }

    /// Whether the batch carries no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visit each `(seq, payload)` in order. Framed batches are parsed
    /// in place — no per-item allocation.
    pub fn for_each(&self, mut f: impl FnMut(u64, &[u8])) {
        match self {
            DataBatch::Framed(buf) => {
                // Layout: [count][count × (seq, len)][concat payloads].
                let count = self.len();
                let mut hdr = 4;
                let mut off = 4 + count * ITEM_HEADER;
                for _ in 0..count {
                    let seq = u64::from_le_bytes(buf[hdr..hdr + 8].try_into().expect("validated"));
                    let len =
                        u32::from_le_bytes(buf[hdr + 8..hdr + 12].try_into().expect("validated"))
                            as usize;
                    hdr += ITEM_HEADER;
                    f(seq, &buf[off..off + len]);
                    off += len;
                }
            }
            DataBatch::Direct(items) => {
                for it in items {
                    f(it.seq, &it.payload);
                }
            }
        }
    }
}

/// A unidirectional-in-spirit link moving coalesced data batches. Both
/// backends also expose the handshake frames (`HELLO`/`READY`) where
/// meaningful; for [`InProcLink`] the handshake is a no-op.
pub trait Transport: Send {
    /// Which backend this is.
    fn kind(&self) -> TransportKind;
    /// Send one coalesced `DATA` frame carrying `items`.
    fn send_data(&mut self, items: Vec<WireItem>) -> io::Result<()>;
    /// Send the end-of-stream marker.
    fn send_eof(&mut self) -> io::Result<()>;
    /// Blocking receive of the next `DATA` batch; `None` after a clean
    /// `EOF`. A peer that disappears without `EOF` is an error.
    fn recv_data(&mut self) -> io::Result<Option<DataBatch>>;
    /// Counters so far.
    fn stats(&self) -> LinkStats;
}

fn proto_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Write `header` then `payloads` with as few syscalls as the kernel
/// allows, never copying payload bytes into a staging buffer. Handles
/// short writes by re-slicing from the current offset.
fn write_all_vectored(w: &mut impl Write, header: &[u8], payloads: &[WireItem]) -> io::Result<()> {
    // Segment cursor: 0 is the header, 1 + i is payload i.
    let total_segments = 1 + payloads.len();
    let seg = |i: usize| -> &[u8] {
        if i == 0 {
            header
        } else {
            &payloads[i - 1].payload
        }
    };
    let mut idx = 0usize;
    let mut off = 0usize;
    let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(total_segments);
    while idx < total_segments {
        // Skip zero-length segments so the first slice is never empty.
        if off >= seg(idx).len() {
            idx += 1;
            off = 0;
            continue;
        }
        slices.clear();
        slices.push(IoSlice::new(&seg(idx)[off..]));
        for i in idx + 1..total_segments {
            slices.push(IoSlice::new(seg(i)));
        }
        let mut n = w.write_vectored(&slices)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "peer stopped accepting frame bytes",
            ));
        }
        while n > 0 && idx < total_segments {
            let rem = seg(idx).len() - off;
            if n >= rem {
                n -= rem;
                idx += 1;
                off = 0;
            } else {
                off += n;
                n = 0;
            }
        }
    }
    Ok(())
}

/// The UDS backend: a framed [`UnixStream`] plus a receive pool.
pub struct UdsLink {
    stream: UnixStream,
    pool: BufferPool,
    /// Reused header staging buffer for outbound frames.
    hdr: Vec<u8>,
    stats: LinkStats,
}

impl UdsLink {
    /// Wrap an accepted or connected stream. Receive buffers lease from
    /// `pool`.
    pub fn new(stream: UnixStream, pool: BufferPool) -> Self {
        Self {
            stream,
            pool,
            hdr: Vec::new(),
            stats: LinkStats::default(),
        }
    }

    /// Connect to `path`, retrying until `timeout` elapses — the peer
    /// may not have bound its listener yet (spawn races are expected and
    /// benign).
    pub fn connect_retry(path: &Path, pool: BufferPool, timeout: Duration) -> io::Result<Self> {
        let deadline = Instant::now() + timeout;
        loop {
            match UnixStream::connect(path) {
                Ok(s) => return Ok(Self::new(s, pool)),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            e.kind(),
                            format!("connect {}: {e}", path.display()),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }

    /// Bound the time any single blocking socket operation may take, so
    /// a wedged peer turns into an error instead of a hang.
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Apply a write timeout only (reads may legitimately idle while
    /// the upstream is quiet; writes blocking forever means a dead or
    /// wedged receiver).
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_write_timeout(timeout)
    }

    fn write_frame_header(&mut self, kind: FrameKind, payload_len: usize) {
        self.hdr.clear();
        let total = 1 + payload_len;
        self.hdr.extend_from_slice(&(total as u32).to_le_bytes());
        self.hdr.push(kind as u8);
    }

    /// Send a control frame with a small contiguous payload.
    fn send_control(&mut self, kind: FrameKind, payload: &[u8]) -> io::Result<()> {
        self.write_frame_header(kind, payload.len());
        self.hdr.extend_from_slice(payload);
        self.stream.write_all(&self.hdr)?;
        self.stats.bytes_out += self.hdr.len() as u64;
        Ok(())
    }

    /// Open the link: announce protocol version, plan hash, and sender
    /// identity.
    pub fn send_hello(&mut self, plan_hash: u64, stage: u32, instance: u32) -> io::Result<()> {
        let mut p = [0u8; 17];
        p[0] = PROTOCOL_VERSION;
        p[1..9].copy_from_slice(&plan_hash.to_le_bytes());
        p[9..13].copy_from_slice(&stage.to_le_bytes());
        p[13..17].copy_from_slice(&instance.to_le_bytes());
        self.send_control(FrameKind::Hello, &p)?;
        self.stream.flush()
    }

    /// Expect a `HELLO`; validate version and plan hash, return the
    /// sender's `(stage, instance)`.
    pub fn recv_hello(&mut self, plan_hash: u64) -> io::Result<(u32, u32)> {
        let frame = self
            .read_frame()?
            .ok_or_else(|| proto_err("peer closed before HELLO"))?;
        let (kind, buf) = frame;
        if kind != FrameKind::Hello {
            return Err(proto_err(format!("expected HELLO, got {kind:?}")));
        }
        if buf.len() != 17 {
            return Err(proto_err("malformed HELLO payload"));
        }
        if buf[0] != PROTOCOL_VERSION {
            return Err(proto_err(format!(
                "protocol version mismatch: ours {PROTOCOL_VERSION}, peer {}",
                buf[0]
            )));
        }
        let hash = u64::from_le_bytes(buf[1..9].try_into().expect("sized"));
        if hash != plan_hash {
            return Err(proto_err(format!(
                "plan hash mismatch: ours {plan_hash:#x}, peer {hash:#x}"
            )));
        }
        let stage = u32::from_le_bytes(buf[9..13].try_into().expect("sized"));
        let instance = u32::from_le_bytes(buf[13..17].try_into().expect("sized"));
        Ok((stage, instance))
    }

    /// Acknowledge a valid `HELLO`.
    pub fn send_ready(&mut self) -> io::Result<()> {
        self.send_control(FrameKind::Ready, &[PROTOCOL_VERSION])?;
        self.stream.flush()
    }

    /// Wait for the peer's `READY`.
    pub fn recv_ready(&mut self) -> io::Result<()> {
        let (kind, _) = self
            .read_frame()?
            .ok_or_else(|| proto_err("peer closed before READY"))?;
        if kind != FrameKind::Ready {
            return Err(proto_err(format!("expected READY, got {kind:?}")));
        }
        Ok(())
    }

    /// Send one telemetry snapshot (the worker side of the sidecar
    /// channel). The payload is an opaque serialized
    /// `pipemap-telemetry/v1` document.
    pub fn send_telemetry(&mut self, payload: &[u8]) -> io::Result<()> {
        self.send_control(FrameKind::Telemetry, payload)?;
        self.stream.flush()
    }

    /// Blocking receive on the telemetry channel: `Some(payload)` per
    /// snapshot, `None` after the worker's clean final `EOF`. A raw
    /// close without `EOF` (the worker died) is an error, so the
    /// parent can mark the series stale instead of wedging.
    pub fn recv_telemetry(&mut self) -> io::Result<Option<Lease<Vec<u8>>>> {
        let Some((kind, buf)) = self.read_frame()? else {
            return Err(proto_err(
                "peer closed without EOF (worker died mid-stream?)",
            ));
        };
        match kind {
            FrameKind::Telemetry => Ok(Some(buf)),
            FrameKind::Eof => Ok(None),
            FrameKind::Err => {
                let msg = String::from_utf8_lossy(&buf).into_owned();
                Err(io::Error::other(format!("peer error: {msg}")))
            }
            other => Err(proto_err(format!(
                "unexpected {other:?} on telemetry channel"
            ))),
        }
    }

    /// The naive reference path: one frame per item, header and payload
    /// copied into a freshly allocated contiguous buffer, one `write`
    /// per item. This is what [`Transport::send_data`]'s coalesced
    /// vectored path is benchmarked against.
    pub fn send_data_naive(&mut self, items: &[WireItem]) -> io::Result<()> {
        for it in items {
            let payload_len = 4 + ITEM_HEADER + it.payload.len();
            let mut buf = Vec::with_capacity(5 + payload_len);
            buf.extend_from_slice(&(1 + payload_len as u32).to_le_bytes());
            buf.push(FrameKind::Data as u8);
            buf.extend_from_slice(&1u32.to_le_bytes());
            buf.extend_from_slice(&it.seq.to_le_bytes());
            buf.extend_from_slice(&(it.payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(&it.payload);
            self.stream.write_all(&buf)?;
            self.stats.frames_out += 1;
            self.stats.items_out += 1;
            self.stats.bytes_out += buf.len() as u64;
        }
        Ok(())
    }

    /// Read one raw frame; `None` on a clean close at a frame boundary.
    fn read_frame(&mut self) -> io::Result<Option<(FrameKind, Lease<Vec<u8>>)>> {
        let mut len4 = [0u8; 4];
        match self.stream.read_exact(&mut len4) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let total = u32::from_le_bytes(len4) as usize;
        if total == 0 || total > MAX_FRAME_BYTES {
            return Err(proto_err(format!("implausible frame length {total}")));
        }
        let mut kind1 = [0u8; 1];
        self.stream.read_exact(&mut kind1)?;
        let kind = FrameKind::from_u8(kind1[0])
            .ok_or_else(|| proto_err(format!("unknown frame kind {}", kind1[0])))?;
        let payload_len = total - 1;
        let mut buf = self.pool.take(Vec::new);
        buf.resize(payload_len, 0);
        self.stream.read_exact(&mut buf)?;
        self.stats.bytes_in += (5 + payload_len) as u64;
        Ok(Some((kind, buf)))
    }

    /// Validate a `DATA` frame's internal structure once, on receipt,
    /// so later in-place parsing can index without bounds anxiety.
    fn validate_data(buf: &[u8]) -> io::Result<usize> {
        if buf.len() < 4 {
            return Err(proto_err("DATA frame shorter than its count"));
        }
        let count = u32::from_le_bytes(buf[..4].try_into().expect("sized")) as usize;
        // All item headers come first, then the concatenated payloads.
        let headers_end = 4usize
            .checked_add(
                count
                    .checked_mul(ITEM_HEADER)
                    .ok_or_else(|| proto_err("DATA frame item count overflows"))?,
            )
            .ok_or_else(|| proto_err("DATA frame item count overflows"))?;
        if headers_end > buf.len() {
            return Err(proto_err("DATA frame truncated in item header"));
        }
        let mut off = headers_end;
        for i in 0..count {
            let hdr = 4 + i * ITEM_HEADER;
            let len =
                u32::from_le_bytes(buf[hdr + 8..hdr + 12].try_into().expect("sized")) as usize;
            if len > buf.len() || off + len > buf.len() {
                return Err(proto_err("DATA frame truncated in item payload"));
            }
            off += len;
        }
        if off != buf.len() {
            return Err(proto_err("DATA frame has trailing bytes"));
        }
        Ok(count)
    }
}

impl Transport for UdsLink {
    fn kind(&self) -> TransportKind {
        TransportKind::Uds
    }

    fn send_data(&mut self, items: Vec<WireItem>) -> io::Result<()> {
        if items.is_empty() {
            return Ok(());
        }
        let payload_bytes: usize = items.iter().map(|i| i.payload.len()).sum();
        let header_payload = 4 + ITEM_HEADER * items.len();
        self.write_frame_header(FrameKind::Data, header_payload + payload_bytes);
        self.hdr
            .extend_from_slice(&(items.len() as u32).to_le_bytes());
        for it in &items {
            self.hdr.extend_from_slice(&it.seq.to_le_bytes());
            self.hdr
                .extend_from_slice(&(it.payload.len() as u32).to_le_bytes());
        }
        let hdr = std::mem::take(&mut self.hdr);
        let res = write_all_vectored(&mut self.stream, &hdr, &items);
        self.hdr = hdr;
        res?;
        self.stats.frames_out += 1;
        self.stats.items_out += items.len() as u64;
        self.stats.bytes_out += (self.hdr.len() + payload_bytes) as u64;
        // Dropping `items` here returns their payload leases to the
        // sender's pool: the send path recycles, end to end.
        Ok(())
    }

    fn send_eof(&mut self) -> io::Result<()> {
        self.send_control(FrameKind::Eof, &[])?;
        self.stream.flush()
    }

    fn recv_data(&mut self) -> io::Result<Option<DataBatch>> {
        let Some((kind, buf)) = self.read_frame()? else {
            return Err(proto_err(
                "peer closed without EOF (worker died mid-stream?)",
            ));
        };
        match kind {
            FrameKind::Data => {
                let count = Self::validate_data(&buf)?;
                self.stats.frames_in += 1;
                self.stats.items_in += count as u64;
                Ok(Some(DataBatch::Framed(buf)))
            }
            FrameKind::Eof => Ok(None),
            FrameKind::Err => {
                let msg = String::from_utf8_lossy(&buf).into_owned();
                Err(io::Error::other(format!("peer error: {msg}")))
            }
            other => Err(proto_err(format!("unexpected {other:?} mid-stream"))),
        }
    }

    fn stats(&self) -> LinkStats {
        self.stats
    }
}

/// Channel message for the in-proc backend.
enum InProcMsg {
    Data(Vec<WireItem>),
    Eof,
}

/// The single-process backend: the same batch semantics over a bounded
/// channel. Useful for engine tests and as the `inproc` transport of
/// the wire plane.
pub struct InProcLink {
    tx: Option<crossbeam::channel::Sender<InProcMsg>>,
    rx: Option<crossbeam::channel::Receiver<InProcMsg>>,
    stats: LinkStats,
}

impl InProcLink {
    /// A connected (sender, receiver) pair over a channel holding at
    /// most `cap` batches.
    pub fn pair(cap: usize) -> (Self, Self) {
        let (tx, rx) = crossbeam::channel::bounded(cap.max(1));
        (
            Self {
                tx: Some(tx),
                rx: None,
                stats: LinkStats::default(),
            },
            Self {
                tx: None,
                rx: Some(rx),
                stats: LinkStats::default(),
            },
        )
    }
}

impl Transport for InProcLink {
    fn kind(&self) -> TransportKind {
        TransportKind::InProc
    }

    fn send_data(&mut self, items: Vec<WireItem>) -> io::Result<()> {
        if items.is_empty() {
            return Ok(());
        }
        let tx = self
            .tx
            .as_ref()
            .ok_or_else(|| proto_err("receive-only in-proc link"))?;
        self.stats.frames_out += 1;
        self.stats.items_out += items.len() as u64;
        self.stats.bytes_out += items
            .iter()
            .map(|i| i.payload.len() as u64 + ITEM_HEADER as u64)
            .sum::<u64>();
        tx.send(InProcMsg::Data(items))
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "receiver hung up"))
    }

    fn send_eof(&mut self) -> io::Result<()> {
        let tx = self
            .tx
            .as_ref()
            .ok_or_else(|| proto_err("receive-only in-proc link"))?;
        tx.send(InProcMsg::Eof)
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "receiver hung up"))
    }

    fn recv_data(&mut self) -> io::Result<Option<DataBatch>> {
        let rx = self
            .rx
            .as_ref()
            .ok_or_else(|| proto_err("send-only in-proc link"))?;
        match rx.recv() {
            Ok(InProcMsg::Data(items)) => {
                self.stats.frames_in += 1;
                self.stats.items_in += items.len() as u64;
                self.stats.bytes_in += items
                    .iter()
                    .map(|i| i.payload.len() as u64 + ITEM_HEADER as u64)
                    .sum::<u64>();
                Ok(Some(DataBatch::Direct(items)))
            }
            Ok(InProcMsg::Eof) => Ok(None),
            Err(_) => Err(proto_err("peer closed without EOF")),
        }
    }

    fn stats(&self) -> LinkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(seq: u64, bytes: &[u8]) -> WireItem {
        WireItem {
            seq,
            payload: Lease::detached(bytes.to_vec()),
        }
    }

    fn uds_pair() -> (UdsLink, UdsLink) {
        let (a, b) = UnixStream::pair().expect("socketpair");
        (
            UdsLink::new(a, BufferPool::new(8)),
            UdsLink::new(b, BufferPool::new(8)),
        )
    }

    #[test]
    fn coalesced_data_round_trips_bit_exactly() {
        let (mut tx, mut rx) = uds_pair();
        let batch = vec![item(3, b"abc"), item(4, b""), item(5, &[7u8; 1000])];
        let writer = std::thread::spawn(move || {
            tx.send_data(batch).unwrap();
            tx.send_eof().unwrap();
            tx
        });
        let got = rx.recv_data().unwrap().expect("one batch");
        let mut seen: Vec<(u64, Vec<u8>)> = Vec::new();
        got.for_each(|seq, bytes| seen.push((seq, bytes.to_vec())));
        assert_eq!(
            seen,
            vec![(3, b"abc".to_vec()), (4, Vec::new()), (5, vec![7u8; 1000])]
        );
        assert!(rx.recv_data().unwrap().is_none(), "clean EOF");
        let tx = writer.join().unwrap();
        assert_eq!(tx.stats().frames_out, 1);
        assert_eq!(tx.stats().items_out, 3);
        assert_eq!(rx.stats().items_in, 3);
    }

    #[test]
    fn naive_and_coalesced_paths_deliver_identical_items() {
        let (mut tx, mut rx) = uds_pair();
        let items: Vec<WireItem> = (0..40)
            .map(|s| item(s, &vec![s as u8; (s as usize * 13) % 257]))
            .collect();
        let expect: Vec<(u64, Vec<u8>)> =
            items.iter().map(|i| (i.seq, i.payload.clone())).collect();
        let writer = std::thread::spawn(move || {
            tx.send_data_naive(&items).unwrap();
            tx.send_eof().unwrap();
        });
        let mut seen: Vec<(u64, Vec<u8>)> = Vec::new();
        while let Some(b) = rx.recv_data().unwrap() {
            b.for_each(|seq, bytes| seen.push((seq, bytes.to_vec())));
        }
        writer.join().unwrap();
        assert_eq!(seen, expect);
        // Naive framing: one frame per item.
        assert_eq!(rx.stats().frames_in, 40);
    }

    #[test]
    fn handshake_validates_version_and_plan_hash() {
        let (mut a, mut b) = uds_pair();
        let t = std::thread::spawn(move || {
            a.send_hello(0xfeed, 2, 1).unwrap();
            a.recv_ready().unwrap();
            a
        });
        let (stage, inst) = b.recv_hello(0xfeed).unwrap();
        assert_eq!((stage, inst), (2, 1));
        b.send_ready().unwrap();
        t.join().unwrap();

        // Mismatched hash is rejected.
        let (mut a, mut b) = uds_pair();
        let t = std::thread::spawn(move || {
            let _ = a.send_hello(0xdead, 0, 0);
        });
        let err = b.recv_hello(0xbeef).unwrap_err();
        assert!(err.to_string().contains("plan hash mismatch"), "{err}");
        t.join().unwrap();
    }

    #[test]
    fn telemetry_frames_round_trip_and_close_semantics_hold() {
        let (mut tx, mut rx) = uds_pair();
        let writer = std::thread::spawn(move || {
            tx.send_telemetry(br#"{"schema":"pipemap-telemetry/v1","pid":1,"seq":1}"#)
                .unwrap();
            tx.send_telemetry(b"second").unwrap();
            tx.send_eof().unwrap();
        });
        let first = rx.recv_telemetry().unwrap().expect("first snapshot");
        assert!(first.starts_with(br#"{"schema""#));
        let second = rx.recv_telemetry().unwrap().expect("second snapshot");
        assert_eq!(&second[..], b"second");
        assert!(rx.recv_telemetry().unwrap().is_none(), "clean EOF");
        writer.join().unwrap();

        // A worker that dies without EOF surfaces as an error, not a hang.
        let (tx, mut rx) = uds_pair();
        drop(tx);
        let err = rx.recv_telemetry().unwrap_err();
        assert!(err.to_string().contains("without EOF"), "{err}");

        // A telemetry frame on a data channel is a protocol error.
        let (mut tx, mut rx) = uds_pair();
        let writer = std::thread::spawn(move || {
            tx.send_telemetry(b"x").unwrap();
        });
        let err = rx.recv_data().unwrap_err();
        assert!(err.to_string().contains("Telemetry"), "{err}");
        writer.join().unwrap();
    }

    #[test]
    fn close_without_eof_is_an_error_not_a_hang() {
        let (tx, mut rx) = uds_pair();
        drop(tx);
        let err = rx.recv_data().unwrap_err();
        assert!(err.to_string().contains("without EOF"), "{err}");
    }

    #[test]
    fn receive_buffers_recycle_through_the_pool() {
        let (a, b) = UnixStream::pair().unwrap();
        let pool = BufferPool::new(8);
        let mut tx = UdsLink::new(a, BufferPool::new(8));
        let mut rx = UdsLink::new(b, pool.clone());
        let writer = std::thread::spawn(move || {
            for round in 0..10u64 {
                tx.send_data(vec![item(round, &[1u8; 256])]).unwrap();
            }
            tx.send_eof().unwrap();
        });
        let mut batches = 0;
        while let Some(b) = rx.recv_data().unwrap() {
            assert_eq!(b.len(), 1);
            batches += 1;
            // The leased frame buffer drops here and returns to the pool.
        }
        writer.join().unwrap();
        assert_eq!(batches, 10);
        let stats = pool.stats();
        assert!(
            stats.hits >= 8,
            "steady-state receive should be allocation-free: {stats:?}"
        );
    }

    #[test]
    fn in_proc_pair_matches_the_framed_semantics() {
        let (mut tx, mut rx) = InProcLink::pair(4);
        tx.send_data(vec![item(0, b"x"), item(1, b"yy")]).unwrap();
        tx.send_eof().unwrap();
        let b = rx.recv_data().unwrap().expect("batch");
        assert_eq!(b.len(), 2);
        let mut seqs = Vec::new();
        b.for_each(|s, _| seqs.push(s));
        assert_eq!(seqs, vec![0, 1]);
        assert!(rx.recv_data().unwrap().is_none());
    }

    #[test]
    fn vectored_write_handles_many_segments() {
        // Enough payload segments to exceed typical IOV_MAX batching in
        // one call; the loop must still deliver every byte in order.
        let (mut tx, mut rx) = uds_pair();
        let items: Vec<WireItem> = (0..2000).map(|s| item(s, &[s as u8; 3])).collect();
        let writer = std::thread::spawn(move || {
            tx.send_data(items).unwrap();
            tx.send_eof().unwrap();
        });
        let b = rx.recv_data().unwrap().expect("batch");
        assert_eq!(b.len(), 2000);
        let mut ok = true;
        b.for_each(|seq, bytes| ok &= bytes == [seq as u8; 3]);
        assert!(ok);
        writer.join().unwrap();
    }
}
