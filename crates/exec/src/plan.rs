//! Build an executable [`PipelinePlan`] from a solver [`Mapping`].
//!
//! The mapper reasons about *processors on the model machine*; the
//! executor spends *threads on this machine*. [`plan_from_mapping`]
//! carries the mapping's structure over: one pipeline stage per module
//! (the caller provides one fused stage function per module, since
//! clustering means the member tasks run back-to-back in one address
//! space), the module's replication degree verbatim, and its processor
//! count rescaled into a thread budget.

use pipemap_chain::Mapping;

use crate::executor::{PipelinePlan, StagePlan};
use crate::stage::Stage;

/// Options for translating processor counts into thread counts.
#[derive(Clone, Copy, Debug)]
pub struct ThreadBudget {
    /// Threads available on the executing machine.
    pub total_threads: usize,
    /// Processors the mapping was computed for.
    pub model_procs: usize,
}

impl ThreadBudget {
    /// Scale a module's per-instance processor count into threads,
    /// rounding to at least 1.
    pub fn threads_for(&self, procs: usize) -> usize {
        if self.model_procs == 0 {
            return 1;
        }
        let scaled = (procs * self.total_threads).div_ceil(self.model_procs);
        scaled.max(1)
    }
}

/// Build a pipeline plan mirroring `mapping`: `stages[i]` is the fused
/// computation of module `i`'s member tasks.
///
/// # Panics
///
/// Panics if `stages.len() != mapping.num_modules()`.
pub fn plan_from_mapping(
    mapping: &Mapping,
    stages: Vec<Stage>,
    budget: ThreadBudget,
) -> PipelinePlan {
    assert_eq!(
        stages.len(),
        mapping.num_modules(),
        "one stage function per module"
    );
    let plans = mapping
        .modules
        .iter()
        .zip(stages)
        .map(|(m, stage)| StagePlan::new(stage, m.replicas, budget.threads_for(m.procs)))
        .collect();
    PipelinePlan::new(plans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::run_pipeline;
    use crate::stage::Data;
    use pipemap_chain::ModuleAssignment;

    #[test]
    fn thread_budget_scales_and_rounds_up() {
        let b = ThreadBudget {
            total_threads: 8,
            model_procs: 64,
        };
        assert_eq!(b.threads_for(3), 1); // 3/64 of 8 rounds up to 1
        assert_eq!(b.threads_for(16), 2);
        assert_eq!(b.threads_for(64), 8);
        let degenerate = ThreadBudget {
            total_threads: 8,
            model_procs: 0,
        };
        assert_eq!(degenerate.threads_for(5), 1);
    }

    #[test]
    fn plan_mirrors_mapping_structure() {
        let mapping = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 8, 3),
            ModuleAssignment::new(1, 2, 10, 4),
        ]);
        let stages = vec![
            Stage::new("colffts", |x: u32, _| x + 1),
            Stage::new("rowffts+hist", |x: u32, _| x * 2),
        ];
        let plan = plan_from_mapping(
            &mapping,
            stages,
            ThreadBudget {
                total_threads: 16,
                model_procs: 64,
            },
        );
        assert_eq!(plan.stages.len(), 2);
        assert_eq!(plan.stages[0].replicas, 8);
        assert_eq!(plan.stages[1].replicas, 10);
        assert_eq!(plan.stages[0].threads, 1);
        assert_eq!(plan.stages[1].threads, 1);
    }

    #[test]
    fn plan_executes() {
        let mapping = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 2, 2),
            ModuleAssignment::new(1, 1, 3, 2),
        ]);
        let plan = plan_from_mapping(
            &mapping,
            vec![
                Stage::new("inc", |x: u32, _| x + 1),
                Stage::new("dbl", |x: u32, _| x * 2),
            ],
            ThreadBudget {
                total_threads: 4,
                model_procs: 10,
            },
        );
        let inputs: Vec<Data> = (0..20u32).map(|i| Box::new(i) as Data).collect();
        let (out, stats) = run_pipeline(&plan, inputs);
        assert_eq!(stats.datasets, 20);
        let values: Vec<u32> = out
            .into_iter()
            .map(|d| *d.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(values, (0..20u32).map(|i| (i + 1) * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "one stage function per module")]
    fn stage_count_checked() {
        let mapping = Mapping::new(vec![ModuleAssignment::new(0, 1, 1, 4)]);
        let _ = plan_from_mapping(
            &mapping,
            vec![],
            ThreadBudget {
                total_threads: 4,
                model_procs: 4,
            },
        );
    }
}
