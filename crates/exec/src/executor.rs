//! The threaded pipeline executor.
//!
//! Wiring: one dispatcher thread per stage boundary is avoided — instead
//! each module *instance* owns a bounded input channel, and the upstream
//! instance sends data set `n` directly to downstream instance
//! `n mod r_next` (the §2.2 round-robin). The sink reorders completed
//! data sets by sequence number. Bounded channels provide the
//! backpressure that makes the bottleneck module govern throughput, as in
//! the paper's execution model.

use std::time::Instant;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use pipemap_obs::TraceEvent;

use crate::stage::{Data, Stage};

/// One stage of a pipeline plan: the computation plus its mapping.
#[derive(Clone, Debug)]
pub struct StagePlan {
    /// The computation.
    pub stage: Stage,
    /// Number of replicated instances (§2.2's `r`).
    pub replicas: usize,
    /// Worker threads per instance (the instance's processor count).
    pub threads: usize,
}

impl StagePlan {
    /// A plan entry with one instance and one thread.
    pub fn serial(stage: Stage) -> Self {
        Self {
            stage,
            replicas: 1,
            threads: 1,
        }
    }

    /// A plan entry with explicit replication and threads.
    pub fn new(stage: Stage, replicas: usize, threads: usize) -> Self {
        assert!(replicas >= 1 && threads >= 1);
        Self {
            stage,
            replicas,
            threads,
        }
    }
}

/// A full pipeline plan.
#[derive(Clone, Debug)]
pub struct PipelinePlan {
    /// Stages in chain order.
    pub stages: Vec<StagePlan>,
    /// Capacity of each instance's input queue (≥ 1). Small values mimic
    /// the rendezvous of the paper's model; larger values decouple
    /// stages.
    pub queue_depth: usize,
}

impl PipelinePlan {
    /// A plan with queue depth 1 (closest to the paper's rendezvous
    /// semantics).
    pub fn new(stages: Vec<StagePlan>) -> Self {
        assert!(!stages.is_empty());
        Self {
            stages,
            queue_depth: 1,
        }
    }

    /// Set the queue depth.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1);
        self.queue_depth = depth;
        self
    }
}

/// Timing breakdown of one module instance's worker thread. The three
/// accounted intervals tile the thread's lifetime (up to loop
/// bookkeeping of a few microseconds per data set):
/// `recv_wait + busy + send_wait ≈ lifetime`.
#[derive(Clone, Copy, Debug)]
pub struct InstanceStats {
    /// Stage index in the plan.
    pub stage: usize,
    /// Instance index within the stage.
    pub instance: usize,
    /// Seconds blocked waiting for input (upstream too slow).
    pub recv_wait: f64,
    /// Seconds inside the stage function (service time).
    pub busy: f64,
    /// Seconds blocked pushing output (downstream backpressure).
    pub send_wait: f64,
    /// Seconds from worker start to worker exit.
    pub lifetime: f64,
}

/// Execution statistics of one pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineStats {
    /// Data sets processed.
    pub datasets: usize,
    /// Wall-clock seconds from first send to last completion.
    pub elapsed: f64,
    /// Measured throughput (data sets per second).
    pub throughput: f64,
    /// Busy seconds per stage (summed over instances).
    pub busy: Vec<f64>,
    /// Seconds blocked on input per stage (summed over instances).
    pub recv_wait: Vec<f64>,
    /// Seconds blocked on output per stage (summed over instances).
    pub send_wait: Vec<f64>,
    /// Fraction of stage capacity spent computing:
    /// `busy / (replicas × elapsed)`, in `[0, 1]`.
    pub utilization: Vec<f64>,
    /// Per-instance breakdowns, ordered by (stage, instance).
    pub instances: Vec<InstanceStats>,
}

/// Run `inputs` through the pipeline and return the outputs (in input
/// order) plus statistics.
///
/// # Panics
///
/// Panics if a stage function panics (the panic is propagated) or the
/// plan is empty.
pub fn run_pipeline(plan: &PipelinePlan, inputs: Vec<Data>) -> (Vec<Data>, PipelineStats) {
    let n_stages = plan.stages.len();
    let n_data = inputs.len();
    let instance_stats: Mutex<Vec<InstanceStats>> = Mutex::new(Vec::new());

    // Observability: metrics always flow to the global recorder (no-op
    // when none is installed); per-activity trace events only when the
    // installed registry has tracing enabled. Each instance gets its own
    // trace lane so Perfetto shows one row per worker thread.
    let rec = pipemap_obs::global();
    let tracing = rec.tracing();
    let lanes: Vec<Vec<u64>> = plan
        .stages
        .iter()
        .enumerate()
        .map(|(si, sp)| {
            (0..sp.replicas)
                .map(|ii| match (tracing, pipemap_obs::global_registry()) {
                    (true, Some(reg)) => {
                        reg.register_lane(format!("stage{si}.{}.{ii}", sp.stage.name))
                    }
                    _ => 0,
                })
                .collect()
        })
        .collect();

    // Channels: input channels for every instance of every stage, plus a
    // sink channel. Messages carry (sequence, data).
    type Msg = (usize, Data);
    let mut senders: Vec<Vec<Sender<Msg>>> = Vec::with_capacity(n_stages);
    let mut receivers: Vec<Vec<Receiver<Msg>>> = Vec::with_capacity(n_stages);
    for sp in &plan.stages {
        let mut ss = Vec::with_capacity(sp.replicas);
        let mut rs = Vec::with_capacity(sp.replicas);
        for _ in 0..sp.replicas {
            let (s, r) = bounded::<Msg>(plan.queue_depth);
            ss.push(s);
            rs.push(r);
        }
        senders.push(ss);
        receivers.push(rs);
    }
    let (sink_s, sink_r) = bounded::<Msg>(n_data.max(1));

    let start = Instant::now();
    let outputs: Vec<Option<Data>> = std::thread::scope(|scope| {
        // Instance workers.
        for (si, sp) in plan.stages.iter().enumerate() {
            for (ii, rx_src) in receivers[si].iter().take(sp.replicas).enumerate() {
                let rx = rx_src.clone();
                let next: Option<Vec<Sender<Msg>>> = senders.get(si + 1).cloned();
                let sink = sink_s.clone();
                let stage = sp.stage.clone();
                let threads = sp.threads;
                let stats_out = &instance_stats;
                let rec = rec.clone();
                let lane = lanes[si][ii];
                scope.spawn(move || {
                    let service_hist =
                        rec.histogram(&format!("exec.stage{si}.{}.service_s", stage.name));
                    // Monotonic per-stage counters (µs) — the flight
                    // recorder derives live busy/wait rates (and hence
                    // utilization) from their deltas.
                    let recv_ctr = rec.counter(&format!("exec.stage{si}.recv_wait_us"));
                    let busy_ctr = rec.counter(&format!("exec.stage{si}.busy_us"));
                    let send_ctr = rec.counter(&format!("exec.stage{si}.send_wait_us"));
                    let born = Instant::now();
                    let mut recv_wait = 0.0f64;
                    let mut busy = 0.0f64;
                    let mut send_wait = 0.0f64;
                    loop {
                        let t_recv = Instant::now();
                        let msg = rx.recv();
                        let waited = t_recv.elapsed().as_secs_f64();
                        recv_wait += waited;
                        recv_ctr.add((waited * 1e6) as u64);
                        let Ok((seq, data)) = msg else { break };
                        if tracing && waited > 0.0 {
                            let now = rec.now_us();
                            rec.event(TraceEvent {
                                name: "recv".into(),
                                cat: "recv".into(),
                                lane,
                                ts_us: now - waited * 1e6,
                                dur_us: waited * 1e6,
                                args: vec![("seq".into(), (seq as u64).into())],
                            });
                        }
                        let t_exec = Instant::now();
                        let out = stage.apply(data, threads);
                        let service = t_exec.elapsed().as_secs_f64();
                        busy += service;
                        service_hist.record(service);
                        busy_ctr.add((service * 1e6) as u64);
                        if tracing {
                            let now = rec.now_us();
                            rec.event(TraceEvent {
                                name: stage.name.clone(),
                                cat: "exec".into(),
                                lane,
                                ts_us: now - service * 1e6,
                                dur_us: service * 1e6,
                                args: vec![("seq".into(), (seq as u64).into())],
                            });
                        }
                        let t_send = Instant::now();
                        match &next {
                            Some(next_senders) => {
                                let target = seq % next_senders.len();
                                next_senders[target]
                                    .send((seq, out))
                                    .expect("downstream instance hung up");
                            }
                            None => {
                                sink.send((seq, out)).expect("sink hung up");
                            }
                        }
                        let blocked = t_send.elapsed().as_secs_f64();
                        send_wait += blocked;
                        send_ctr.add((blocked * 1e6) as u64);
                        if tracing && blocked > 0.0 {
                            let now = rec.now_us();
                            rec.event(TraceEvent {
                                name: "send".into(),
                                cat: "send".into(),
                                lane,
                                ts_us: now - blocked * 1e6,
                                dur_us: blocked * 1e6,
                                args: vec![("seq".into(), (seq as u64).into())],
                            });
                        }
                    }
                    stats_out.lock().push(InstanceStats {
                        stage: si,
                        instance: ii,
                        recv_wait,
                        busy,
                        send_wait,
                        lifetime: born.elapsed().as_secs_f64(),
                    });
                });
            }
        }
        // Close our copies so workers see disconnects once sources drain.
        drop(sink_s);
        let first = senders[0].clone();
        drop(senders);
        drop(receivers);

        // Feed inputs round-robin into the first stage's instances.
        scope.spawn(move || {
            for (seq, data) in inputs.into_iter().enumerate() {
                let target = seq % first.len();
                first[target].send((seq, data)).expect("stage 0 hung up");
            }
            // Dropping `first` closes stage 0's queues; disconnect
            // cascades down the chain as workers finish.
        });

        // Collect and reorder.
        let done_ctr = pipemap_obs::global().counter("exec.datasets.completed");
        let mut out: Vec<Option<Data>> = (0..n_data).map(|_| None).collect();
        for _ in 0..n_data {
            let (seq, data) = sink_r.recv().expect("pipeline dropped a data set");
            done_ctr.add(1);
            out[seq] = Some(data);
        }
        out
    });
    let elapsed = start.elapsed().as_secs_f64();

    let mut instances = instance_stats.into_inner();
    instances.sort_by_key(|i| (i.stage, i.instance));
    let per_stage = |f: fn(&InstanceStats) -> f64| -> Vec<f64> {
        let mut v = vec![0.0; n_stages];
        for i in &instances {
            v[i.stage] += f(i);
        }
        v
    };
    let busy = per_stage(|i| i.busy);
    let recv_wait = per_stage(|i| i.recv_wait);
    let send_wait = per_stage(|i| i.send_wait);
    let utilization: Vec<f64> = plan
        .stages
        .iter()
        .enumerate()
        .map(|(si, sp)| {
            if elapsed > 0.0 {
                busy[si] / (sp.replicas as f64 * elapsed)
            } else {
                0.0
            }
        })
        .collect();

    let stats = PipelineStats {
        datasets: n_data,
        elapsed,
        throughput: if elapsed > 0.0 {
            n_data as f64 / elapsed
        } else {
            f64::INFINITY
        },
        busy,
        recv_wait,
        send_wait,
        utilization,
        instances,
    };
    let outputs = outputs
        .into_iter()
        .map(|o| o.expect("every sequence number must arrive"))
        .collect();
    (outputs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn unwrap_all<T: 'static>(data: Vec<Data>) -> Vec<T> {
        data.into_iter()
            .map(|d| *d.downcast::<T>().expect("output type"))
            .collect()
    }

    #[test]
    fn identity_pipeline_preserves_order() {
        let plan = PipelinePlan::new(vec![StagePlan::serial(Stage::new("id", |x: usize, _| x))]);
        let inputs: Vec<Data> = (0..50usize).map(|i| Box::new(i) as Data).collect();
        let (out, stats) = run_pipeline(&plan, inputs);
        assert_eq!(unwrap_all::<usize>(out), (0..50).collect::<Vec<_>>());
        assert_eq!(stats.datasets, 50);
    }

    #[test]
    fn replicated_stage_preserves_order() {
        let plan = PipelinePlan::new(vec![
            StagePlan::new(Stage::new("slow", |x: usize, _| x * 3), 4, 1),
            StagePlan::new(Stage::new("plus", |x: usize, _| x + 1), 3, 1),
        ]);
        let inputs: Vec<Data> = (0..100usize).map(|i| Box::new(i) as Data).collect();
        let (out, _) = run_pipeline(&plan, inputs);
        let got = unwrap_all::<usize>(out);
        assert_eq!(got, (0..100).map(|i| i * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn replication_increases_throughput_of_a_slow_stage() {
        let slow = |x: usize, _t: usize| {
            std::thread::sleep(Duration::from_millis(4));
            x
        };
        let n = 40usize;
        let inputs = || (0..n).map(|i| Box::new(i) as Data).collect::<Vec<_>>();
        let single = PipelinePlan::new(vec![StagePlan::new(Stage::new("s", slow), 1, 1)]);
        let quad = PipelinePlan::new(vec![StagePlan::new(Stage::new("s", slow), 4, 1)]);
        let (_, st1) = run_pipeline(&single, inputs());
        let (_, st4) = run_pipeline(&quad, inputs());
        assert!(
            st4.throughput > 2.0 * st1.throughput,
            "4-way replication should at least double throughput: {} vs {}",
            st4.throughput,
            st1.throughput
        );
    }

    #[test]
    fn pipelining_overlaps_stages() {
        // Two stages of 3 ms each: serial would take ~6 ms per data set;
        // pipelined steady state is ~3 ms.
        let mk = || {
            Stage::new("sleep", |x: usize, _| {
                std::thread::sleep(Duration::from_millis(3));
                x
            })
        };
        let plan = PipelinePlan::new(vec![StagePlan::serial(mk()), StagePlan::serial(mk())]);
        let n = 30usize;
        let inputs: Vec<Data> = (0..n).map(|i| Box::new(i) as Data).collect();
        let (_, stats) = run_pipeline(&plan, inputs);
        // Allow generous scheduling slack; the serial time would be
        // 6 ms × 30 = 180 ms, pipelined ≈ 3 ms × 31 ≈ 93 ms.
        assert!(
            stats.elapsed < 0.160,
            "expected pipelining overlap, elapsed {:.3}s",
            stats.elapsed
        );
    }

    #[test]
    fn busy_time_accounted_per_stage() {
        let plan = PipelinePlan::new(vec![
            StagePlan::serial(Stage::new("a", |x: usize, _| {
                std::thread::sleep(Duration::from_millis(2));
                x
            })),
            StagePlan::serial(Stage::new("b", |x: usize, _| x)),
        ]);
        let inputs: Vec<Data> = (0..20usize).map(|i| Box::new(i) as Data).collect();
        let (_, stats) = run_pipeline(&plan, inputs);
        assert!(stats.busy[0] > stats.busy[1]);
        assert!(stats.busy[0] >= 0.020);
    }

    #[test]
    fn empty_input_is_fine() {
        let plan = PipelinePlan::new(vec![StagePlan::serial(Stage::new("id", |x: usize, _| x))]);
        let (out, stats) = run_pipeline(&plan, vec![]);
        assert!(out.is_empty());
        assert_eq!(stats.datasets, 0);
    }

    #[test]
    fn instance_accounting_tiles_lifetime() {
        // Stage 0 is the bottleneck: stage 1 should accumulate recv_wait,
        // stage 0 send_wait (queue depth 1 gives backpressure).
        let plan = PipelinePlan::new(vec![
            StagePlan::serial(Stage::new("slow", |x: usize, _| {
                std::thread::sleep(Duration::from_millis(3));
                x
            })),
            StagePlan::serial(Stage::new("fast", |x: usize, _| x)),
        ]);
        let inputs: Vec<Data> = (0..20usize).map(|i| Box::new(i) as Data).collect();
        let (_, stats) = run_pipeline(&plan, inputs);

        assert_eq!(stats.instances.len(), 2);
        for inst in &stats.instances {
            let accounted = inst.recv_wait + inst.busy + inst.send_wait;
            assert!(
                accounted <= inst.lifetime + 1e-6,
                "stage {} accounted {accounted} > lifetime {}",
                inst.stage,
                inst.lifetime
            );
            // Loop bookkeeping between the timed sections is microseconds
            // per data set; allow 20% slack plus a constant for very short
            // runs.
            assert!(
                accounted >= 0.8 * inst.lifetime - 2e-3,
                "stage {} accounted {accounted} ≪ lifetime {}",
                inst.stage,
                inst.lifetime
            );
        }
        for (si, u) in stats.utilization.iter().enumerate() {
            assert!((0.0..=1.0).contains(u), "stage {si} utilization {u}");
        }
        // The stage downstream of the bottleneck starves on input.
        assert!(
            stats.recv_wait[1] > stats.recv_wait[0],
            "downstream recv_wait {:?}",
            stats.recv_wait
        );
        assert!(stats.utilization[0] > stats.utilization[1]);
    }

    #[test]
    fn per_stage_sums_match_instances() {
        let plan = PipelinePlan::new(vec![StagePlan::new(
            Stage::new("work", |x: usize, _| {
                std::thread::sleep(Duration::from_millis(1));
                x
            }),
            3,
            1,
        )]);
        let inputs: Vec<Data> = (0..30usize).map(|i| Box::new(i) as Data).collect();
        let (_, stats) = run_pipeline(&plan, inputs);
        assert_eq!(stats.instances.len(), 3);
        let busy_sum: f64 = stats.instances.iter().map(|i| i.busy).sum();
        assert!((busy_sum - stats.busy[0]).abs() < 1e-9);
        let recv_sum: f64 = stats.instances.iter().map(|i| i.recv_wait).sum();
        assert!((recv_sum - stats.recv_wait[0]).abs() < 1e-9);
        // Instances are sorted by (stage, instance).
        let order: Vec<usize> = stats.instances.iter().map(|i| i.instance).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn heterogeneous_stage_types_flow() {
        let plan = PipelinePlan::new(vec![
            StagePlan::new(Stage::new("stringify", |x: usize, _| x.to_string()), 2, 1),
            StagePlan::new(Stage::new("len", |s: String, _| s.len()), 2, 1),
        ]);
        let inputs: Vec<Data> = vec![Box::new(5usize), Box::new(123usize), Box::new(42usize)];
        let (out, _) = run_pipeline(&plan, inputs);
        assert_eq!(unwrap_all::<usize>(out), vec![1, 3, 2]);
    }
}
