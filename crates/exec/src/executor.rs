//! The threaded pipeline executor.
//!
//! Wiring: one dispatcher thread per stage boundary is avoided — instead
//! each module *instance* owns a bounded input channel, and the upstream
//! instance sends data set `n` directly to downstream instance
//! `n mod r_next` (the §2.2 round-robin). The sink reorders completed
//! data sets by sequence number. Bounded channels provide the
//! backpressure that makes the bottleneck module govern throughput, as in
//! the paper's execution model.
//!
//! # Data plane
//!
//! Messages carry *batches*: up to [`PipelinePlan::batch`] data sets per
//! channel message, grouped per destination instance so the round-robin
//! assignment (data set `n` → instance `n mod r`) is untouched — batching
//! only changes how many data sets ride in one message, never which
//! instance serves them. A batch is flushed when it is full, when its
//! oldest item has waited [`PipelinePlan::flush_us`] microseconds, and
//! always before a worker blocks on input or exits — so batching never
//! holds a data set hostage behind an idle stage. `batch == 1` is the
//! unbatched reference data plane (one message per data set, the
//! pre-batching executor), kept for A/B measurement in `pipemap bench`.
//!
//! Per-instance statistics are accumulated thread-locally and handed back
//! through the scoped-thread join (no shared lock on the data path).

use std::mem;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use pipemap_obs::{
    Counter, EventKind, EventLog, JourneyCollector, JourneyKind, JourneySink, ObsEvent, Recorder,
    Severity, SloConfig, TraceEvent,
};

use crate::stage::{Data, Stage};

/// Default latency bound on buffered batch items (microseconds).
pub const DEFAULT_FLUSH_US: u64 = 200;

/// A single send blocking at least this long (seconds) marks the sender
/// as backpressured; a send blocking under half of it clears the state
/// (hysteresis, so a boundary-hovering sender cannot flap events).
const BACKPRESSURE_ONSET_S: f64 = 1e-3;

/// One stage of a pipeline plan: the computation plus its mapping.
#[derive(Clone, Debug)]
pub struct StagePlan {
    /// The computation.
    pub stage: Stage,
    /// Number of replicated instances (§2.2's `r`).
    pub replicas: usize,
    /// Worker threads per instance (the instance's processor count).
    pub threads: usize,
}

impl StagePlan {
    /// A plan entry with one instance and one thread.
    pub fn serial(stage: Stage) -> Self {
        Self {
            stage,
            replicas: 1,
            threads: 1,
        }
    }

    /// A plan entry with explicit replication and threads.
    pub fn new(stage: Stage, replicas: usize, threads: usize) -> Self {
        assert!(replicas >= 1 && threads >= 1);
        Self {
            stage,
            replicas,
            threads,
        }
    }
}

/// A full pipeline plan.
#[derive(Clone, Debug)]
pub struct PipelinePlan {
    /// Stages in chain order.
    pub stages: Vec<StagePlan>,
    /// Capacity of each instance's input queue in *messages* (≥ 1; each
    /// message carries up to [`batch`](Self::batch) data sets). Small
    /// values mimic the rendezvous of the paper's model; larger values
    /// decouple stages.
    pub queue_depth: usize,
    /// Maximum data sets per channel message (≥ 1). `1` is the unbatched
    /// reference data plane; larger values amortize per-message channel
    /// overhead across the batch on high-rate streams.
    pub batch: usize,
    /// Latency bound: a buffered item is force-flushed once it has
    /// waited this many microseconds, even if its batch is not full.
    pub flush_us: u64,
    /// Per-dataset journey tracing: when set, every worker records
    /// enqueue/dequeue/service/send events for sampled data sets into
    /// this collector (see [`pipemap_obs::journey`]).
    pub journeys: Option<JourneyCollector>,
    /// Structured-event emission: when set, senders emit
    /// `backpressure_onset`/`backpressure_end` events (with hysteresis)
    /// as downstream queues fill and drain, and the load driver runs the
    /// latency-SLO [`AlertEngine`](pipemap_obs::AlertEngine) when
    /// [`slo`](Self::slo) is also set.
    pub events: Option<EventLog>,
    /// Latency-SLO objective evaluated by
    /// [`run_load`](crate::driver::run_load); requires
    /// [`events`](Self::events) for the alerts to land anywhere.
    pub slo: Option<SloConfig>,
}

impl PipelinePlan {
    /// A plan with queue depth 1 and unbatched transport (closest to the
    /// paper's rendezvous semantics).
    pub fn new(stages: Vec<StagePlan>) -> Self {
        assert!(!stages.is_empty());
        Self {
            stages,
            queue_depth: 1,
            batch: 1,
            flush_us: DEFAULT_FLUSH_US,
            journeys: None,
            events: None,
            slo: None,
        }
    }

    /// Set the queue depth.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1);
        self.queue_depth = depth;
        self
    }

    /// Set the transport batch size (data sets per channel message).
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch >= 1);
        self.batch = batch;
        self
    }

    /// Set the batch latency bound in microseconds.
    pub fn with_flush_us(mut self, flush_us: u64) -> Self {
        self.flush_us = flush_us;
        self
    }

    /// Attach a journey collector (see [`Self::journeys`]).
    pub fn with_journeys(mut self, journeys: JourneyCollector) -> Self {
        self.journeys = Some(journeys);
        self
    }

    /// Attach an event log (see [`Self::events`]).
    pub fn with_events(mut self, events: EventLog) -> Self {
        self.events = Some(events);
        self
    }

    /// Evaluate a latency SLO during load runs (see [`Self::slo`]).
    pub fn with_slo(mut self, slo: SloConfig) -> Self {
        self.slo = Some(slo);
        self
    }
}

/// Timing breakdown of one module instance's worker thread. The three
/// accounted intervals tile the thread's lifetime (up to loop
/// bookkeeping of a few microseconds per data set):
/// `recv_wait + busy + send_wait ≈ lifetime`.
#[derive(Clone, Copy, Debug)]
pub struct InstanceStats {
    /// Stage index in the plan.
    pub stage: usize,
    /// Instance index within the stage.
    pub instance: usize,
    /// Seconds blocked waiting for input (upstream too slow).
    pub recv_wait: f64,
    /// Seconds inside the stage function (service time).
    pub busy: f64,
    /// Seconds blocked pushing output (downstream backpressure).
    pub send_wait: f64,
    /// Seconds from worker start to worker exit.
    pub lifetime: f64,
}

/// Execution statistics of one pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineStats {
    /// Data sets completed at the sink.
    pub datasets: usize,
    /// Data sets fed by the source (equals `datasets` when the pipeline
    /// drained fully).
    pub generated: usize,
    /// Wall-clock seconds from first send to last completion.
    pub elapsed: f64,
    /// Measured throughput (data sets per second).
    pub throughput: f64,
    /// Busy seconds per stage (summed over instances).
    pub busy: Vec<f64>,
    /// Seconds blocked on input per stage (summed over instances).
    pub recv_wait: Vec<f64>,
    /// Seconds blocked on output per stage (summed over instances).
    pub send_wait: Vec<f64>,
    /// Fraction of stage capacity spent computing:
    /// `busy / (replicas × elapsed)`, in `[0, 1]`.
    pub utilization: Vec<f64>,
    /// Seconds the source spent blocked on stage-0 backpressure.
    pub source_wait: f64,
    /// Channel messages sent (source + every stage boundary).
    pub messages: u64,
    /// Data sets carried inside those messages.
    pub message_items: u64,
    /// Per-instance breakdowns, ordered by (stage, instance).
    pub instances: Vec<InstanceStats>,
}

impl PipelineStats {
    /// Mean data sets per channel message (1.0 on the unbatched path).
    pub fn mean_batch_fill(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.message_items as f64 / self.messages as f64
        }
    }
}

/// One in-flight data set: its global sequence number, the instant it
/// entered the pipeline (for end-to-end latency), and the payload.
pub(crate) struct Item {
    pub(crate) seq: usize,
    pub(crate) born: Instant,
    pub(crate) data: Data,
}

type Batch = Vec<Item>;

/// Batching output side shared by the source and every worker: one
/// buffer per destination instance, flushed when full, aged past the
/// latency bound, or explicitly (before blocking / at exit).
struct TxSet {
    targets: Vec<Sender<Batch>>,
    bufs: Vec<Batch>,
    /// When `bufs[t]` went non-empty; only consulted when `batch > 1`.
    since: Vec<Instant>,
    batch: usize,
    flush: Duration,
    send_wait: f64,
    messages: u64,
    items: u64,
    msg_ctr: Counter,
    item_ctr: Counter,
    wait_ctr: Counter,
    /// Journey tracing: stamps `Enqueue` events (destination stage,
    /// replica, batch identity) as batches flush. `dest_stage` is `None`
    /// when the targets are the sink channel (no enqueue recorded).
    journey: Option<JourneySink>,
    dest_stage: Option<u32>,
    /// Structured backpressure events; `src_stage` is `None` for the
    /// source feeder.
    events: Option<EventLog>,
    src_stage: Option<u32>,
    bp_active: bool,
}

impl TxSet {
    #[allow(clippy::too_many_arguments)]
    fn new(
        targets: Vec<Sender<Batch>>,
        batch: usize,
        flush: Duration,
        rec: &Recorder,
        wait_ctr: Counter,
        journey: Option<JourneySink>,
        dest_stage: Option<u32>,
        events: Option<EventLog>,
        src_stage: Option<u32>,
    ) -> Self {
        let now = Instant::now();
        Self {
            bufs: targets.iter().map(|_| Vec::with_capacity(batch)).collect(),
            since: vec![now; targets.len()],
            targets,
            batch,
            flush,
            send_wait: 0.0,
            messages: 0,
            items: 0,
            msg_ctr: rec.counter(pipemap_obs::names::EXEC_BATCH_MESSAGES),
            item_ctr: rec.counter(pipemap_obs::names::EXEC_BATCH_ITEMS),
            wait_ctr,
            journey,
            dest_stage,
            events,
            src_stage,
            bp_active: false,
        }
    }

    /// Track the backpressure state machine after a send that blocked
    /// for `blocked` seconds: one onset event when a send first blocks
    /// past [`BACKPRESSURE_ONSET_S`], one end event once sends flow
    /// freely again (half-threshold hysteresis in between).
    /// Event-message name for this sender.
    fn who(&self) -> String {
        match self.src_stage {
            Some(s) => format!("stage {s}"),
            None => "source".to_string(),
        }
    }

    fn note_blocked(&mut self, blocked: f64) {
        let Some(log) = self.events.as_ref() else {
            return;
        };
        // Both arms are state *transitions*, so the formatting below is
        // off the steady-state path — most calls return right here.
        if !self.bp_active && blocked >= BACKPRESSURE_ONSET_S {
            self.bp_active = true;
            log.emit(ObsEvent {
                t_us: log.now_us(),
                kind: EventKind::BackpressureOnset,
                severity: Severity::Warning,
                stage: self.src_stage,
                value: blocked,
                message: format!("{} blocked {:.1} ms on send", self.who(), blocked * 1e3),
            });
        } else if self.bp_active && blocked < BACKPRESSURE_ONSET_S * 0.5 {
            self.bp_active = false;
            log.emit(ObsEvent {
                t_us: log.now_us(),
                kind: EventKind::BackpressureEnd,
                severity: Severity::Info,
                stage: self.src_stage,
                value: blocked,
                message: format!("{} sends flowing again", self.who()),
            });
        }
    }

    /// Route `item` to its round-robin destination; flushes the
    /// destination's buffer when full or aged.
    ///
    /// # Panics
    ///
    /// Panics if the destination hung up (its worker panicked).
    fn push(&mut self, item: Item) {
        let t = item.seq % self.targets.len();
        if self.batch > 1 && self.bufs[t].is_empty() {
            self.since[t] = Instant::now();
        }
        self.bufs[t].push(item);
        if self.bufs[t].len() >= self.batch
            || (self.batch > 1 && self.since[t].elapsed() >= self.flush)
        {
            self.flush_target(t);
        }
    }

    fn flush_target(&mut self, t: usize) {
        if self.bufs[t].is_empty() {
            return;
        }
        let out = mem::replace(&mut self.bufs[t], Vec::with_capacity(self.batch));
        let n = out.len() as u64;
        if let (Some(j), Some(stage)) = (self.journey.as_mut(), self.dest_stage) {
            // Timestamp taken before the (possibly blocking) send, so a
            // receiver that dequeues promptly still observes
            // `enqueue ≤ dequeue`; queue wait therefore includes any
            // backpressure block at the queue door.
            if out.iter().any(|i| j.sampled(i.seq)) {
                let batch_id = if out.len() > 1 { j.next_batch() } else { 0 };
                let t_us = j.now_us();
                for item in &out {
                    j.record_at(
                        t_us,
                        JourneyKind::Enqueue,
                        item.seq,
                        stage,
                        t as u32,
                        batch_id,
                    );
                }
            }
        }
        let t0 = Instant::now();
        self.targets[t]
            .send(out)
            .expect("downstream instance hung up");
        let blocked = t0.elapsed().as_secs_f64();
        self.send_wait += blocked;
        self.wait_ctr.add((blocked * 1e6) as u64);
        self.note_blocked(blocked);
        self.messages += 1;
        self.items += n;
        self.msg_ctr.add(1);
        self.item_ctr.add(n);
    }

    /// Flush buffers whose oldest item exceeded the latency bound.
    fn flush_aged(&mut self) {
        if self.batch == 1 {
            return;
        }
        for t in 0..self.bufs.len() {
            if !self.bufs[t].is_empty() && self.since[t].elapsed() >= self.flush {
                self.flush_target(t);
            }
        }
    }

    fn flush_all(&mut self) {
        for t in 0..self.bufs.len() {
            self.flush_target(t);
        }
    }
}

/// Handle the source closure uses to push data sets into stage 0 of a
/// running pipeline (see [`execute`]); batching, sequence numbering, and
/// round-robin distribution are applied here.
pub struct Feeder {
    tx: TxSet,
    seq: usize,
    journey: Option<JourneySink>,
}

/// Source-side totals collected when the feeder finishes.
struct FeederTotals {
    pushed: usize,
    send_wait: f64,
    messages: u64,
    items: u64,
}

impl Feeder {
    /// Push one data set; blocks when stage 0 exerts backpressure.
    pub fn push(&mut self, data: Data) {
        if let Some(j) = self.journey.as_mut() {
            j.record(JourneyKind::Source, self.seq, 0, 0, 0);
        }
        let item = Item {
            seq: self.seq,
            born: Instant::now(),
            data,
        };
        self.seq += 1;
        self.tx.push(item);
    }

    /// Flush aged partial batches. Call before pacing sleeps so a
    /// rate-limited source never holds items past the latency bound.
    pub fn flush(&mut self) {
        self.tx.flush_aged();
    }

    /// Data sets pushed so far.
    pub fn pushed(&self) -> usize {
        self.seq
    }

    fn finish(mut self) -> FeederTotals {
        self.tx.flush_all();
        FeederTotals {
            pushed: self.seq,
            send_wait: self.tx.send_wait,
            messages: self.tx.messages,
            items: self.tx.items,
        }
    }
}

/// Per-worker context handed to [`worker_loop`].
struct WorkerCtx<'a> {
    rx: Receiver<Batch>,
    tx: TxSet,
    stage: &'a Stage,
    threads: usize,
    si: usize,
    ii: usize,
    lane: u64,
    rec: Recorder,
    tracing: bool,
    journey: Option<JourneySink>,
}

fn worker_loop(mut ctx: WorkerCtx<'_>) -> (InstanceStats, u64, u64) {
    // Hoisted per-instance handles: metric names are formatted once and
    // the stage name is cloned per trace event only when tracing is on —
    // the untraced hot path does no per-message allocation.
    let service_hist = ctx.rec.histogram(&format!(
        "exec.stage{}.{}.service_s",
        ctx.si, &*ctx.stage.name
    ));
    let recv_ctr = ctx
        .rec
        .counter(&format!("exec.stage{}.recv_wait_us", ctx.si));
    let busy_ctr = ctx.rec.counter(&format!("exec.stage{}.busy_us", ctx.si));
    let trace_name: String = ctx.stage.name.to_string();
    let born = Instant::now();
    let mut recv_wait = 0.0f64;
    let mut busy = 0.0f64;
    loop {
        // Fast path: input already queued — no clock reads for the wait.
        let batch = match ctx.rx.try_recv() {
            Some(b) => b,
            None => {
                // Latency rule: never hold buffered output while blocked
                // on input.
                ctx.tx.flush_all();
                let t_recv = Instant::now();
                match ctx.rx.recv() {
                    Ok(b) => {
                        let waited = t_recv.elapsed().as_secs_f64();
                        recv_wait += waited;
                        recv_ctr.add((waited * 1e6) as u64);
                        if ctx.tracing && waited > 0.0 {
                            let now = ctx.rec.now_us();
                            ctx.rec.event(TraceEvent {
                                name: "recv".into(),
                                cat: "recv".into(),
                                lane: ctx.lane,
                                ts_us: now - waited * 1e6,
                                dur_us: waited * 1e6,
                                args: vec![(
                                    "seq".into(),
                                    (b.first().map_or(0, |i| i.seq) as u64).into(),
                                )],
                            });
                        }
                        b
                    }
                    Err(_) => break,
                }
            }
        };
        for item in batch {
            if let Some(j) = ctx.journey.as_mut() {
                // Dequeue is stamped when the worker *picks the item up*,
                // not at batch arrival: an item waiting behind batchmates
                // in the same message is still queued, so that wait lands
                // in the queue component. Transfer itself is a pointer
                // move here, so Dequeue and ServiceStart share one clock
                // read and the transport component is ~0 — unlike the
                // simulators, whose modelled transfers occupy the
                // instance for real time. The sampling check comes first:
                // unsampled items must not pay for the clock read, which
                // is a real syscall on containers without a vDSO clock.
                if j.sampled(item.seq) {
                    let t_us = j.now_us();
                    j.record_at(
                        t_us,
                        JourneyKind::Dequeue,
                        item.seq,
                        ctx.si as u32,
                        ctx.ii as u32,
                        0,
                    );
                    j.record_at(
                        t_us,
                        JourneyKind::ServiceStart,
                        item.seq,
                        ctx.si as u32,
                        ctx.ii as u32,
                        0,
                    );
                }
            }
            let t_exec = Instant::now();
            let out = ctx.stage.apply(item.data, ctx.threads);
            let service = t_exec.elapsed().as_secs_f64();
            busy += service;
            service_hist.record(service);
            busy_ctr.add((service * 1e6) as u64);
            if ctx.tracing {
                let now = ctx.rec.now_us();
                ctx.rec.event(TraceEvent {
                    name: trace_name.clone(),
                    cat: "exec".into(),
                    lane: ctx.lane,
                    ts_us: now - service * 1e6,
                    dur_us: service * 1e6,
                    args: vec![("seq".into(), (item.seq as u64).into())],
                });
            }
            if let Some(j) = ctx.journey.as_mut() {
                if j.sampled(item.seq) {
                    let t_us = j.now_us();
                    j.record_at(
                        t_us,
                        JourneyKind::ServiceEnd,
                        item.seq,
                        ctx.si as u32,
                        ctx.ii as u32,
                        0,
                    );
                    j.record_at(
                        t_us,
                        JourneyKind::Send,
                        item.seq,
                        ctx.si as u32,
                        ctx.ii as u32,
                        0,
                    );
                }
            }
            ctx.tx.push(Item {
                seq: item.seq,
                born: item.born,
                data: out,
            });
        }
    }
    ctx.tx.flush_all();
    let stats = InstanceStats {
        stage: ctx.si,
        instance: ctx.ii,
        recv_wait,
        busy,
        send_wait: ctx.tx.send_wait,
        lifetime: born.elapsed().as_secs_f64(),
    };
    (stats, ctx.tx.messages, ctx.tx.items)
}

/// Run the pipeline with a source closure feeding data sets and a sink
/// closure consuming completed items (called on the caller's thread, in
/// arrival order — *not* sequence order). Shared engine behind
/// [`run_pipeline`] and [`run_load`](crate::driver::run_load).
///
/// # Panics
///
/// Panics if a stage function panics (the panic is propagated) or the
/// plan is empty.
pub(crate) fn execute(
    plan: &PipelinePlan,
    sink_cap: usize,
    feed: impl FnOnce(&mut Feeder) + Send,
    mut on_item: impl FnMut(Item),
) -> PipelineStats {
    let n_stages = plan.stages.len();
    assert!(n_stages > 0, "empty pipeline plan");
    let batch = plan.batch.max(1);
    let flush = Duration::from_micros(plan.flush_us);

    // Observability: metrics always flow to the global recorder (no-op
    // when none is installed); per-activity trace events only when the
    // installed registry has tracing enabled. Each instance gets its own
    // trace lane so Perfetto shows one row per worker thread.
    let rec = pipemap_obs::global();
    let tracing = rec.tracing();
    let lanes: Vec<Vec<u64>> = plan
        .stages
        .iter()
        .enumerate()
        .map(|(si, sp)| {
            (0..sp.replicas)
                .map(|ii| match (tracing, pipemap_obs::global_registry()) {
                    (true, Some(reg)) => {
                        reg.register_lane(format!("stage{si}.{}.{ii}", &*sp.stage.name))
                    }
                    _ => 0,
                })
                .collect()
        })
        .collect();

    // Channels: input channels for every instance of every stage, plus a
    // sink channel. Messages carry batches of (sequence, data) items.
    let mut senders: Vec<Vec<Sender<Batch>>> = Vec::with_capacity(n_stages);
    let mut receivers: Vec<Vec<Receiver<Batch>>> = Vec::with_capacity(n_stages);
    for sp in &plan.stages {
        let mut ss = Vec::with_capacity(sp.replicas);
        let mut rs = Vec::with_capacity(sp.replicas);
        for _ in 0..sp.replicas {
            let (s, r) = bounded::<Batch>(plan.queue_depth);
            ss.push(s);
            rs.push(r);
        }
        senders.push(ss);
        receivers.push(rs);
    }
    let (sink_s, sink_r) = bounded::<Batch>(sink_cap.max(1));

    let start = Instant::now();
    let (results, feeder_totals, completed) = std::thread::scope(|scope| {
        // Instance workers; stats come back through the join handles.
        let mut worker_handles = Vec::new();
        for (si, sp) in plan.stages.iter().enumerate() {
            for (ii, rx_src) in receivers[si].iter().take(sp.replicas).enumerate() {
                let rx = rx_src.clone();
                let targets: Vec<Sender<Batch>> = match senders.get(si + 1) {
                    Some(next) => next.clone(),
                    None => vec![sink_s.clone()],
                };
                let stage = &sp.stage;
                let threads = sp.threads;
                let rec = rec.clone();
                let lane = lanes[si][ii];
                let journeys = plan.journeys.as_ref();
                let events = plan.events.clone();
                let dest_stage = (si + 1 < n_stages).then(|| (si + 1) as u32);
                worker_handles.push(scope.spawn(move || {
                    let send_ctr = rec.counter(&format!("exec.stage{si}.send_wait_us"));
                    let tx = TxSet::new(
                        targets,
                        batch,
                        flush,
                        &rec,
                        send_ctr,
                        journeys.map(JourneyCollector::sink),
                        dest_stage,
                        events,
                        Some(si as u32),
                    );
                    worker_loop(WorkerCtx {
                        rx,
                        tx,
                        stage,
                        threads,
                        si,
                        ii,
                        lane,
                        rec,
                        tracing,
                        journey: journeys.map(JourneyCollector::sink),
                    })
                }));
            }
        }
        // Close our copies so workers see disconnects once sources drain.
        drop(sink_s);
        let first = senders[0].clone();
        drop(senders);
        drop(receivers);

        // Source thread: run the feed closure, then flush and hang up —
        // the disconnect cascades down the chain as workers finish.
        let feeder_rec = rec.clone();
        let feeder_journeys = plan.journeys.as_ref();
        let feeder_events = plan.events.clone();
        let feeder_handle = scope.spawn(move || {
            let send_ctr = feeder_rec.counter("exec.source.send_wait_us");
            let mut feeder = Feeder {
                tx: TxSet::new(
                    first,
                    batch,
                    flush,
                    &feeder_rec,
                    send_ctr,
                    feeder_journeys.map(JourneyCollector::sink),
                    Some(0),
                    feeder_events,
                    None,
                ),
                seq: 0,
                journey: feeder_journeys.map(JourneyCollector::sink),
            };
            feed(&mut feeder);
            feeder.finish()
        });

        // Sink: drain until every last-stage worker hangs up.
        let done_ctr = rec.counter("exec.datasets.completed");
        let mut completed = 0usize;
        while let Ok(items) = sink_r.recv() {
            for item in items {
                done_ctr.add(1);
                completed += 1;
                on_item(item);
            }
        }
        fn join<T>(h: std::thread::ScopedJoinHandle<'_, T>) -> T {
            match h.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            }
        }
        let feeder_totals = join(feeder_handle);
        let results: Vec<(InstanceStats, u64, u64)> =
            worker_handles.into_iter().map(join).collect();
        (results, feeder_totals, completed)
    });
    let elapsed = start.elapsed().as_secs_f64();

    let mut messages = feeder_totals.messages;
    let mut message_items = feeder_totals.items;
    let mut instances = Vec::with_capacity(results.len());
    for (stats, msgs, items) in results {
        messages += msgs;
        message_items += items;
        instances.push(stats);
    }
    instances.sort_by_key(|i| (i.stage, i.instance));
    let per_stage = |f: fn(&InstanceStats) -> f64| -> Vec<f64> {
        let mut v = vec![0.0; n_stages];
        for i in &instances {
            v[i.stage] += f(i);
        }
        v
    };
    let busy = per_stage(|i| i.busy);
    let recv_wait = per_stage(|i| i.recv_wait);
    let send_wait = per_stage(|i| i.send_wait);
    let utilization: Vec<f64> = plan
        .stages
        .iter()
        .enumerate()
        .map(|(si, sp)| {
            if elapsed > 0.0 {
                busy[si] / (sp.replicas as f64 * elapsed)
            } else {
                0.0
            }
        })
        .collect();

    PipelineStats {
        datasets: completed,
        generated: feeder_totals.pushed,
        elapsed,
        throughput: if elapsed > 0.0 {
            completed as f64 / elapsed
        } else {
            f64::INFINITY
        },
        busy,
        recv_wait,
        send_wait,
        utilization,
        source_wait: feeder_totals.send_wait,
        messages,
        message_items,
        instances,
    }
}

/// Run `inputs` through the pipeline and return the outputs (in input
/// order) plus statistics.
///
/// # Panics
///
/// Panics if a stage function panics (the panic is propagated) or the
/// plan is empty.
pub fn run_pipeline(plan: &PipelinePlan, inputs: Vec<Data>) -> (Vec<Data>, PipelineStats) {
    let n_data = inputs.len();
    let mut out: Vec<Option<Data>> = (0..n_data).map(|_| None).collect();
    let mut jsink = plan.journeys.as_ref().map(JourneyCollector::sink);
    let sink_stage = plan.stages.len() as u32;
    let stats = execute(
        plan,
        n_data.max(1),
        move |feeder| {
            for data in inputs {
                feeder.push(data);
            }
        },
        |item| {
            if let Some(j) = jsink.as_mut() {
                j.record(JourneyKind::Sink, item.seq, sink_stage, 0, 0);
            }
            out[item.seq] = Some(item.data);
        },
    );
    let outputs = out
        .into_iter()
        .map(|o| o.expect("every sequence number must arrive"))
        .collect();
    (outputs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn unwrap_all<T: 'static>(data: Vec<Data>) -> Vec<T> {
        data.into_iter()
            .map(|d| *d.downcast::<T>().expect("output type"))
            .collect()
    }

    #[test]
    fn identity_pipeline_preserves_order() {
        let plan = PipelinePlan::new(vec![StagePlan::serial(Stage::new("id", |x: usize, _| x))]);
        let inputs: Vec<Data> = (0..50usize).map(|i| Box::new(i) as Data).collect();
        let (out, stats) = run_pipeline(&plan, inputs);
        assert_eq!(unwrap_all::<usize>(out), (0..50).collect::<Vec<_>>());
        assert_eq!(stats.datasets, 50);
        assert_eq!(stats.generated, 50);
    }

    #[test]
    fn replicated_stage_preserves_order() {
        let plan = PipelinePlan::new(vec![
            StagePlan::new(Stage::new("slow", |x: usize, _| x * 3), 4, 1),
            StagePlan::new(Stage::new("plus", |x: usize, _| x + 1), 3, 1),
        ]);
        let inputs: Vec<Data> = (0..100usize).map(|i| Box::new(i) as Data).collect();
        let (out, _) = run_pipeline(&plan, inputs);
        let got = unwrap_all::<usize>(out);
        assert_eq!(got, (0..100).map(|i| i * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn batched_transport_matches_unbatched_output() {
        for batch in [2usize, 5, 16, 64] {
            let mk = || {
                vec![
                    StagePlan::new(Stage::new("x3", |x: u64, _| x.wrapping_mul(3)), 3, 1),
                    StagePlan::new(Stage::new("p7", |x: u64, _| x.wrapping_add(7)), 2, 1),
                ]
            };
            let inputs = || (0..137u64).map(|i| Box::new(i) as Data).collect::<Vec<_>>();
            let (ref_out, ref_stats) = run_pipeline(&PipelinePlan::new(mk()), inputs());
            let plan = PipelinePlan::new(mk())
                .with_batch(batch)
                .with_queue_depth(3);
            let (out, stats) = run_pipeline(&plan, inputs());
            assert_eq!(unwrap_all::<u64>(out), unwrap_all::<u64>(ref_out));
            assert_eq!(stats.datasets, 137);
            // Batching reduces messages; the unbatched path is 1 item
            // per message by construction.
            assert!((ref_stats.mean_batch_fill() - 1.0).abs() < 1e-12);
            assert!(stats.messages < ref_stats.messages, "batch={batch}");
            assert!(stats.mean_batch_fill() > 1.0, "batch={batch}");
        }
    }

    #[test]
    fn replication_increases_throughput_of_a_slow_stage() {
        let slow = |x: usize, _t: usize| {
            std::thread::sleep(Duration::from_millis(4));
            x
        };
        let n = 40usize;
        let inputs = || (0..n).map(|i| Box::new(i) as Data).collect::<Vec<_>>();
        let single = PipelinePlan::new(vec![StagePlan::new(Stage::new("s", slow), 1, 1)]);
        let quad = PipelinePlan::new(vec![StagePlan::new(Stage::new("s", slow), 4, 1)]);
        let (_, st1) = run_pipeline(&single, inputs());
        let (_, st4) = run_pipeline(&quad, inputs());
        assert!(
            st4.throughput > 2.0 * st1.throughput,
            "4-way replication should at least double throughput: {} vs {}",
            st4.throughput,
            st1.throughput
        );
    }

    #[test]
    fn pipelining_overlaps_stages() {
        // Two stages of 3 ms each: serial would take ~6 ms per data set;
        // pipelined steady state is ~3 ms.
        let mk = || {
            Stage::new("sleep", |x: usize, _| {
                std::thread::sleep(Duration::from_millis(3));
                x
            })
        };
        let plan = PipelinePlan::new(vec![StagePlan::serial(mk()), StagePlan::serial(mk())]);
        let n = 30usize;
        let inputs: Vec<Data> = (0..n).map(|i| Box::new(i) as Data).collect();
        let (_, stats) = run_pipeline(&plan, inputs);
        // Allow generous scheduling slack; the serial time would be
        // 6 ms × 30 = 180 ms, pipelined ≈ 3 ms × 31 ≈ 93 ms.
        assert!(
            stats.elapsed < 0.160,
            "expected pipelining overlap, elapsed {:.3}s",
            stats.elapsed
        );
    }

    #[test]
    fn busy_time_accounted_per_stage() {
        let plan = PipelinePlan::new(vec![
            StagePlan::serial(Stage::new("a", |x: usize, _| {
                std::thread::sleep(Duration::from_millis(2));
                x
            })),
            StagePlan::serial(Stage::new("b", |x: usize, _| x)),
        ]);
        let inputs: Vec<Data> = (0..20usize).map(|i| Box::new(i) as Data).collect();
        let (_, stats) = run_pipeline(&plan, inputs);
        assert!(stats.busy[0] > stats.busy[1]);
        assert!(stats.busy[0] >= 0.020);
    }

    #[test]
    fn empty_input_is_fine() {
        let plan = PipelinePlan::new(vec![StagePlan::serial(Stage::new("id", |x: usize, _| x))]);
        let (out, stats) = run_pipeline(&plan, vec![]);
        assert!(out.is_empty());
        assert_eq!(stats.datasets, 0);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn instance_accounting_tiles_lifetime() {
        // Stage 0 is the bottleneck: stage 1 should accumulate recv_wait,
        // stage 0 send_wait (queue depth 1 gives backpressure).
        let plan = PipelinePlan::new(vec![
            StagePlan::serial(Stage::new("slow", |x: usize, _| {
                std::thread::sleep(Duration::from_millis(3));
                x
            })),
            StagePlan::serial(Stage::new("fast", |x: usize, _| x)),
        ]);
        let inputs: Vec<Data> = (0..20usize).map(|i| Box::new(i) as Data).collect();
        let (_, stats) = run_pipeline(&plan, inputs);

        assert_eq!(stats.instances.len(), 2);
        for inst in &stats.instances {
            let accounted = inst.recv_wait + inst.busy + inst.send_wait;
            assert!(
                accounted <= inst.lifetime + 1e-6,
                "stage {} accounted {accounted} > lifetime {}",
                inst.stage,
                inst.lifetime
            );
            // Loop bookkeeping between the timed sections is microseconds
            // per data set; allow 20% slack plus a constant for very short
            // runs.
            assert!(
                accounted >= 0.8 * inst.lifetime - 2e-3,
                "stage {} accounted {accounted} ≪ lifetime {}",
                inst.stage,
                inst.lifetime
            );
        }
        for (si, u) in stats.utilization.iter().enumerate() {
            assert!((0.0..=1.0).contains(u), "stage {si} utilization {u}");
        }
        // The stage downstream of the bottleneck starves on input.
        assert!(
            stats.recv_wait[1] > stats.recv_wait[0],
            "downstream recv_wait {:?}",
            stats.recv_wait
        );
        assert!(stats.utilization[0] > stats.utilization[1]);
    }

    #[test]
    fn per_stage_sums_match_instances() {
        let plan = PipelinePlan::new(vec![StagePlan::new(
            Stage::new("work", |x: usize, _| {
                std::thread::sleep(Duration::from_millis(1));
                x
            }),
            3,
            1,
        )]);
        let inputs: Vec<Data> = (0..30usize).map(|i| Box::new(i) as Data).collect();
        let (_, stats) = run_pipeline(&plan, inputs);
        assert_eq!(stats.instances.len(), 3);
        let busy_sum: f64 = stats.instances.iter().map(|i| i.busy).sum();
        assert!((busy_sum - stats.busy[0]).abs() < 1e-9);
        let recv_sum: f64 = stats.instances.iter().map(|i| i.recv_wait).sum();
        assert!((recv_sum - stats.recv_wait[0]).abs() < 1e-9);
        // Instances are sorted by (stage, instance).
        let order: Vec<usize> = stats.instances.iter().map(|i| i.instance).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn heterogeneous_stage_types_flow() {
        let plan = PipelinePlan::new(vec![
            StagePlan::new(Stage::new("stringify", |x: usize, _| x.to_string()), 2, 1),
            StagePlan::new(Stage::new("len", |s: String, _| s.len()), 2, 1),
        ]);
        let inputs: Vec<Data> = vec![Box::new(5usize), Box::new(123usize), Box::new(42usize)];
        let (out, _) = run_pipeline(&plan, inputs);
        assert_eq!(unwrap_all::<usize>(out), vec![1, 3, 2]);
    }

    #[test]
    fn journeys_are_complete_and_monotone() {
        use pipemap_obs::{stitch, JourneyConfig};
        let col = JourneyCollector::new(JourneyConfig::default());
        let plan = PipelinePlan::new(vec![
            StagePlan::new(Stage::new("x3", |x: u64, _| x.wrapping_mul(3)), 2, 1),
            StagePlan::new(Stage::new("p7", |x: u64, _| x.wrapping_add(7)), 3, 1),
        ])
        .with_batch(4)
        .with_queue_depth(2)
        .with_journeys(col.clone());
        let inputs: Vec<Data> = (0..40u64).map(|i| Box::new(i) as Data).collect();
        let (out, _) = run_pipeline(&plan, inputs);
        assert_eq!(out.len(), 40);
        let journeys = stitch(&col.drain());
        assert_eq!(journeys.len(), 40);
        for j in &journeys {
            assert!(j.complete(2), "journey {} incomplete: {j:?}", j.seq);
            assert!(j.monotone(), "journey {} not monotone: {j:?}", j.seq);
            assert!(j.source_us.is_some() && j.sink_us.is_some());
            // Round-robin replica identity is recorded per hop.
            assert_eq!(j.hops[0].instance as u64, j.seq % 2);
            assert_eq!(j.hops[1].instance as u64, j.seq % 3);
        }
        // Batched transport: some data sets share a batch identity.
        let shared_batches = journeys
            .iter()
            .filter(|j| j.hops.iter().any(|h| h.batch != 0))
            .count();
        assert!(shared_batches > 0, "batch ids should appear with batch=4");
    }

    #[test]
    fn journey_sampling_records_one_in_n() {
        use pipemap_obs::{stitch, JourneyConfig};
        let col = JourneyCollector::new(JourneyConfig::default().with_sample(5));
        let plan = PipelinePlan::new(vec![StagePlan::serial(Stage::new("id", |x: u64, _| x))])
            .with_journeys(col.clone());
        let inputs: Vec<Data> = (0..23u64).map(|i| Box::new(i) as Data).collect();
        let (_, _) = run_pipeline(&plan, inputs);
        let journeys = stitch(&col.drain());
        let seqs: Vec<u64> = journeys.iter().map(|j| j.seq).collect();
        assert_eq!(seqs, vec![0, 5, 10, 15, 20]);
        assert!(journeys.iter().all(|j| j.complete(1) && j.monotone()));
    }

    #[test]
    fn pooled_payloads_flow_and_recycle() {
        use crate::pool::{BufferPool, Lease};
        let pool = BufferPool::new(8);
        let plan = PipelinePlan::new(vec![
            StagePlan::serial(Stage::new("double", |mut v: Lease<Vec<u64>>, _| {
                for x in v.iter_mut() {
                    *x *= 2;
                }
                v
            })),
            StagePlan::serial(Stage::new("sum", |v: Lease<Vec<u64>>, _| {
                v.iter().sum::<u64>()
                // lease drops here → payload returns to the pool
            })),
        ])
        .with_batch(4);
        let inputs = |pool: &BufferPool| -> Vec<Data> {
            (0..20u64)
                .map(|i| {
                    let mut lease = pool.take(|| vec![0u64; 4]);
                    for (j, x) in lease.iter_mut().enumerate() {
                        *x = i + j as u64;
                    }
                    Box::new(lease) as Data
                })
                .collect()
        };
        // First wave: all takes are misses; the sink drops each lease,
        // shelving up to the pool's bound of 8.
        let (out, _) = run_pipeline(&plan, inputs(&pool));
        let sums = unwrap_all::<u64>(out);
        assert_eq!(sums[0], 2 * (1 + 2 + 3));
        assert_eq!(sums.len(), 20);
        let first = pool.stats();
        assert_eq!(first.hits, 0, "{first:?}");
        assert!(first.returns >= 8, "{first:?}");
        // Second wave over the same pool: shelved payloads are recycled.
        let (out, _) = run_pipeline(&plan, inputs(&pool));
        assert_eq!(unwrap_all::<u64>(out), sums);
        let second = pool.stats();
        assert_eq!(second.hits, 8, "{second:?}");
    }
}
