//! # pipemap-exec
//!
//! A real, threaded executor for pipelines of data parallel tasks — the
//! shared-memory counterpart of the distributed machine the paper targets.
//! Where `pipemap-sim` predicts behaviour from cost models, this crate
//! actually runs a mapped chain on OS threads:
//!
//! * each module instance is a worker thread owning a bounded input queue;
//! * data sets are dispatched to a module's instances round-robin (the
//!   §2.2 replication semantics: alternate data sets on distinct
//!   instances), and re-ordered by sequence number at the sink;
//! * inside an instance, the module's *data parallelism* is exploited by
//!   splitting the kernel across `procs` worker threads (the analogue of
//!   the processors assigned to the instance).
//!
//! [`kernels`] implements the actual computations of the paper's
//! applications — an iterative radix-2 FFT, matrix transpose, histogram
//! with parallel merge, stereo SSD and disparity reduction — so the
//! examples run the real FFT-Hist and stereo pipelines end to end and
//! measure genuine throughput.

pub mod driver;
pub mod executor;
pub mod kernels;
pub mod plan;
pub mod pool;
pub mod proc;
pub mod stage;
pub mod transport;
pub mod wire;

pub use driver::{run_load, LatencySummary, LoadOptions, LoadReport};
pub use executor::{run_pipeline, Feeder, InstanceStats, PipelinePlan, PipelineStats, StagePlan};
pub use plan::{plan_from_mapping, ThreadBudget};
pub use pool::{BufferPool, Lease, PoolStats};
pub use proc::{
    install_telemetry_journeys, measure_transport, run_wire, run_wire_load, run_wire_pipeline,
    uninstall_telemetry_journeys, worker_command, worker_main, worker_metric, worker_probe,
    LinkReport, StageAgg, TransportMeasurement, WireFeeder, WireLoadOptions, WireLoadReport,
    WireRun, WorkerStats, PROBE_TOKEN, WORKER_BIN_ENV,
};
pub use stage::{Data, Stage};
pub use transport::{
    DataBatch, FrameKind, InProcLink, LinkStats, Transport, TransportKind, UdsLink, WireItem,
    MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
pub use wire::{WireKernel, WirePlan, WireScratch, WireStagePlan, WIRE_PLAN_ENV};
