//! Standalone pipeline worker executable.
//!
//! The parent normally re-executes itself (`pipemap __worker …`), but
//! test harnesses are not the pipemap binary, so integration tests
//! point `PIPEMAP_WORKER_BIN` at this dedicated worker instead.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(pipemap_exec::proc::worker_main(&args));
}
