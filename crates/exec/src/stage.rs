//! Type-erased pipeline stages.
//!
//! Pipelines are heterogeneous — an FFT stage produces a complex matrix,
//! the histogram stage consumes it and produces counts — so stages pass a
//! type-erased [`Data`] box. A stage function downcasts its input,
//! computes with the instance's thread count, and boxes its output. The
//! paper's model corresponds directly: the stage function is `f_exec`, the
//! thread count is the instance's processor allocation.

use std::any::Any;
use std::sync::Arc;

/// A type-erased data set flowing between stages.
pub type Data = Box<dyn Any + Send>;

/// One pipeline stage: a named data parallel computation.
///
/// The name is an `Arc<str>` so plans, worker threads, and trace lanes
/// share one allocation — cloning a `Stage` (or formatting its name in a
/// hot loop's setup) never copies the string.
#[derive(Clone)]
pub struct Stage {
    /// Stage name (for stats and errors).
    pub name: Arc<str>,
    func: Arc<dyn Fn(Data, usize) -> Data + Send + Sync>,
}

impl Stage {
    /// A stage from a typed function: input `I`, output `O`, and the
    /// instance's thread count.
    ///
    /// The wrapper panics (with the stage name) if an upstream stage sent
    /// a value of the wrong type — a wiring bug, not a data error.
    pub fn new<I, O, F>(name: impl Into<Arc<str>>, f: F) -> Self
    where
        I: 'static,
        O: Send + 'static,
        F: Fn(I, usize) -> O + Send + Sync + 'static,
    {
        let name = name.into();
        let n2 = Arc::clone(&name);
        Stage {
            name,
            func: Arc::new(move |data, threads| {
                let input = data
                    .downcast::<I>()
                    .unwrap_or_else(|_| panic!("stage '{n2}' received wrong input type"));
                Box::new(f(*input, threads))
            }),
        }
    }

    /// Apply the stage to a data set with `threads` worker threads.
    pub fn apply(&self, data: Data, threads: usize) -> Data {
        (self.func)(data, threads)
    }
}

impl std::fmt::Debug for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Stage({})", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_roundtrip() {
        let s = Stage::new("double", |x: i64, _t| x * 2);
        let out = s.apply(Box::new(21i64), 1);
        assert_eq!(*out.downcast::<i64>().unwrap(), 42);
    }

    #[test]
    fn threads_are_passed_through() {
        let s = Stage::new("threads", |_x: (), t| t);
        let out = s.apply(Box::new(()), 7);
        assert_eq!(*out.downcast::<usize>().unwrap(), 7);
    }

    #[test]
    #[should_panic(expected = "wrong input type")]
    fn type_mismatch_is_loud() {
        let s = Stage::new("int-only", |x: i64, _t| x);
        let _ = s.apply(Box::new("oops".to_string()), 1);
    }

    #[test]
    fn heterogeneous_chain() {
        let a = Stage::new("len", |v: Vec<u8>, _| v.len());
        let b = Stage::new("fmt", |n: usize, _| format!("{n}!"));
        let mid = a.apply(Box::new(vec![1u8, 2, 3]), 1);
        let out = b.apply(mid, 1);
        assert_eq!(*out.downcast::<String>().unwrap(), "3!");
    }
}
