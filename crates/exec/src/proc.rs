//! Multi-process pipeline engine: spawn, handshake, run, aggregate.
//!
//! One worker *process* per (stage, instance), wired stage-to-stage with
//! the framed UDS links of [`crate::transport`]. The parent:
//!
//! 1. binds the sink socket, picks a shared wall-clock epoch, and spawns
//!    every worker with the serialized [`WirePlan`] in its environment;
//! 2. each worker binds its own listener first, then connects downstream
//!    with retries — so no global start ordering is needed — and the
//!    `HELLO`/`READY` handshake validates protocol version and plan hash
//!    on every link before data flows;
//! 3. the parent feeds encoded payloads into stage 0 (round-robin by
//!    sequence, coalesced and age-flushed exactly like the in-process
//!    transport) and drains the last stage's output at the sink;
//! 4. at end of stream an `EOF` frame cascades down the chain; workers
//!    flush, dump their stats and sampled journey events to stdout, and
//!    exit. A worker that dies instead closes its sockets, which the
//!    neighbours see as hard errors — the failure cascades to the parent
//!    as a clean `Err`, never a hang.
//!
//! Journeys work across processes because every event is stamped against
//! the shared epoch with `SystemTime` (one host, one `CLOCK_REALTIME`),
//! so the merged per-process samples form a single monotone timeline
//! that `pipemap doctor` can diagnose like any in-process run.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use pipemap_obs::{
    DeltaTracker, JourneyCollector, JourneyConfig, JourneyEvent, JourneyKind, JourneySink,
    Recorder, Registry, Value,
};

use crate::driver::LatencySummary;
use crate::pool::BufferPool;
use crate::transport::{DataBatch, LinkStats, Transport, UdsLink, WireItem};
use crate::wire::{WireKernel, WirePlan, WireScratch, WIRE_PLAN_ENV};

/// Environment variable naming the worker executable. When unset the
/// parent re-executes itself with a hidden `__worker` argument.
pub const WORKER_BIN_ENV: &str = "PIPEMAP_WORKER_BIN";

/// Token `--probe` prints, so callers can cheaply verify that the
/// resolved worker command really is a pipemap worker (and skip
/// spawn-dependent paths when it is not, e.g. under a unit-test
/// harness).
pub const PROBE_TOKEN: &str = "pipemap-worker-ok";

/// How long connect/accept phases retry before declaring a peer dead.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Bound on parent-side sink buffering, in frames.
const SINK_CHANNEL_CAP: usize = 1024;

static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

fn unix_now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_micros() as u64
}

/// Epoch-relative wall clock shared by every process of a run.
#[derive(Clone, Copy)]
struct WireClock {
    epoch_us: u64,
}

impl WireClock {
    fn now_us(self) -> f64 {
        unix_now_us().saturating_sub(self.epoch_us) as f64
    }
}

/// A journey sink plus the shared clock and a per-process batch-id salt
/// (so batch ids minted by different processes never collide).
struct WireJourney {
    sink: JourneySink,
    clock: WireClock,
    batch_salt: u64,
}

impl WireJourney {
    fn next_batch(&self) -> u64 {
        self.batch_salt | self.sink.next_batch()
    }
}

/// Per-destination coalescing over a set of outbound links: the
/// frame-level replica of the in-process `TxSet` — eager flush at
/// `batch` items, age flush for stragglers, flush-everything before the
/// owner blocks.
struct WireTxSet<T: Transport> {
    links: Vec<T>,
    bufs: Vec<Vec<WireItem>>,
    since: Vec<Instant>,
    batch: usize,
    flush_age: Duration,
    /// Stage the flushed items are enqueued for, or `None` when the
    /// destination is the sink boundary (no queue there, so no Enqueue
    /// journey record — mirrors the in-process transport).
    dest_stage: Option<u32>,
    send_wait_s: f64,
}

impl<T: Transport> WireTxSet<T> {
    fn new(links: Vec<T>, batch: usize, flush_us: u64, dest_stage: Option<u32>) -> Self {
        let n = links.len();
        Self {
            links,
            bufs: (0..n).map(|_| Vec::new()).collect(),
            since: vec![Instant::now(); n],
            batch: batch.max(1),
            flush_age: Duration::from_micros(flush_us),
            dest_stage,
            send_wait_s: 0.0,
        }
    }

    fn push(&mut self, item: WireItem, journey: &mut Option<WireJourney>) -> io::Result<()> {
        let d = (item.seq as usize) % self.links.len();
        if self.bufs[d].is_empty() {
            self.since[d] = Instant::now();
        }
        self.bufs[d].push(item);
        if self.bufs[d].len() >= self.batch {
            self.flush_target(d, journey)?;
        }
        Ok(())
    }

    fn flush_target(&mut self, d: usize, journey: &mut Option<WireJourney>) -> io::Result<()> {
        if self.bufs[d].is_empty() {
            return Ok(());
        }
        let buf = std::mem::take(&mut self.bufs[d]);
        if let (Some(j), Some(dest)) = (&mut *journey, self.dest_stage) {
            // One clock read for the whole frame, stamped before the
            // possibly-blocking write (mirrors the in-process TxSet).
            if buf.iter().any(|it| j.sink.sampled(it.seq as usize)) {
                let t = j.clock.now_us();
                let batch_id = if buf.len() > 1 { j.next_batch() } else { 0 };
                for it in &buf {
                    j.sink.record_at(
                        t,
                        JourneyKind::Enqueue,
                        it.seq as usize,
                        dest,
                        d as u32,
                        batch_id,
                    );
                }
            }
        }
        let t0 = Instant::now();
        self.links[d].send_data(buf)?;
        self.send_wait_s += t0.elapsed().as_secs_f64();
        Ok(())
    }

    fn flush_aged(&mut self, journey: &mut Option<WireJourney>) -> io::Result<()> {
        for d in 0..self.links.len() {
            if !self.bufs[d].is_empty() && self.since[d].elapsed() >= self.flush_age {
                self.flush_target(d, journey)?;
            }
        }
        Ok(())
    }

    fn flush_all(&mut self, journey: &mut Option<WireJourney>) -> io::Result<()> {
        for d in 0..self.links.len() {
            self.flush_target(d, journey)?;
        }
        Ok(())
    }

    fn eof_all(&mut self) -> io::Result<()> {
        for l in &mut self.links {
            l.send_eof()?;
        }
        Ok(())
    }

    fn link_stats(&self) -> LinkStats {
        let mut s = LinkStats::default();
        for l in &self.links {
            s.merge(&l.stats());
        }
        s
    }
}

/// What one worker process measured about itself, reported over stdout
/// when it drains cleanly.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkerStats {
    /// Stage index.
    pub stage: usize,
    /// Instance index within the stage.
    pub instance: usize,
    /// Data sets processed.
    pub items: u64,
    /// Time blocked waiting for input frames.
    pub recv_wait_s: f64,
    /// Time in the kernel (decode + compute + encode).
    pub service_s: f64,
    /// Time blocked writing output frames.
    pub send_wait_s: f64,
    /// Wall time from handshake completion to drain.
    pub lifetime_s: f64,
    /// Socket counters, inbound plus outbound, for this worker.
    pub link: LinkStats,
}

impl WorkerStats {
    /// JSON form for the stdout stats line.
    pub fn to_value(&self) -> Value {
        let mut v = Value::object();
        v.set("stage", self.stage as u64);
        v.set("instance", self.instance as u64);
        v.set("items", self.items);
        v.set("recv_wait_s", self.recv_wait_s);
        v.set("service_s", self.service_s);
        v.set("send_wait_s", self.send_wait_s);
        v.set("lifetime_s", self.lifetime_s);
        v.set("frames_in", self.link.frames_in);
        v.set("items_in", self.link.items_in);
        v.set("bytes_in", self.link.bytes_in);
        v.set("frames_out", self.link.frames_out);
        v.set("items_out", self.link.items_out);
        v.set("bytes_out", self.link.bytes_out);
        v
    }

    /// Parse the stdout stats line.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let num = |key: &str| {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("worker stats missing '{key}'"))
        };
        Ok(WorkerStats {
            stage: num("stage")? as usize,
            instance: num("instance")? as usize,
            items: num("items")? as u64,
            recv_wait_s: num("recv_wait_s")?,
            service_s: num("service_s")?,
            send_wait_s: num("send_wait_s")?,
            lifetime_s: num("lifetime_s")?,
            link: LinkStats {
                frames_in: num("frames_in")? as u64,
                items_in: num("items_in")? as u64,
                bytes_in: num("bytes_in")? as u64,
                frames_out: num("frames_out")? as u64,
                items_out: num("items_out")? as u64,
                bytes_out: num("bytes_out")? as u64,
            },
        })
    }
}

/// Per-stage aggregate over all worker processes of that stage.
#[derive(Clone, Debug)]
pub struct StageAgg {
    /// Stage (kernel) display name.
    pub name: String,
    /// Worker processes.
    pub replicas: usize,
    /// Data-parallel threads inside each worker.
    pub threads: usize,
    /// Items processed across all instances.
    pub items: u64,
    /// Summed kernel time.
    pub service_s: f64,
    /// Summed input-wait time.
    pub recv_wait_s: f64,
    /// Summed output-wait time.
    pub send_wait_s: f64,
}

impl StageAgg {
    /// Mean per-item service time across the stage's instances.
    pub fn service_mean_s(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.service_s / self.items as f64
        }
    }
}

/// Counters for one stage boundary of the wire.
#[derive(Clone, Debug)]
pub struct LinkReport {
    /// `from->to` label (stage display names, `source`/`sink` at the
    /// ends).
    pub label: String,
    /// `DATA` frames that crossed the boundary.
    pub frames: u64,
    /// Items those frames carried.
    pub items: u64,
    /// Bytes on the wire (frame + item headers + payloads).
    pub bytes: u64,
}

impl LinkReport {
    /// Mean payload-bearing bytes per item.
    pub fn bytes_per_item(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.bytes as f64 / self.items as f64
        }
    }
}

/// Everything a cross-process run measured.
#[derive(Debug, Default)]
pub struct WireRun {
    /// Data sets fed by the source.
    pub generated: u64,
    /// Data sets that reached the sink.
    pub completed: u64,
    /// Wall seconds from first feed to drain.
    pub elapsed: f64,
    /// `completed / elapsed`.
    pub throughput: f64,
    /// Parent time blocked feeding stage 0.
    pub source_wait_s: f64,
    /// Per-stage aggregates, in order.
    pub stages: Vec<StageAgg>,
    /// Raw per-worker stats.
    pub workers: Vec<WorkerStats>,
    /// Per-boundary wire counters, source through sink.
    pub links: Vec<LinkReport>,
    /// Merged journey samples from every process, epoch-relative.
    pub events: Vec<JourneyEvent>,
}

impl WireRun {
    /// Mean per-item service seconds per stage.
    pub fn service_means(&self) -> Vec<f64> {
        self.stages.iter().map(StageAgg::service_mean_s).collect()
    }

    /// Mean wire bytes per item entering each stage (one entry per
    /// stage; the final sink boundary is excluded).
    pub fn input_bytes_per_item(&self) -> Vec<f64> {
        self.links
            .iter()
            .take(self.stages.len())
            .map(LinkReport::bytes_per_item)
            .collect()
    }

    /// Publish the per-boundary counters to the global observability
    /// registry as `exec.link.<label>.{bytes,frames,items}`.
    pub fn publish_link_counters(&self) {
        let rec = pipemap_obs::global();
        for l in &self.links {
            rec.counter(&format!("exec.link.{}.bytes", l.label))
                .add(l.bytes);
            rec.counter(&format!("exec.link.{}.frames", l.label))
                .add(l.frames);
            rec.counter(&format!("exec.link.{}.items", l.label))
                .add(l.items);
        }
    }
}

fn sock_path(dir: &Path, stage: usize, instance: usize) -> PathBuf {
    dir.join(format!("s{stage}i{instance}.sock"))
}

fn sink_path(dir: &Path) -> PathBuf {
    dir.join("sink.sock")
}

fn telemetry_path(dir: &Path) -> PathBuf {
    dir.join("telemetry.sock")
}

/// Bare metric names inside a worker's local registry. The parent
/// prefixes each with `exec.worker.s<stage>i<instance>.p<pid>.` on
/// ingest, which is the shape `pipemap_obs::openmetrics` folds into
/// labelled `{stage,instance,pid}` families on `/metrics`.
pub mod worker_metric {
    /// Data sets processed (counter).
    pub const ITEMS: &str = "items";
    /// Kernel time per item, seconds (histogram).
    pub const SERVICE_S: &str = "service_s";
    /// Blocking input waits, seconds per wait (histogram).
    pub const RECV_WAIT_S: &str = "recv_wait_s";
    /// Blocking output writes, seconds per flush (histogram).
    pub const SEND_WAIT_S: &str = "send_wait_s";
    /// CPU utilisation since the previous telemetry tick, percent of
    /// one core (gauge, from `/proc/self/stat`).
    pub const CPU_PCT: &str = "cpu_pct";
    /// Resident set size, bytes (gauge, from `/proc/self/status`).
    pub const RSS_BYTES: &str = "rss_bytes";
    /// Voluntary context switches since process start (gauge).
    pub const CTX_VOLUNTARY: &str = "ctx_voluntary";
    /// Involuntary context switches since process start (gauge).
    pub const CTX_INVOLUNTARY: &str = "ctx_involuntary";
    /// Fraction of the last telemetry interval spent in the kernel
    /// (gauge, Δservice_s / Δwall).
    pub const BUSY_FRAC: &str = "busy_frac";
    /// Fraction of the last telemetry interval spent blocked on input
    /// (gauge, Δrecv_wait_s / Δwall).
    pub const STARVED_FRAC: &str = "starved_frac";
    /// Journey ring evictions in this worker (counter; nonzero means
    /// the sampled timeline is incomplete).
    pub const JOURNEY_DROPPED: &str = "journey_dropped";
    /// 0 while the worker's telemetry stream is live, 1 once the parent
    /// saw it die without a clean EOF (gauge, parent-written).
    pub const STALE: &str = "stale";
}

/// Where the parent routes journey events arriving over telemetry.
/// Installed by the caller (e.g. `pipemap load --serve`) so live runs
/// can expose worker-sampled journeys while the run is still going;
/// `WireRun::events` stays fed by the end-of-run stdout lines either
/// way.
static TELEMETRY_JOURNEYS: Mutex<Option<JourneySink>> = Mutex::new(None);

/// Install the sink that receives live worker journey events from the
/// telemetry plane. Events were already sampled worker-side, so pass a
/// sink from a collector configured with sample = 1 — a coarser sample
/// here would silently re-filter them.
pub fn install_telemetry_journeys(sink: JourneySink) {
    *TELEMETRY_JOURNEYS.lock().unwrap() = Some(sink);
}

/// Remove the installed telemetry journey sink (flushing it), so a
/// finished serve run stops holding the ring alive.
pub fn uninstall_telemetry_journeys() {
    if let Some(mut sink) = TELEMETRY_JOURNEYS.lock().unwrap().take() {
        sink.flush();
    }
}

/// The command that runs workers: `PIPEMAP_WORKER_BIN` if set (a
/// dedicated worker binary taking worker args directly), else the
/// current executable re-run with the hidden `__worker` argument.
pub fn worker_command() -> Result<Command, String> {
    if let Ok(bin) = std::env::var(WORKER_BIN_ENV) {
        if !bin.is_empty() {
            return Ok(Command::new(bin));
        }
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut cmd = Command::new(exe);
    cmd.arg("__worker");
    Ok(cmd)
}

/// Whether the resolved worker command actually is a pipemap worker.
/// Cheap spawn of `--probe`; anything that does not print the probe
/// token (e.g. a test harness re-executed as itself) fails the probe.
pub fn worker_probe() -> bool {
    let Ok(mut cmd) = worker_command() else {
        return false;
    };
    cmd.arg("--probe")
        .stdin(Stdio::null())
        .stderr(Stdio::null())
        .output()
        .map(|out| String::from_utf8_lossy(&out.stdout).contains(PROBE_TOKEN))
        .unwrap_or(false)
}

/// One calibration measurement: `messages` items of `payload_bytes`
/// each pushed through a real worker process over UDS, timed end to end
/// (first byte out to the drain worker's acknowledgement of everything).
#[derive(Clone, Copy, Debug)]
pub struct TransportMeasurement {
    /// Payload bytes per item.
    pub payload_bytes: usize,
    /// Items sent.
    pub messages: u64,
    /// Wall seconds from first send to the drain's count+checksum reply.
    pub elapsed_s: f64,
    /// Mean seconds per item: `elapsed_s / messages`.
    pub seconds_per_message: f64,
}

/// Measure cross-process transport cost against a spawned drain worker:
/// send `messages` items of `payload_bytes` each, coalesced `batch` per
/// frame, and time until the drain acknowledges receipt of all of them.
/// The drain's checksum confirms every byte arrived intact.
pub fn measure_transport(
    payload_bytes: usize,
    messages: u64,
    batch: usize,
) -> Result<TransportMeasurement, String> {
    let dir = std::env::temp_dir().join(format!(
        "pipemap-cal-{}-{}",
        std::process::id(),
        RUN_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let result = measure_transport_in(&dir, payload_bytes, messages, batch);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn measure_transport_in(
    dir: &Path,
    payload_bytes: usize,
    messages: u64,
    batch: usize,
) -> Result<TransportMeasurement, String> {
    let batch = batch.max(1);
    let path = dir.join("cal.sock");
    let listener =
        UnixListener::bind(&path).map_err(|e| format!("bind {}: {e}", path.display()))?;
    let mut cmd = worker_command()?;
    cmd.arg("--drain")
        .arg(&path)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("spawn drain worker: {e}"))?;
    let run = (|| -> Result<TransportMeasurement, String> {
        let pool = BufferPool::new(64);
        let stream = accept_with_deadline(&listener, Instant::now() + HANDSHAKE_TIMEOUT)
            .map_err(|e| format!("accept drain worker: {e}"))?;
        let mut link = UdsLink::new(stream, pool.clone());
        link.recv_hello(0).map_err(|e| e.to_string())?;
        link.send_ready().map_err(|e| e.to_string())?;

        // Template payload; each item copies it into a pooled lease so
        // the send path is exactly the engine's.
        let template: Vec<u8> = (0..payload_bytes).map(|i| (i % 251) as u8).collect();
        let mut expect_checksum: u64 = 0xcbf2_9ce4_8422_2325;
        let start = Instant::now();
        let mut sent: u64 = 0;
        while sent < messages {
            let n = batch.min((messages - sent) as usize);
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                let mut payload = pool.take(Vec::new);
                payload.clear();
                payload.extend_from_slice(&template);
                fnv1a(&mut expect_checksum, &sent.to_le_bytes());
                fnv1a(&mut expect_checksum, &template);
                items.push(WireItem { seq: sent, payload });
                sent += 1;
            }
            link.send_data(items).map_err(|e| format!("send: {e}"))?;
        }
        link.send_eof().map_err(|e| format!("eof: {e}"))?;

        // The drain replies one item: [count u64, checksum u64].
        let reply = link
            .recv_data()
            .map_err(|e| format!("drain reply: {e}"))?
            .ok_or_else(|| "drain worker closed without a reply".to_string())?;
        let elapsed_s = start.elapsed().as_secs_f64();
        let mut got: Option<(u64, u64)> = None;
        reply.for_each(|_, bytes| {
            if bytes.len() == 16 {
                got = Some((
                    u64::from_le_bytes(bytes[..8].try_into().expect("sized")),
                    u64::from_le_bytes(bytes[8..].try_into().expect("sized")),
                ));
            }
        });
        let (count, checksum) = got.ok_or_else(|| "malformed drain reply".to_string())?;
        if count != messages {
            return Err(format!("drain saw {count} of {messages} items"));
        }
        if checksum != expect_checksum {
            return Err("drain checksum mismatch: bytes corrupted in flight".to_string());
        }
        // Consume the worker's EOF before dropping the socket, so its
        // final flush never lands on a closed pipe (which would make an
        // otherwise clean worker exit with EPIPE).
        let _ = link.recv_data();
        Ok(TransportMeasurement {
            payload_bytes,
            messages,
            elapsed_s,
            seconds_per_message: elapsed_s / messages.max(1) as f64,
        })
    })();
    if run.is_err() {
        let _ = child.kill();
    }
    let _ = child.wait();
    run
}

fn accept_with_deadline(listener: &UnixListener, deadline: Instant) -> io::Result<UnixStream> {
    listener.set_nonblocking(true)?;
    loop {
        match listener.accept() {
            Ok((s, _)) => {
                listener.set_nonblocking(false)?;
                s.set_nonblocking(false)?;
                return Ok(s);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "timed out waiting for a peer to connect",
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Message from a reader thread to the owning consumer.
enum RxMsg {
    Batch(DataBatch),
    Done(LinkStats),
    Fail(String),
}

fn spawn_reader(
    mut link: UdsLink,
    tx: crossbeam::channel::Sender<RxMsg>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || loop {
        match link.recv_data() {
            Ok(Some(b)) => {
                if tx.send(RxMsg::Batch(b)).is_err() {
                    return;
                }
            }
            Ok(None) => {
                let _ = tx.send(RxMsg::Done(link.stats()));
                return;
            }
            Err(e) => {
                let _ = tx.send(RxMsg::Fail(e.to_string()));
                return;
            }
        }
    })
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Entry point for a worker process. `args` excludes the dispatcher
/// token (`__worker` / argv[0]). Returns the process exit code.
pub fn worker_main(args: &[String]) -> i32 {
    if args.first().map(String::as_str) == Some("--probe") {
        println!("{PROBE_TOKEN}");
        return 0;
    }
    match run_worker(args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("pipemap-worker: {e}");
            1
        }
    }
}

fn run_worker(args: &[String]) -> Result<(), String> {
    let mut stage: Option<usize> = None;
    let mut instance: Option<usize> = None;
    let mut dir: Option<PathBuf> = None;
    let mut drain: Option<PathBuf> = None;
    let mut echo: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {a}"))
        };
        match a.as_str() {
            "--stage" => stage = Some(val()?.parse().map_err(|e| format!("--stage: {e}"))?),
            "--instance" => {
                instance = Some(val()?.parse().map_err(|e| format!("--instance: {e}"))?)
            }
            "--dir" => dir = Some(PathBuf::from(val()?)),
            "--drain" => drain = Some(PathBuf::from(val()?)),
            "--echo" => echo = Some(PathBuf::from(val()?)),
            other => return Err(format!("unknown worker argument '{other}'")),
        }
    }
    if let Some(path) = drain {
        return run_drain_worker(&path);
    }
    if let Some(path) = echo {
        return run_echo_worker(&path);
    }
    let (Some(si), Some(ii), Some(dir)) = (stage, instance, dir) else {
        return Err("worker needs --stage, --instance and --dir".to_string());
    };
    let plan_str = std::env::var(WIRE_PLAN_ENV)
        .map_err(|_| format!("{WIRE_PLAN_ENV} not set in worker environment"))?;
    let plan = WirePlan::parse(&plan_str)?;
    run_pipeline_worker(&plan, si, ii, &dir)
}

/// FNV-1a over a byte stream, used by the drain worker's checksum so
/// A/B benchmark variants can prove they delivered identical bytes.
fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// A sink-only worker: counts and checksums everything it receives,
/// then reports `[count, checksum]` in a single item and exits. Used by
/// calibration and the transport A/B bench, where only the send path is
/// under test.
fn run_drain_worker(path: &Path) -> Result<(), String> {
    let pool = BufferPool::new(64);
    let mut link =
        UdsLink::connect_retry(path, pool.clone(), HANDSHAKE_TIMEOUT).map_err(|e| e.to_string())?;
    link.send_hello(0, 0, 0).map_err(|e| e.to_string())?;
    link.recv_ready().map_err(|e| e.to_string())?;
    let mut count: u64 = 0;
    let mut checksum: u64 = 0xcbf2_9ce4_8422_2325;
    while let Some(b) = link.recv_data().map_err(|e| e.to_string())? {
        b.for_each(|seq, bytes| {
            count += 1;
            fnv1a(&mut checksum, &seq.to_le_bytes());
            fnv1a(&mut checksum, bytes);
        });
    }
    let mut reply = pool.take(Vec::new);
    reply.clear();
    reply.extend_from_slice(&count.to_le_bytes());
    reply.extend_from_slice(&checksum.to_le_bytes());
    link.send_data(vec![WireItem {
        seq: 0,
        payload: reply,
    }])
    .map_err(|e| e.to_string())?;
    link.send_eof().map_err(|e| e.to_string())
}

/// A loopback worker: echoes every batch back to the sender. Used by
/// calibration to measure a full round trip per frame.
fn run_echo_worker(path: &Path) -> Result<(), String> {
    let pool = BufferPool::new(64);
    let mut link =
        UdsLink::connect_retry(path, pool.clone(), HANDSHAKE_TIMEOUT).map_err(|e| e.to_string())?;
    link.send_hello(0, 0, 0).map_err(|e| e.to_string())?;
    link.recv_ready().map_err(|e| e.to_string())?;
    while let Some(b) = link.recv_data().map_err(|e| e.to_string())? {
        let mut back = Vec::new();
        b.for_each(|seq, bytes| {
            let mut payload = pool.take(Vec::new);
            payload.clear();
            payload.extend_from_slice(bytes);
            back.push(WireItem { seq, payload });
        });
        link.send_data(back).map_err(|e| e.to_string())?;
    }
    link.send_eof().map_err(|e| e.to_string())
}

/// Pre-resolved handles for the worker loop's hot-path observations.
struct WorkerMeters {
    items: pipemap_obs::Counter,
    service: pipemap_obs::HistogramHandle,
    recv_wait: pipemap_obs::HistogramHandle,
    send_wait: pipemap_obs::HistogramHandle,
}

impl WorkerMeters {
    fn new(rec: &Recorder) -> Self {
        Self {
            items: rec.counter(worker_metric::ITEMS),
            service: rec.histogram(worker_metric::SERVICE_S),
            recv_wait: rec.histogram(worker_metric::RECV_WAIT_S),
            send_wait: rec.histogram(worker_metric::SEND_WAIT_S),
        }
    }
}

/// The worker side of the telemetry plane: a process-local registry the
/// pipeline loop records into, plus a background thread that ships
/// delta snapshots (metrics, resource stats, drained journey events)
/// to the parent every `telemetry_us` over the dedicated telemetry
/// socket. Telemetry is strictly best-effort: if the connection cannot
/// be made the worker runs on without it, and a worker that dies takes
/// its stream down with it — the parent, not the worker, handles that.
struct WorkerTelemetry {
    rec: Recorder,
    stop: Arc<AtomicBool>,
    /// Journey events drained from the ring by the telemetry thread,
    /// kept so the end-of-run stdout `J ` lines stay complete.
    kept: Arc<Mutex<Vec<JourneyEvent>>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl WorkerTelemetry {
    fn start(
        plan: &WirePlan,
        si: usize,
        ii: usize,
        dir: &Path,
        hash: u64,
        collector: Option<JourneyCollector>,
    ) -> Self {
        let registry = Registry::new();
        let rec = registry.recorder();
        let stop = Arc::new(AtomicBool::new(false));
        let kept = Arc::new(Mutex::new(Vec::new()));
        let period = Duration::from_micros(plan.telemetry_us.max(1));
        // Handshake and first snapshot happen synchronously, before the
        // caller joins the data plane: the parent learns this worker's
        // pid up front, so even a crash moments into the stream is
        // attributed to the right series. A failure here just disables
        // telemetry for the run — the data plane never depends on it.
        let handle = match TelemetrySession::open(
            &telemetry_path(dir),
            hash,
            si,
            ii,
            registry,
            collector,
            &kept,
        ) {
            Ok(mut session) => {
                let thread_stop = stop.clone();
                let thread_kept = kept.clone();
                Some(std::thread::spawn(move || {
                    session.run(period, &thread_stop, &thread_kept);
                }))
            }
            Err(e) => {
                eprintln!("stage {si}.{ii} telemetry: {e} (continuing without)");
                None
            }
        };
        Self {
            rec,
            stop,
            kept,
            handle,
        }
    }

    /// Signal the thread, wait for its final snapshot + EOF, and return
    /// every journey event it drained from the ring along the way.
    fn finish(mut self) -> Vec<JourneyEvent> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        std::mem::take(&mut self.kept.lock().unwrap())
    }
}

/// One worker's live telemetry connection and the delta-collection
/// state behind it.
struct TelemetrySession {
    link: UdsLink,
    registry: Registry,
    rec: Recorder,
    tracker: DeltaTracker,
    cpu: pipemap_profile::CpuTracker,
    collector: Option<JourneyCollector>,
    dropped_seen: u64,
    last_tick: Instant,
    pid: u32,
}

impl TelemetrySession {
    fn open(
        path: &Path,
        hash: u64,
        si: usize,
        ii: usize,
        registry: Registry,
        collector: Option<JourneyCollector>,
        kept: &Mutex<Vec<JourneyEvent>>,
    ) -> io::Result<Self> {
        let pool = BufferPool::new(8);
        let mut link = UdsLink::connect_retry(path, pool, HANDSHAKE_TIMEOUT)?;
        link.send_hello(hash, si as u32, ii as u32)?;
        link.recv_ready()?;
        let mut session = Self {
            link,
            rec: registry.recorder(),
            registry,
            tracker: DeltaTracker::new(),
            cpu: pipemap_profile::CpuTracker::new(),
            collector,
            dropped_seen: 0,
            last_tick: Instant::now(),
            pid: std::process::id(),
        };
        session.tick(kept)?;
        Ok(session)
    }

    /// One telemetry beat: refresh resource gauges, collect the delta
    /// since the previous tick (plus drained journey events), ship it.
    fn tick(&mut self, kept: &Mutex<Vec<JourneyEvent>>) -> io::Result<()> {
        if let Some(s) = pipemap_profile::sample_self() {
            self.rec
                .gauge_set(worker_metric::CPU_PCT, self.cpu.cpu_pct(&s));
            self.rec
                .gauge_set(worker_metric::RSS_BYTES, s.rss_bytes as f64);
            self.rec
                .gauge_set(worker_metric::CTX_VOLUNTARY, s.vol_ctx as f64);
            self.rec
                .gauge_set(worker_metric::CTX_INVOLUNTARY, s.invol_ctx as f64);
        }
        if let Some(c) = &self.collector {
            let d = c.dropped();
            self.rec
                .add(worker_metric::JOURNEY_DROPPED, d - self.dropped_seen);
            self.dropped_seen = d;
        }

        let mut snap = self.tracker.collect(&self.registry, self.pid);

        // Busy/starved fractions of the interval just ended, derived
        // from the very deltas being shipped so they can never disagree
        // with the aggregated histograms.
        let dt = self.last_tick.elapsed().as_secs_f64();
        self.last_tick = Instant::now();
        if dt > 1e-6 {
            let delta_sum = |name: &str| {
                snap.histograms
                    .iter()
                    .find(|h| h.name == name)
                    .map_or(0.0, |h| h.sum)
            };
            let busy = delta_sum(worker_metric::SERVICE_S) / dt;
            let starved = delta_sum(worker_metric::RECV_WAIT_S) / dt;
            self.rec.gauge_set(worker_metric::BUSY_FRAC, busy);
            self.rec.gauge_set(worker_metric::STARVED_FRAC, starved);
            snap.gauges
                .push((worker_metric::BUSY_FRAC.to_string(), busy));
            snap.gauges
                .push((worker_metric::STARVED_FRAC.to_string(), starved));
        }

        if let Some(c) = &self.collector {
            let drained = c.drain();
            if !drained.is_empty() {
                kept.lock().unwrap().extend_from_slice(&drained);
                snap.journeys = drained;
            }
        }

        self.link.send_telemetry(snap.to_json().as_bytes())
    }

    fn run(&mut self, period: Duration, stop: &AtomicBool, kept: &Mutex<Vec<JourneyEvent>>) {
        loop {
            // Sleep the period in small slices so a stop request still
            // gets its final snapshot promptly.
            let deadline = Instant::now() + period;
            while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
                let left = deadline.saturating_duration_since(Instant::now());
                std::thread::sleep(left.min(Duration::from_millis(20)));
            }
            let stopping = stop.load(Ordering::Relaxed);
            if self.tick(kept).is_err() {
                // Parent side gone; nothing left to ship to.
                return;
            }
            if stopping {
                let _ = self.link.send_eof();
                return;
            }
        }
    }
}

fn run_pipeline_worker(plan: &WirePlan, si: usize, ii: usize, dir: &Path) -> Result<(), String> {
    let nstages = plan.stages.len();
    if si >= nstages {
        return Err(format!("stage {si} out of range ({nstages} stages)"));
    }
    let stage_plan = plan.stages[si];
    let hash = plan.hash();
    let pool = BufferPool::new(256);
    let clock = WireClock {
        epoch_us: plan.epoch_unix_us,
    };

    // Bind our listener before connecting downstream, so every worker
    // can start in any order and retry its way to a full mesh.
    let listener = UnixListener::bind(sock_path(dir, si, ii))
        .map_err(|e| format!("bind stage {si}.{ii} listener: {e}"))?;

    let collector = (plan.journey_sample > 0).then(|| {
        JourneyCollector::new(
            JourneyConfig::default()
                .with_sample(plan.journey_sample)
                .with_capacity(1 << 16),
        )
    });

    // Telemetry is per-process: a local registry the loop below records
    // into, shipped to the parent as deltas by a background thread.
    // Started before the data-plane handshake so the parent learns this
    // worker's pid from the first snapshot even if the worker dies
    // moments into the stream.
    let telemetry = (plan.telemetry_us > 0)
        .then(|| WorkerTelemetry::start(plan, si, ii, dir, hash, collector.clone()));
    let meters = telemetry.as_ref().map(|t| WorkerMeters::new(&t.rec));
    let mut send_wait_logged = 0.0_f64;

    // Downstream links: one per next-stage instance (or the sink).
    let down_paths: Vec<PathBuf> = if si + 1 < nstages {
        (0..plan.stages[si + 1].replicas)
            .map(|j| sock_path(dir, si + 1, j))
            .collect()
    } else {
        vec![sink_path(dir)]
    };
    let mut down = Vec::with_capacity(down_paths.len());
    for p in &down_paths {
        let mut l = UdsLink::connect_retry(p, pool.clone(), HANDSHAKE_TIMEOUT)
            .map_err(|e| format!("stage {si}.{ii} downstream: {e}"))?;
        l.send_hello(hash, si as u32, ii as u32)
            .map_err(|e| e.to_string())?;
        l.recv_ready().map_err(|e| e.to_string())?;
        down.push(l);
    }

    // Upstream connections: the parent feeder for stage 0, otherwise
    // every instance of the previous stage.
    let n_up = if si == 0 {
        1
    } else {
        plan.stages[si - 1].replicas
    };
    let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
    let mut ups = Vec::with_capacity(n_up);
    for _ in 0..n_up {
        let stream = accept_with_deadline(&listener, deadline)
            .map_err(|e| format!("stage {si}.{ii} accept: {e}"))?;
        let mut l = UdsLink::new(stream, pool.clone());
        l.recv_hello(hash).map_err(|e| e.to_string())?;
        l.send_ready().map_err(|e| e.to_string())?;
        ups.push(l);
    }

    let (tx, rx) = crossbeam::channel::bounded::<RxMsg>(plan.queue_depth.max(1));
    let readers: Vec<_> = ups
        .into_iter()
        .map(|l| spawn_reader(l, tx.clone()))
        .collect();
    drop(tx);

    let mut journey = collector.as_ref().map(|c| WireJourney {
        sink: c.sink(),
        clock,
        // Distinct high bits per process so minted batch ids never
        // collide across the merged timeline.
        batch_salt: ((si as u64 + 1) << 48) | ((ii as u64) << 40),
    });

    // The last stage's frames land at the sink, not a stage queue:
    // suppress the Enqueue record there so stitched journeys have
    // exactly `nstages` hops (the in-process transport does the same).
    let enqueue_dest = (si + 1 < plan.stages.len()).then_some(si as u32 + 1);
    let mut txset = WireTxSet::new(down, plan.batch, plan.flush_us, enqueue_dest);
    let mut scratch = WireScratch::default();
    let started = Instant::now();
    let mut stats = WorkerStats {
        stage: si,
        instance: ii,
        ..WorkerStats::default()
    };
    let mut upstream_in = LinkStats::default();
    let crash_after = match stage_plan.kernel {
        WireKernel::CrashAfter { n } => Some(n),
        _ => None,
    };
    let err = |e: io::Error| format!("stage {si}.{ii}: {e}");

    loop {
        let msg = match rx.try_recv() {
            Some(m) => m,
            None => {
                // About to block: everything buffered goes out now, so
                // stragglers never wait on future input (the in-process
                // transport's flush-before-blocking rule).
                txset.flush_all(&mut journey).map_err(err)?;
                let t0 = Instant::now();
                match rx.recv() {
                    Ok(m) => {
                        let waited = t0.elapsed().as_secs_f64();
                        stats.recv_wait_s += waited;
                        if let Some(mt) = &meters {
                            mt.recv_wait.record(waited);
                        }
                        m
                    }
                    Err(_) => break,
                }
            }
        };
        match msg {
            RxMsg::Batch(b) => {
                let mut failure: Option<String> = None;
                b.for_each(|seq, bytes| {
                    if failure.is_some() {
                        return;
                    }
                    let sampled = journey
                        .as_ref()
                        .is_some_and(|j| j.sink.sampled(seq as usize));
                    if sampled {
                        let j = journey.as_mut().expect("sampled implies journey");
                        let t = j.clock.now_us();
                        j.sink.record_at(
                            t,
                            JourneyKind::Dequeue,
                            seq as usize,
                            si as u32,
                            ii as u32,
                            0,
                        );
                        j.sink.record_at(
                            t,
                            JourneyKind::ServiceStart,
                            seq as usize,
                            si as u32,
                            ii as u32,
                            0,
                        );
                    }
                    let mut out = pool.take(Vec::new);
                    let t0 = Instant::now();
                    if let Err(e) =
                        stage_plan
                            .kernel
                            .apply(bytes, &mut out, &mut scratch, stage_plan.threads)
                    {
                        failure = Some(format!("stage {si}.{ii} kernel: {e}"));
                        return;
                    }
                    let served = t0.elapsed().as_secs_f64();
                    stats.service_s += served;
                    stats.items += 1;
                    if let Some(mt) = &meters {
                        mt.service.record(served);
                        mt.items.add(1);
                    }
                    if sampled {
                        let j = journey.as_mut().expect("sampled implies journey");
                        let t = j.clock.now_us();
                        j.sink.record_at(
                            t,
                            JourneyKind::ServiceEnd,
                            seq as usize,
                            si as u32,
                            ii as u32,
                            0,
                        );
                        j.sink.record_at(
                            t,
                            JourneyKind::Send,
                            seq as usize,
                            si as u32,
                            ii as u32,
                            0,
                        );
                    }
                    if let Err(e) = txset.push(WireItem { seq, payload: out }, &mut journey) {
                        failure = Some(format!("stage {si}.{ii} send: {e}"));
                        return;
                    }
                    if crash_after.is_some_and(|n| stats.items >= n) {
                        // Fault injection: die abruptly, no EOF, no
                        // flush — neighbours must see a hard error.
                        std::process::exit(3);
                    }
                });
                if let Some(e) = failure {
                    return Err(e);
                }
                txset.flush_aged(&mut journey).map_err(err)?;
                if let Some(mt) = &meters {
                    let waited = txset.send_wait_s - send_wait_logged;
                    if waited > 0.0 {
                        mt.send_wait.record(waited);
                        send_wait_logged = txset.send_wait_s;
                    }
                }
            }
            RxMsg::Done(s) => upstream_in.merge(&s),
            RxMsg::Fail(e) => return Err(format!("stage {si}.{ii} upstream: {e}")),
        }
    }
    for r in readers {
        let _ = r.join();
    }
    txset.flush_all(&mut journey).map_err(err)?;
    txset.eof_all().map_err(err)?;

    stats.send_wait_s = txset.send_wait_s;
    stats.lifetime_s = started.elapsed().as_secs_f64();
    stats.link = upstream_in;
    stats.link.merge(&txset.link_stats());
    if let Some(mt) = &meters {
        let waited = txset.send_wait_s - send_wait_logged;
        if waited > 0.0 {
            mt.send_wait.record(waited);
        }
    }
    println!("S {}", stats.to_value().to_json());
    // Flush the journey sink into the ring *before* stopping telemetry,
    // so the final delta snapshot carries the tail of the timeline.
    drop(journey);
    let drained_early = telemetry.map(WorkerTelemetry::finish).unwrap_or_default();
    if let Some(c) = collector {
        // Telemetry drains the ring as it ships; stdout still reports
        // the complete set (drained + whatever is left in the ring).
        for ev in drained_early.iter().copied().chain(c.snapshot()) {
            println!("J {}", ev.to_value().to_json());
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Parent side
// ---------------------------------------------------------------------------

/// The parent's handle for feeding encoded payloads into stage 0.
pub struct WireFeeder {
    txset: WireTxSet<UdsLink>,
    pool: BufferPool,
    journey: Option<WireJourney>,
    seq: u64,
}

impl WireFeeder {
    /// The next sequence number to be assigned.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Feed one data set: `fill` writes the encoded payload into a
    /// pooled buffer (cleared first).
    pub fn push(&mut self, fill: impl FnOnce(&mut Vec<u8>)) -> io::Result<()> {
        let mut payload = self.pool.take(Vec::new);
        payload.clear();
        fill(&mut payload);
        let seq = self.seq;
        if let Some(j) = &mut self.journey {
            let t = j.clock.now_us();
            j.sink
                .record_at(t, JourneyKind::Source, seq as usize, 0, 0, 0);
        }
        self.txset
            .push(WireItem { seq, payload }, &mut self.journey)?;
        self.seq += 1;
        Ok(())
    }

    /// Flush partially filled frames (call before sleeping between
    /// paced pushes).
    pub fn flush(&mut self) -> io::Result<()> {
        self.txset.flush_all(&mut self.journey)
    }

    /// Parent seconds spent blocked in stage-0 writes so far.
    pub fn source_wait_s(&self) -> f64 {
        self.txset.send_wait_s
    }
}

/// Parent half of the telemetry plane: accept one connection per
/// worker on the run's telemetry socket and fold every delta snapshot
/// into the *global* registry under per-process prefixes, so `/metrics`,
/// the flight recorder and `pipemap top` see worker internals without
/// any of them changing.
struct TelemetryIngest {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryIngest {
    fn start(listener: UnixListener, hash: u64, pool: BufferPool) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let handle = std::thread::spawn(move || {
            let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
            if listener.set_nonblocking(true).is_err() {
                return;
            }
            while !accept_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((s, _)) => {
                        let _ = s.set_nonblocking(false);
                        let link = UdsLink::new(s, pool.clone());
                        handlers.push(std::thread::spawn(move || telemetry_handler(link, hash)));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            // Workers are dead (reaped or killed) by the time the run
            // asks us to stop, so every handler sees EOF or a closed
            // socket and the joins cannot hang.
            for h in handlers {
                let _ = h.join();
            }
        });
        Self {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for TelemetryIngest {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Drain one worker's telemetry stream into the global registry. A
/// clean `EOF` ends the series as-is; a dead socket instead pins the
/// worker's `stale` gauge to 1 — its last-known series stay visible
/// and clearly marked rather than silently frozen.
fn telemetry_handler(mut link: UdsLink, hash: u64) {
    let Ok((si, ii)) = link.recv_hello(hash) else {
        return;
    };
    if link.send_ready().is_err() {
        return;
    }
    let rec = pipemap_obs::global();
    let mut prefix: Option<String> = None;
    loop {
        match link.recv_telemetry() {
            Ok(Some(buf)) => {
                let Ok(text) = std::str::from_utf8(&buf) else {
                    continue;
                };
                let Ok(snap) = pipemap_obs::DeltaSnapshot::parse(text) else {
                    continue;
                };
                let p = prefix.get_or_insert_with(|| {
                    format!(
                        "{}s{si}i{ii}.p{}.",
                        pipemap_obs::names::EXEC_WORKER_PREFIX,
                        snap.pid
                    )
                });
                pipemap_obs::apply_delta(&rec, p, &snap);
                rec.gauge_set(&format!("{p}{}", worker_metric::STALE), 0.0);
                if !snap.journeys.is_empty() {
                    if let Some(sink) = TELEMETRY_JOURNEYS.lock().unwrap().as_mut() {
                        for ev in &snap.journeys {
                            sink.record_at(
                                ev.t_us,
                                ev.kind,
                                ev.seq as usize,
                                ev.stage,
                                ev.instance,
                                ev.batch,
                            );
                        }
                        sink.flush();
                    }
                }
            }
            Ok(None) => return,
            Err(_) => {
                if let Some(p) = &prefix {
                    rec.gauge_set(&format!("{p}{}", worker_metric::STALE), 1.0);
                }
                return;
            }
        }
    }
}

fn kill_children(children: &mut [(usize, usize, Child)]) {
    for (_, _, c) in children.iter_mut() {
        let _ = c.kill();
    }
    for (_, _, c) in children.iter_mut() {
        let _ = c.wait();
    }
}

/// Run a wire plan across worker processes.
///
/// `feed` runs on its own thread and pushes every input through the
/// [`WireFeeder`]; `on_item` is called on the caller's thread for each
/// `(seq, payload)` arriving at the sink, in arrival order.
pub fn run_wire(
    plan: &WirePlan,
    feed: impl FnOnce(&mut WireFeeder) -> Result<(), String> + Send,
    mut on_item: impl FnMut(u64, &[u8]),
) -> Result<WireRun, String> {
    if plan.stages.is_empty() {
        return Err("wire plan has no stages".to_string());
    }
    let mut plan = plan.clone();
    if plan.epoch_unix_us == 0 {
        plan.epoch_unix_us = unix_now_us();
    }
    let plan = plan;
    let plan_str = plan.serialize();
    let hash = plan.hash();
    let clock = WireClock {
        epoch_us: plan.epoch_unix_us,
    };

    let dir = std::env::temp_dir().join(format!(
        "pipemap-wire-{}-{}",
        std::process::id(),
        RUN_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let result = run_wire_in(&plan, &plan_str, hash, clock, &dir, feed, &mut on_item);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

#[allow(clippy::too_many_arguments)]
fn run_wire_in(
    plan: &WirePlan,
    plan_str: &str,
    hash: u64,
    clock: WireClock,
    dir: &Path,
    feed: impl FnOnce(&mut WireFeeder) -> Result<(), String> + Send,
    on_item: &mut impl FnMut(u64, &[u8]),
) -> Result<WireRun, String> {
    let nstages = plan.stages.len();
    let pool = BufferPool::new(256);

    // The sink listener must exist before any last-stage worker tries
    // to connect.
    let sink_listener =
        UnixListener::bind(sink_path(dir)).map_err(|e| format!("bind sink listener: {e}"))?;

    // Likewise the telemetry listener, when the plan turns telemetry
    // on: every worker's telemetry thread connects to it right after
    // startup. The ingest joins on drop, which is after every child is
    // reaped or killed — so its handlers always see their sockets
    // close.
    let _telemetry_ingest = if plan.telemetry_us > 0 {
        let listener = UnixListener::bind(telemetry_path(dir))
            .map_err(|e| format!("bind telemetry listener: {e}"))?;
        Some(TelemetryIngest::start(listener, hash, pool.clone()))
    } else {
        None
    };

    // Spawn every worker.
    let mut children: Vec<(usize, usize, Child)> = Vec::new();
    for (si, sp) in plan.stages.iter().enumerate() {
        for ii in 0..sp.replicas {
            let mut cmd = match worker_command() {
                Ok(c) => c,
                Err(e) => {
                    kill_children(&mut children);
                    return Err(e);
                }
            };
            cmd.arg("--stage")
                .arg(si.to_string())
                .arg("--instance")
                .arg(ii.to_string())
                .arg("--dir")
                .arg(dir)
                .env(WIRE_PLAN_ENV, plan_str)
                .stdin(Stdio::null())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit());
            match cmd.spawn() {
                Ok(c) => children.push((si, ii, c)),
                Err(e) => {
                    kill_children(&mut children);
                    return Err(format!("spawn stage {si}.{ii}: {e}"));
                }
            }
        }
    }

    // Accept the last stage first, then connect to stage 0. Readiness
    // propagates backwards: a worker sends READY upstream only after
    // its own downstream links are READY, so the sink side must come up
    // before anyone upstream can finish — connecting to stage 0 first
    // would deadlock the whole mesh.
    let setup = (|| -> io::Result<(Vec<UdsLink>, Vec<UdsLink>)> {
        let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
        let mut sinks = Vec::with_capacity(plan.stages[nstages - 1].replicas);
        for _ in 0..plan.stages[nstages - 1].replicas {
            let stream = accept_with_deadline(&sink_listener, deadline)?;
            let mut l = UdsLink::new(stream, pool.clone());
            l.recv_hello(hash)?;
            l.send_ready()?;
            sinks.push(l);
        }
        let mut sources = Vec::with_capacity(plan.stages[0].replicas);
        for j in 0..plan.stages[0].replicas {
            let mut l =
                UdsLink::connect_retry(&sock_path(dir, 0, j), pool.clone(), HANDSHAKE_TIMEOUT)?;
            l.send_hello(hash, u32::MAX, j as u32)?;
            l.recv_ready()?;
            sources.push(l);
        }
        Ok((sources, sinks))
    })();
    let (sources, sinks) = match setup {
        Ok(v) => v,
        Err(e) => {
            kill_children(&mut children);
            return Err(format!("handshake: {e}"));
        }
    };

    let collector = (plan.journey_sample > 0).then(|| {
        JourneyCollector::new(
            JourneyConfig::default()
                .with_sample(plan.journey_sample)
                .with_capacity(1 << 16),
        )
    });
    let mk_journey = |salt: u64| {
        collector.as_ref().map(|c| WireJourney {
            sink: c.sink(),
            clock,
            batch_salt: salt,
        })
    };
    // Journeys are created up front so the scoped threads own them
    // outright instead of sharing the factory closure.
    let feeder_journey = mk_journey(1 << 32);
    let mut sink_journey = mk_journey(2 << 32);

    let started = Instant::now();
    let sink_stage = nstages as u32;
    let mut completed: u64 = 0;
    let mut sink_in = LinkStats::default();

    let drained: Result<(u64, f64), String> = std::thread::scope(|s| {
        let (tx, rx) = crossbeam::channel::bounded::<RxMsg>(SINK_CHANNEL_CAP);
        let reader_handles: Vec<_> = sinks
            .into_iter()
            .map(|l| spawn_reader(l, tx.clone()))
            .collect();
        drop(tx);

        let feeder_handle = s.spawn(|| {
            let mut feeder = WireFeeder {
                txset: WireTxSet::new(sources, plan.batch, plan.flush_us, Some(0)),
                pool: pool.clone(),
                journey: feeder_journey,
                seq: 0,
            };
            let fed = feed(&mut feeder);
            let finish = fed.and_then(|()| {
                feeder
                    .txset
                    .flush_all(&mut feeder.journey)
                    .and_then(|()| feeder.txset.eof_all())
                    .map_err(|e| format!("source: {e}"))
            });
            finish.map(|()| (feeder.seq, feeder.txset.send_wait_s))
        });

        let mut failure: Option<String> = None;
        let mut eof_seen = 0usize;
        while eof_seen < reader_handles.len() {
            match rx.recv() {
                Ok(RxMsg::Batch(b)) => {
                    b.for_each(|seq, bytes| {
                        if let Some(j) = &mut sink_journey {
                            let t = j.clock.now_us();
                            j.sink
                                .record_at(t, JourneyKind::Sink, seq as usize, sink_stage, 0, 0);
                        }
                        completed += 1;
                        on_item(seq, bytes);
                    });
                }
                Ok(RxMsg::Done(stats)) => {
                    sink_in.merge(&stats);
                    eof_seen += 1;
                }
                Ok(RxMsg::Fail(e)) => {
                    failure = Some(format!("sink: {e}"));
                    break;
                }
                Err(_) => {
                    if eof_seen < reader_handles.len() {
                        failure = Some("sink channel closed early".to_string());
                    }
                    break;
                }
            }
        }
        // Unblock any reader still trying to hand us frames, then any
        // feeder blocked on a dead pipeline, before joining either.
        drop(rx);
        if failure.is_some() {
            kill_children(&mut children);
        }
        for r in reader_handles {
            let _ = r.join();
        }
        let fed = feeder_handle
            .join()
            .unwrap_or_else(|_| Err("feeder thread panicked".to_string()));
        match (failure, fed) {
            (Some(e), _) => Err(e),
            (None, Err(e)) => {
                kill_children(&mut children);
                Err(e)
            }
            (None, Ok(v)) => Ok(v),
        }
    });
    let (generated, source_wait_s) = match drained {
        Ok(v) => v,
        Err(e) => {
            kill_children(&mut children);
            return Err(e);
        }
    };
    let elapsed = started.elapsed().as_secs_f64();

    // The sink-side journey buffers flush on drop; without this the
    // tail of the timeline (up to one sink chunk) would be missing
    // from the snapshot below.
    drop(sink_journey);

    // Children have sent EOF all the way down, so they are exiting:
    // read each stdout to end (stats + journey lines), then reap.
    let mut workers: Vec<WorkerStats> = Vec::new();
    let mut events: Vec<JourneyEvent> =
        collector.as_ref().map(|c| c.snapshot()).unwrap_or_default();
    let mut reap_error: Option<String> = None;
    for (si, ii, child) in children.iter_mut() {
        if reap_error.is_some() {
            break;
        }
        if let Some(out) = child.stdout.take() {
            for line in BufReader::new(out).lines() {
                let line = match line {
                    Ok(l) => l,
                    Err(_) => break,
                };
                if let Some(json) = line.strip_prefix("S ") {
                    match Value::parse(json)
                        .map_err(|e| format!("{e:?}"))
                        .and_then(|v| WorkerStats::from_value(&v))
                    {
                        Ok(ws) => workers.push(ws),
                        Err(e) => {
                            reap_error = Some(format!("stage {si}.{ii} stats line: {e}"));
                            break;
                        }
                    }
                } else if let Some(json) = line.strip_prefix("J ") {
                    if let Ok(v) = Value::parse(json) {
                        if let Ok(ev) = JourneyEvent::from_value(&v) {
                            events.push(ev);
                        }
                    }
                }
            }
        }
        if reap_error.is_none() {
            match child.wait() {
                Ok(status) if status.success() => {}
                Ok(status) => {
                    reap_error = Some(format!("worker stage {si}.{ii} exited with {status}"))
                }
                Err(e) => reap_error = Some(format!("wait stage {si}.{ii}: {e}")),
            }
        }
    }
    if let Some(e) = reap_error {
        kill_children(&mut children);
        return Err(e);
    }
    if workers.len() != children.len() {
        return Err(format!(
            "expected {} worker stats lines, got {}",
            children.len(),
            workers.len()
        ));
    }
    events.sort_by(|a, b| {
        (a.seq, a.t_us)
            .partial_cmp(&(b.seq, b.t_us))
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    // Per-stage and per-boundary aggregation.
    let mut stages: Vec<StageAgg> = plan
        .stages
        .iter()
        .map(|sp| StageAgg {
            name: sp.kernel.name(),
            replicas: sp.replicas,
            threads: sp.threads,
            items: 0,
            service_s: 0.0,
            recv_wait_s: 0.0,
            send_wait_s: 0.0,
        })
        .collect();
    let mut in_by_stage: Vec<LinkStats> = vec![LinkStats::default(); nstages];
    for w in &workers {
        let a = &mut stages[w.stage];
        a.items += w.items;
        a.service_s += w.service_s;
        a.recv_wait_s += w.recv_wait_s;
        a.send_wait_s += w.send_wait_s;
        in_by_stage[w.stage].merge(&w.link);
    }
    let mut links: Vec<LinkReport> = Vec::with_capacity(nstages + 1);
    let boundary_from = |b: usize| {
        if b == 0 {
            "source".to_string()
        } else {
            stages[b - 1].name.clone()
        }
    };
    for (b, stat) in in_by_stage.iter().enumerate() {
        links.push(LinkReport {
            label: format!("{}->{}", boundary_from(b), stages[b].name),
            frames: stat.frames_in,
            items: stat.items_in,
            bytes: stat.bytes_in,
        });
    }
    links.push(LinkReport {
        label: format!("{}->sink", stages[nstages - 1].name),
        frames: sink_in.frames_in,
        items: sink_in.items_in,
        bytes: sink_in.bytes_in,
    });

    let run = WireRun {
        generated,
        completed,
        elapsed,
        throughput: if elapsed > 0.0 {
            completed as f64 / elapsed
        } else {
            0.0
        },
        source_wait_s,
        stages,
        workers,
        links,
        events,
    };
    run.publish_link_counters();
    Ok(run)
}

/// Run a fixed set of encoded inputs through a wire plan and return the
/// outputs ordered by sequence number, exactly like
/// [`crate::run_pipeline`] does for the in-process executor.
pub fn run_wire_pipeline(
    plan: &WirePlan,
    inputs: Vec<Vec<u8>>,
) -> Result<(Vec<Vec<u8>>, WireRun), String> {
    let n = inputs.len();
    let mut out: Vec<Option<Vec<u8>>> = (0..n).map(|_| None).collect();
    let run = run_wire(
        plan,
        move |f| {
            for bytes in &inputs {
                f.push(|buf| buf.extend_from_slice(bytes))
                    .map_err(|e| format!("feed: {e}"))?;
            }
            Ok(())
        },
        |seq, bytes| {
            if let Some(slot) = out.get_mut(seq as usize) {
                *slot = Some(bytes.to_vec());
            }
        },
    )?;
    let mut ordered = Vec::with_capacity(n);
    for (i, slot) in out.into_iter().enumerate() {
        ordered.push(slot.ok_or_else(|| format!("data set {i} never reached the sink"))?);
    }
    Ok((ordered, run))
}

/// Overload-discipline knobs for [`run_wire_load`], on top of the
/// pacing options the in-process driver has.
#[derive(Clone, Copy, Debug, Default)]
pub struct WireLoadOptions {
    /// Offered arrival rate (data sets/s); `None` feeds as fast as the
    /// pipeline accepts (closed loop).
    pub rate: Option<f64>,
    /// Stop offering after this long.
    pub duration: Option<Duration>,
    /// Stop after this many offered data sets.
    pub max_datasets: Option<u64>,
    /// Admission control: a token bucket capping the *accepted* rate;
    /// arrivals beyond it are rejected at the door.
    pub admit_rate: Option<f64>,
    /// Bounded-queue shedding: drop arrivals while more than this many
    /// admitted data sets are still in flight.
    pub shed_queue: Option<u64>,
}

/// What an overloaded (or not) cross-process load run did.
#[derive(Debug)]
pub struct WireLoadReport {
    /// Arrivals offered by the load generator.
    pub offered: u64,
    /// Arrivals rejected by admission control.
    pub rejected: u64,
    /// Arrivals shed because the in-flight bound was hit.
    pub shed: u64,
    /// Data sets actually fed (offered − rejected − shed).
    pub generated: u64,
    /// Data sets that reached the sink.
    pub completed: u64,
    /// Wall seconds of the run.
    pub elapsed: f64,
    /// Sink throughput (completed / elapsed).
    pub throughput: f64,
    /// Offered rate implied by `offered / elapsed`.
    pub offered_rate: f64,
    /// End-to-end latency of completed data sets.
    pub latency: LatencySummary,
    /// The underlying engine measurements.
    pub run: WireRun,
}

/// Drive sustained load through a wire plan: paced arrivals, optional
/// admission control and queue shedding, end-to-end latency tracking.
pub fn run_wire_load(
    plan: &WirePlan,
    mut mk_payload: impl FnMut(u64, &mut Vec<u8>) + Send,
    opts: WireLoadOptions,
) -> Result<WireLoadReport, String> {
    let born: Mutex<HashMap<u64, Instant>> = Mutex::new(HashMap::new());
    let completed_ctr = AtomicU64::new(0);
    let mut samples: Vec<f64> = Vec::new();
    let mut offered: u64 = 0;
    let mut rejected: u64 = 0;
    let mut shed: u64 = 0;
    let duration = opts.duration.unwrap_or(Duration::from_secs(2));
    let start = Instant::now();

    let run = {
        let born = &born;
        let completed_ctr = &completed_ctr;
        let offered = &mut offered;
        let rejected = &mut rejected;
        let shed = &mut shed;
        let samples = &mut samples;
        run_wire(
            plan,
            move |f| {
                let mut tokens: f64 = 1.0;
                let mut last_refill = Instant::now();
                loop {
                    if let Some(max) = opts.max_datasets {
                        if *offered >= max {
                            break;
                        }
                    }
                    if opts.max_datasets.is_none() && start.elapsed() >= duration {
                        break;
                    }
                    // Pace the *offered* arrivals; shedding and
                    // rejection consume an arrival without feeding it.
                    if let Some(rate) = opts.rate {
                        let due = start + Duration::from_secs_f64(*offered as f64 / rate);
                        let now = Instant::now();
                        if now < due {
                            f.flush().map_err(|e| format!("flush: {e}"))?;
                            std::thread::sleep(due - now);
                        }
                    }
                    *offered += 1;
                    if let Some(admit) = opts.admit_rate {
                        let now = Instant::now();
                        tokens = (tokens + now.duration_since(last_refill).as_secs_f64() * admit)
                            .min((admit * 0.1).max(1.0));
                        last_refill = now;
                        if tokens < 1.0 {
                            *rejected += 1;
                            continue;
                        }
                        tokens -= 1.0;
                    }
                    if let Some(bound) = opts.shed_queue {
                        let in_flight = f
                            .seq()
                            .saturating_sub(completed_ctr.load(Ordering::Relaxed));
                        if in_flight >= bound {
                            *shed += 1;
                            if opts.rate.is_none() {
                                // Closed loop with a full queue: back
                                // off briefly instead of spinning.
                                f.flush().map_err(|e| format!("flush: {e}"))?;
                                std::thread::sleep(Duration::from_micros(50));
                            }
                            continue;
                        }
                    }
                    let seq = f.seq();
                    born.lock().unwrap().insert(seq, Instant::now());
                    f.push(|buf| mk_payload(seq, buf))
                        .map_err(|e| format!("feed: {e}"))?;
                }
                Ok(())
            },
            |seq, _bytes| {
                completed_ctr.fetch_add(1, Ordering::Relaxed);
                if let Some(t0) = born.lock().unwrap().remove(&seq) {
                    samples.push(t0.elapsed().as_secs_f64());
                }
            },
        )?
    };

    let elapsed = run.elapsed;
    Ok(WireLoadReport {
        offered,
        rejected,
        shed,
        generated: run.generated,
        completed: run.completed,
        elapsed,
        throughput: run.throughput,
        offered_rate: if elapsed > 0.0 {
            offered as f64 / elapsed
        } else {
            0.0
        },
        latency: LatencySummary::from_samples(&mut samples),
        run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcLink;
    use crate::wire::WireStagePlan;

    #[test]
    fn txset_coalesces_to_batch_and_round_robins() {
        let (tx_a, mut rx_a) = InProcLink::pair(16);
        let (tx_b, mut rx_b) = InProcLink::pair(16);
        let mut set = WireTxSet::new(vec![tx_a, tx_b], 3, 1_000_000, Some(1));
        let mut journey = None;
        for seq in 0..12u64 {
            set.push(
                WireItem {
                    seq,
                    payload: crate::pool::Lease::detached(vec![seq as u8]),
                },
                &mut journey,
            )
            .unwrap();
        }
        set.flush_all(&mut journey).unwrap();
        set.eof_all().unwrap();
        // Destination a gets even seqs, b odd, coalesced in threes.
        let mut a_seqs = Vec::new();
        while let Some(b) = rx_a.recv_data().unwrap() {
            assert!(b.len() <= 3);
            b.for_each(|s, _| a_seqs.push(s));
        }
        assert_eq!(a_seqs, vec![0, 2, 4, 6, 8, 10]);
        let mut b_seqs = Vec::new();
        while let Some(b) = rx_b.recv_data().unwrap() {
            b.for_each(|s, _| b_seqs.push(s));
        }
        assert_eq!(b_seqs, vec![1, 3, 5, 7, 9, 11]);
    }

    #[test]
    fn txset_age_flush_releases_stragglers() {
        let (tx, mut rx) = InProcLink::pair(16);
        let mut set = WireTxSet::new(vec![tx], 64, 0, Some(1));
        let mut journey = None;
        set.push(
            WireItem {
                seq: 0,
                payload: crate::pool::Lease::detached(vec![1]),
            },
            &mut journey,
        )
        .unwrap();
        // flush_us = 0 means any pending item is already aged.
        set.flush_aged(&mut journey).unwrap();
        set.eof_all().unwrap();
        assert_eq!(rx.recv_data().unwrap().expect("flushed").len(), 1);
        assert!(rx.recv_data().unwrap().is_none());
    }

    #[test]
    fn worker_stats_round_trip_their_stdout_form() {
        let ws = WorkerStats {
            stage: 2,
            instance: 1,
            items: 42,
            recv_wait_s: 0.5,
            service_s: 1.25,
            send_wait_s: 0.125,
            lifetime_s: 2.0,
            link: LinkStats {
                frames_out: 7,
                items_out: 42,
                bytes_out: 9001,
                frames_in: 6,
                items_in: 42,
                bytes_in: 8000,
            },
        };
        let v = ws.to_value();
        let back = WorkerStats::from_value(&Value::parse(&v.to_json()).unwrap()).unwrap();
        assert_eq!(back, ws);
    }

    #[test]
    fn probe_fails_under_the_test_harness() {
        // current_exe is the libtest binary, which is not a worker; the
        // probe must say so rather than wedge or false-positive.
        if std::env::var(WORKER_BIN_ENV).is_err() {
            assert!(!worker_probe());
        }
    }

    #[test]
    fn wire_load_options_default_to_no_discipline() {
        let o = WireLoadOptions::default();
        assert!(o.admit_rate.is_none() && o.shed_queue.is_none() && o.rate.is_none());
        // Silence the unused-plan-type lint path: a minimal plan builds.
        let p = WirePlan::new(vec![WireStagePlan::new(WireKernel::Echo, 1, 1)]);
        assert_eq!(p.stage_names(), vec!["echo"]);
    }
}
