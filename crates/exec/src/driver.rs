//! Sustained-load driving: generate data sets at a target rate (or
//! open-loop, as fast as backpressure admits) and measure what the
//! pipeline actually serves — achieved datasets/sec and end-to-end
//! latency percentiles. This is the measurement-side counterpart of the
//! paper's objective: the solver predicts stream throughput
//! `1 / max_i (f_i / r_i)`; [`run_load`] observes it on a running
//! pipeline.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::executor::{execute, PipelinePlan, PipelineStats};
use crate::stage::Data;

/// Sink channel capacity (in messages) used for load runs.
const LOAD_SINK_CAP: usize = 1024;

/// How to drive the pipeline.
#[derive(Clone, Copy, Debug)]
pub struct LoadOptions {
    /// Target offered rate in data sets per second; `None` is open loop
    /// (push as fast as stage-0 backpressure admits).
    pub rate: Option<f64>,
    /// Stop feeding after this long.
    pub duration: Option<Duration>,
    /// Stop feeding after this many data sets (offered arrivals, when
    /// admission control or shedding is active).
    pub max_datasets: Option<usize>,
    /// Admission control: a token bucket capping the *accepted* rate;
    /// arrivals beyond it are rejected at the door instead of queueing.
    pub admit_rate: Option<f64>,
    /// Bounded-queue shedding: drop arrivals while more than this many
    /// admitted data sets are still in flight, instead of letting the
    /// source block on backpressure.
    pub shed_queue: Option<usize>,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            rate: None,
            duration: Some(Duration::from_secs(2)),
            max_datasets: None,
            admit_rate: None,
            shed_queue: None,
        }
    }
}

/// End-to-end latency summary (seconds from source push to sink
/// arrival; the source's own admission wait is not included).
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Mean latency.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Worst observed.
    pub max: f64,
}

impl LatencySummary {
    /// Summarise a sample set (sorted in place).
    pub fn from_samples(samples: &mut [f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let pct = |q: f64| samples[((samples.len() - 1) as f64 * q).round() as usize];
        Self {
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            max: *samples.last().expect("non-empty"),
        }
    }
}

/// What a load run measured.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Arrivals the load generator offered (equals `generated` unless
    /// admission control or shedding turned some away).
    pub offered: usize,
    /// Arrivals rejected by admission control.
    pub rejected: usize,
    /// Arrivals shed because the in-flight bound was hit.
    pub shed: usize,
    /// Data sets the source pushed.
    pub generated: usize,
    /// Data sets that reached the sink (equals `generated`: the pipeline
    /// drains before the run ends).
    pub completed: usize,
    /// Wall-clock seconds for the whole run (feed + drain).
    pub elapsed: f64,
    /// Achieved throughput, data sets per second.
    pub throughput: f64,
    /// The target rate the source paced itself to, if any.
    pub offered_rate: Option<f64>,
    /// End-to-end latency summary.
    pub latency: LatencySummary,
    /// Full per-stage/per-instance statistics of the run.
    pub stats: PipelineStats,
}

/// Drive `plan` with data sets built by `make(seq)` until the rate/
/// duration/count limits in `opts` are reached, then drain and report.
///
/// Pacing: with a target rate, data set `n` is due at `start + n/rate`;
/// the source sleeps until then (flushing any aged partial batch first,
/// so pacing never extends the batching latency bound). Open loop pushes
/// back-to-back and measures the backpressure-limited maximum.
///
/// # Panics
///
/// Panics if a stage function panics or the plan is empty.
pub fn run_load(
    plan: &PipelinePlan,
    mut make: impl FnMut(usize) -> Data + Send,
    opts: &LoadOptions,
) -> LoadReport {
    let LoadOptions {
        rate,
        duration,
        max_datasets,
        admit_rate,
        shed_queue,
    } = *opts;
    // Overload-discipline counters, shared between the source thread
    // (which decides) and the sink (which retires in-flight datasets).
    let done_ctr = AtomicUsize::new(0);
    let offered_ctr = AtomicUsize::new(0);
    let rejected_ctr = AtomicUsize::new(0);
    let shed_ctr = AtomicUsize::new(0);
    let (done_ref, offered_ref, rejected_ref, shed_ref) =
        (&done_ctr, &offered_ctr, &rejected_ctr, &shed_ctr);
    let rec = pipemap_obs::global();
    let lat_hist = rec.histogram("exec.load.latency_s");
    let mut samples: Vec<f64> = Vec::new();
    // SLO alerting: evaluate every completed data set's end-to-end
    // latency against the objective, emitting burn-rate events into the
    // plan's event log.
    let mut alerts = match (&plan.events, plan.slo) {
        (Some(log), Some(slo)) => {
            Some((pipemap_obs::AlertEngine::new(slo, log.clone()), log.clone()))
        }
        _ => None,
    };
    // Reading the clock per completion is measurable at hundreds of
    // thousands of datasets per second, and the burn windows bucket
    // time far coarser than a few dozen datasets anyway — so refresh
    // the alert timestamp every 32 observations instead of every one.
    let mut alert_t_us = 0.0;
    let mut alert_ctr = 0u32;
    // Journey tracing: the load driver owns the sink side, so it records
    // the terminal `Sink` event as each data set completes.
    let mut jsink = plan
        .journeys
        .as_ref()
        .map(pipemap_obs::JourneyCollector::sink);
    let sink_stage = plan.stages.len() as u32;
    let stats = execute(
        plan,
        LOAD_SINK_CAP,
        move |feeder| {
            let start = Instant::now();
            let mut offered = 0usize;
            let mut tokens: f64 = 1.0;
            let mut last_refill = Instant::now();
            loop {
                if let Some(limit) = duration {
                    if start.elapsed() >= limit {
                        break;
                    }
                }
                if let Some(limit) = max_datasets {
                    if offered >= limit {
                        break;
                    }
                }
                // Pacing is keyed off *offered* arrivals: sheds and
                // rejections consume an arrival slot without feeding.
                if let Some(rate) = rate {
                    let due = start + Duration::from_secs_f64(offered as f64 / rate);
                    let now = Instant::now();
                    if due > now {
                        feeder.flush();
                        std::thread::sleep(due - now);
                    }
                }
                offered += 1;
                offered_ref.store(offered, Ordering::Relaxed);
                if let Some(admit) = admit_rate {
                    let now = Instant::now();
                    tokens = (tokens + now.duration_since(last_refill).as_secs_f64() * admit)
                        .min((admit * 0.1).max(1.0));
                    last_refill = now;
                    if tokens < 1.0 {
                        rejected_ref.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    tokens -= 1.0;
                }
                if let Some(bound) = shed_queue {
                    let in_flight = feeder
                        .pushed()
                        .saturating_sub(done_ref.load(Ordering::Relaxed));
                    if in_flight >= bound {
                        shed_ref.fetch_add(1, Ordering::Relaxed);
                        if rate.is_none() {
                            // Closed loop with a full queue: back off
                            // briefly instead of spinning.
                            feeder.flush();
                            std::thread::sleep(Duration::from_micros(50));
                        }
                        continue;
                    }
                }
                feeder.push(make(feeder.pushed()));
            }
        },
        |item| {
            done_ref.fetch_add(1, Ordering::Relaxed);
            if let Some(j) = jsink.as_mut() {
                j.record(pipemap_obs::JourneyKind::Sink, item.seq, sink_stage, 0, 0);
            }
            let latency = item.born.elapsed().as_secs_f64();
            lat_hist.record(latency);
            samples.push(latency);
            if let Some((engine, log)) = alerts.as_mut() {
                if alert_ctr.is_multiple_of(32) {
                    alert_t_us = log.now_us();
                }
                alert_ctr = alert_ctr.wrapping_add(1);
                engine.observe_latency(alert_t_us, latency);
            }
        },
    );
    LoadReport {
        offered: offered_ctr.load(Ordering::Relaxed),
        rejected: rejected_ctr.load(Ordering::Relaxed),
        shed: shed_ctr.load(Ordering::Relaxed),
        generated: stats.generated,
        completed: stats.datasets,
        elapsed: stats.elapsed,
        throughput: stats.throughput,
        offered_rate: rate,
        latency: LatencySummary::from_samples(&mut samples),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::StagePlan;
    use crate::stage::Stage;

    fn light_plan() -> PipelinePlan {
        PipelinePlan::new(vec![
            StagePlan::serial(Stage::new("x3", |x: u64, _| x.wrapping_mul(3))),
            StagePlan::serial(Stage::new("p1", |x: u64, _| x.wrapping_add(1))),
        ])
    }

    #[test]
    fn open_loop_count_limited_run_completes_everything() {
        let report = run_load(
            &light_plan().with_batch(8).with_queue_depth(4),
            |seq| Box::new(seq as u64),
            &LoadOptions {
                rate: None,
                duration: None,
                max_datasets: Some(500),
                ..LoadOptions::default()
            },
        );
        assert_eq!(report.generated, 500);
        assert_eq!(report.completed, 500);
        assert!(report.throughput > 0.0);
        assert!(report.latency.p50 <= report.latency.p99);
        assert!(report.latency.p99 <= report.latency.max);
        assert!(report.latency.max > 0.0);
    }

    #[test]
    fn rate_limited_run_paces_the_source() {
        // 200/s for ~0.25 s ≈ 50 data sets; the stages are near-free so
        // the achieved rate tracks the offered rate, not the open-loop
        // maximum (which is orders of magnitude higher).
        let report = run_load(
            &light_plan(),
            |seq| Box::new(seq as u64),
            &LoadOptions {
                rate: Some(200.0),
                duration: Some(Duration::from_millis(250)),
                max_datasets: None,
                ..LoadOptions::default()
            },
        );
        assert!(report.completed > 10, "completed {}", report.completed);
        assert!(
            report.throughput < 400.0,
            "rate limit not applied: {} ds/s",
            report.throughput
        );
    }

    #[test]
    fn duration_limited_run_stops() {
        let t0 = Instant::now();
        let report = run_load(
            &light_plan().with_batch(16).with_queue_depth(4),
            |seq| Box::new(seq as u64),
            &LoadOptions {
                rate: None,
                duration: Some(Duration::from_millis(120)),
                max_datasets: None,
                ..LoadOptions::default()
            },
        );
        assert!(t0.elapsed() < Duration::from_secs(5));
        assert_eq!(report.generated, report.completed);
        assert!(report.completed > 0);
    }

    #[test]
    fn slo_burn_and_backpressure_events_fire_under_overload() {
        use pipemap_obs::{EventKind, EventLog, EventLogConfig, SloConfig};
        // A 2 ms stage behind a depth-1 queue, driven open loop: every
        // latency blows the 1 µs objective (fast burn fires) and the
        // source blocks on stage-0 admission (backpressure onset).
        let log = EventLog::new(EventLogConfig::default());
        let plan = PipelinePlan::new(vec![StagePlan::serial(Stage::new("slow", |x: u64, _| {
            std::thread::sleep(Duration::from_millis(2));
            x
        }))])
        .with_events(log.clone())
        .with_slo(SloConfig::default().with_objective(1e-6, 0.99));
        let report = run_load(
            &plan,
            |seq| Box::new(seq as u64),
            &LoadOptions {
                rate: None,
                duration: None,
                max_datasets: Some(60),
                ..LoadOptions::default()
            },
        );
        assert_eq!(report.completed, 60);
        let events = log.snapshot();
        assert!(
            events.iter().any(|e| e.kind == EventKind::SloFastBurn),
            "no fast-burn event in {events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| e.kind == EventKind::BackpressureOnset),
            "no backpressure onset in {events:?}"
        );
        // Timestamps ride the log's shared epoch, so they are ordered.
        for w in events.windows(2) {
            assert!(w[0].t_us <= w[1].t_us);
        }
    }

    #[test]
    fn shedding_bounds_in_flight_work_and_counts_drops() {
        // A slow serial stage driven open loop with a tight in-flight
        // bound: most arrivals must be shed, everything admitted must
        // complete, and the books must balance.
        let plan = PipelinePlan::new(vec![StagePlan::serial(Stage::new("slow", |x: u64, _| {
            std::thread::sleep(Duration::from_micros(500));
            x
        }))])
        .with_batch(1)
        // Queue deep enough that the shed bound, not channel
        // backpressure, is what limits in-flight work.
        .with_queue_depth(16);
        let report = run_load(
            &plan,
            |seq| Box::new(seq as u64),
            &LoadOptions {
                rate: None,
                duration: None,
                max_datasets: Some(2_000),
                shed_queue: Some(4),
                ..LoadOptions::default()
            },
        );
        assert_eq!(report.offered, 2_000);
        assert_eq!(report.generated + report.shed + report.rejected, 2_000);
        assert!(report.shed > 0, "tight bound must shed: {report:?}");
        assert_eq!(report.generated, report.completed);
    }

    #[test]
    fn admission_control_rejects_beyond_the_token_rate() {
        // Offer open-loop but admit at ~200/s for a short window: the
        // accepted count must be far below the offered count.
        let report = run_load(
            &light_plan(),
            |seq| Box::new(seq as u64),
            &LoadOptions {
                rate: None,
                duration: Some(Duration::from_millis(150)),
                admit_rate: Some(200.0),
                ..LoadOptions::default()
            },
        );
        assert!(report.rejected > 0, "open loop must outrun 200/s");
        assert!(
            report.generated < report.offered / 2,
            "admission not binding: {report:?}"
        );
        assert_eq!(report.generated, report.completed);
    }

    #[test]
    fn empty_run_reports_zeros() {
        let report = run_load(
            &light_plan(),
            |seq| Box::new(seq as u64),
            &LoadOptions {
                rate: None,
                duration: None,
                max_datasets: Some(0),
                ..LoadOptions::default()
            },
        );
        assert_eq!(report.completed, 0);
        assert_eq!(report.latency.p99, 0.0);
    }
}
