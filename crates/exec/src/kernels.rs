//! Data parallel kernels used by the example applications.
//!
//! Each kernel takes a `threads` argument and splits its independent work
//! units (columns, rows, disparity levels) across that many worker
//! threads with `std::thread::scope` — the shared-memory analogue of the
//! processors assigned to a module instance. `threads = 1` runs inline.

use std::f64::consts::PI;

/// A complex number (the FFT element type).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// A new complex number.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }

    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_inplace(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half].mul(w);
                chunk[i] = u.add(v);
                chunk[i + half] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

/// Reference O(n²) DFT, for testing the FFT.
pub fn dft_naive(data: &[Complex]) -> Vec<Complex> {
    let n = data.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::default();
            for (j, &x) in data.iter().enumerate() {
                let ang = -2.0 * PI * (k * j) as f64 / n as f64;
                acc = acc.add(x.mul(Complex::new(ang.cos(), ang.sin())));
            }
            acc
        })
        .collect()
}

/// Split `count` work units into at most `threads` contiguous ranges.
pub fn split_ranges(count: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let threads = threads.max(1).min(count.max(1));
    let base = count / threads;
    let extra = count % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// A row-major square complex matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    /// Edge length.
    pub n: usize,
    /// Row-major data, `n * n` elements.
    pub data: Vec<Complex>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zero(n: usize) -> Self {
        Self {
            n,
            data: vec![Complex::default(); n * n],
        }
    }

    /// Build from a function of (row, col).
    pub fn from_fn(n: usize, f: impl Fn(usize, usize) -> Complex) -> Self {
        let mut m = Self::zero(n);
        for r in 0..n {
            for c in 0..n {
                m.data[r * n + c] = f(r, c);
            }
        }
        m
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[Complex] {
        &self.data[r * self.n..(r + 1) * self.n]
    }
}

/// FFT every row of the matrix, splitting rows across `threads`.
pub fn fft_rows(m: &mut Matrix, threads: usize) {
    let n = m.n;
    if threads <= 1 {
        // Inline fast path: no row-pointer scratch vector, no scope.
        for row in m.data.chunks_mut(n) {
            fft_inplace(row);
        }
        return;
    }
    let rows: Vec<&mut [Complex]> = m.data.chunks_mut(n).collect();
    run_chunks(rows, threads, fft_inplace);
}

/// Transpose the matrix in place (single-threaded; the transpose is the
/// *communication* step of FFT-Hist, modelled separately).
pub fn transpose(m: &mut Matrix) {
    let n = m.n;
    for r in 0..n {
        for c in r + 1..n {
            m.data.swap(r * n + c, c * n + r);
        }
    }
}

/// FFT every column: transpose, row-FFT, transpose back.
pub fn fft_cols(m: &mut Matrix, threads: usize) {
    transpose(m);
    fft_rows(m, threads);
    transpose(m);
}

/// Histogram of squared magnitudes in `bins` buckets over `[0, max)`,
/// computed with per-thread partial histograms merged at the end.
pub fn histogram(m: &Matrix, bins: usize, max: f64, threads: usize) -> Vec<u64> {
    assert!(bins >= 1 && max > 0.0);
    let mut total = vec![0u64; bins];
    if threads <= 1 {
        // Inline fast path: accumulate straight into the result — no
        // row-pointer scratch, no partials, no scope.
        for x in &m.data {
            let b = ((x.norm_sq() / max) * bins as f64) as usize;
            total[b.min(bins - 1)] += 1;
        }
        return total;
    }
    let rows: Vec<&[Complex]> = m.data.chunks(m.n).collect();
    let ranges = split_ranges(rows.len(), threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|range| {
                let rows = &rows[range.clone()];
                s.spawn(move || {
                    let mut h = vec![0u64; bins];
                    for row in rows {
                        for x in *row {
                            let v = x.norm_sq();
                            let b = ((v / max) * bins as f64) as usize;
                            h[b.min(bins - 1)] += 1;
                        }
                    }
                    h
                })
            })
            .collect();
        // Merge partials into the one accumulator as workers finish,
        // instead of first collecting a Vec<Vec<u64>> of them.
        for h in handles {
            for (t, v) in total.iter_mut().zip(h.join().unwrap()) {
                *t += v;
            }
        }
    });
    total
}

/// A grayscale image, row-major `u8` pixels.
#[derive(Clone, Debug, PartialEq)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Pixels, `width * height`.
    pub pixels: Vec<u8>,
}

impl Image {
    /// A constant-valued image.
    pub fn filled(width: usize, height: usize, value: u8) -> Self {
        Self {
            width,
            height,
            pixels: vec![value; width * height],
        }
    }

    /// Build from a function of (x, y).
    pub fn from_fn(width: usize, height: usize, f: impl Fn(usize, usize) -> u8) -> Self {
        let mut pixels = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                pixels.push(f(x, y));
            }
        }
        Self {
            width,
            height,
            pixels,
        }
    }
}

/// Per-disparity absolute-difference images between a reference and a
/// shifted image (multibaseline stereo's `difference` task): output `d`
/// holds `|ref(x, y) − other(x + d, y)|`. Disparities split across
/// threads.
pub fn disparity_differences(
    reference: &Image,
    other: &Image,
    disparities: usize,
    threads: usize,
) -> Vec<Vec<u16>> {
    assert_eq!(reference.width, other.width);
    assert_eq!(reference.height, other.height);
    let (w, h) = (reference.width, reference.height);
    let work: Vec<usize> = (0..disparities).collect();
    map_units(&work, threads, |&d| {
        let mut out = vec![0u16; w * h];
        for y in 0..h {
            for x in 0..w {
                let rx = reference.pixels[y * w + x] as i32;
                let ox = if x + d < w {
                    other.pixels[y * w + x + d] as i32
                } else {
                    0
                };
                out[y * w + x] = (rx - ox).unsigned_abs() as u16;
            }
        }
        out
    })
}

/// Error images: box-filtered (windowed SSD) version of each difference
/// image. Disparities split across threads.
pub fn error_images(
    diffs: &[Vec<u16>],
    width: usize,
    height: usize,
    window: usize,
    threads: usize,
) -> Vec<Vec<u32>> {
    map_units(diffs, threads, |diff| {
        let mut out = vec![0u32; width * height];
        let r = window as isize;
        for y in 0..height {
            for x in 0..width {
                let mut acc = 0u32;
                for dy in -r..=r {
                    for dx in -r..=r {
                        let yy = y as isize + dy;
                        let xx = x as isize + dx;
                        if yy >= 0 && (yy as usize) < height && xx >= 0 && (xx as usize) < width {
                            let v = diff[yy as usize * width + xx as usize] as u32;
                            acc += v * v;
                        }
                    }
                }
                out[y * width + x] = acc;
            }
        }
        out
    })
}

/// Depth image: per-pixel argmin across the error images (the stereo
/// `min-depth` reduction). Pixels split across threads by rows.
pub fn min_depth(errors: &[Vec<u32>], width: usize, height: usize, threads: usize) -> Vec<u8> {
    assert!(!errors.is_empty());
    let rows: Vec<usize> = (0..height).collect();
    let per_row = map_units(&rows, threads, |&y| {
        let mut row = vec![0u8; width];
        for (x, out) in row.iter_mut().enumerate() {
            let mut best = u32::MAX;
            let mut best_d = 0u8;
            for (d, e) in errors.iter().enumerate() {
                let v = e[y * width + x];
                if v < best {
                    best = v;
                    best_d = d as u8;
                }
            }
            *out = best_d;
        }
        row
    });
    per_row.into_iter().flatten().collect()
}

/// FIR filter of each channel of a multi-channel signal (the radar
/// pulse-compression stand-in). Channels split across threads.
pub fn fir_filter(channels: &[Vec<f64>], taps: &[f64], threads: usize) -> Vec<Vec<f64>> {
    map_units(channels, threads, |ch| {
        let mut out = vec![0.0; ch.len()];
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (t, &w) in taps.iter().enumerate() {
                if i >= t {
                    acc += w * ch[i - t];
                }
            }
            *o = acc;
        }
        out
    })
}

/// Map `f` over `units` with up to `threads` scoped worker threads,
/// preserving order.
pub fn map_units<T: Sync, R: Send>(
    units: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    if threads <= 1 || units.len() <= 1 {
        // Fast path: map on the calling thread, no scope spawn.
        return units.iter().map(f).collect();
    }
    let ranges = split_ranges(units.len(), threads);
    let mut chunks: Vec<Vec<R>> = std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = ranges
            .iter()
            .map(|range| {
                let slice = &units[range.clone()];
                s.spawn(move || slice.iter().map(f).collect::<Vec<R>>())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut out = Vec::with_capacity(units.len());
    for c in &mut chunks {
        out.append(c);
    }
    out
}

/// Run `f` over mutable chunks with up to `threads` scoped threads.
/// `threads <= 1` runs inline on the caller — no range splitting, no
/// scoped spawn — so a serial instance pays nothing for the machinery.
fn run_chunks<T: Send>(chunks: Vec<&mut [T]>, threads: usize, f: impl Fn(&mut [T]) + Sync) {
    if threads <= 1 || chunks.len() <= 1 {
        for c in chunks {
            f(c);
        }
        return;
    }
    let ranges = split_ranges(chunks.len(), threads);
    let mut chunks = chunks;
    std::thread::scope(|s| {
        let f = &f;
        // Partition the chunk list itself across threads.
        let mut rest = chunks.as_mut_slice();
        let mut handles = Vec::new();
        for range in &ranges {
            let (mine, other) = rest.split_at_mut(range.len());
            rest = other;
            handles.push(s.spawn(move || {
                for c in mine {
                    f(c);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6
    }

    #[test]
    fn fft_matches_naive_dft() {
        let data: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let expect = dft_naive(&data);
        let mut got = data.clone();
        fft_inplace(&mut got);
        for (g, e) in got.iter().zip(&expect) {
            assert!(close(*g, *e), "{g:?} vs {e:?}");
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::default(); 16];
        data[0] = Complex::new(1.0, 0.0);
        fft_inplace(&mut data);
        for x in &data {
            assert!(close(*x, Complex::new(1.0, 0.0)));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut data = vec![Complex::default(); 12];
        fft_inplace(&mut data);
    }

    #[test]
    fn split_ranges_covers_exactly() {
        for count in [0usize, 1, 7, 16, 100] {
            for threads in [1usize, 2, 3, 8, 200] {
                let rs = split_ranges(count, threads);
                let total: usize = rs.iter().map(|r| r.len()).sum();
                assert_eq!(total, count, "count={count} threads={threads}");
                for w in rs.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                // Balanced within one unit.
                if let (Some(max), Some(min)) = (
                    rs.iter().map(|r| r.len()).max(),
                    rs.iter().map(|r| r.len()).min(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn row_and_col_ffts_are_threadcount_invariant() {
        let m0 = Matrix::from_fn(16, |r, c| Complex::new((r * 16 + c) as f64, 0.0));
        let mut a = m0.clone();
        let mut b = m0.clone();
        fft_rows(&mut a, 1);
        fft_rows(&mut b, 4);
        assert_eq!(a, b);
        let mut a = m0.clone();
        let mut b = m0;
        fft_cols(&mut a, 1);
        fft_cols(&mut b, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn transpose_involution() {
        let m0 = Matrix::from_fn(8, |r, c| Complex::new(r as f64, c as f64));
        let mut m = m0.clone();
        transpose(&mut m);
        assert_eq!(m.data[8], Complex::new(0.0, 1.0));
        transpose(&mut m);
        assert_eq!(m, m0);
    }

    #[test]
    fn full_2d_fft_equals_col_then_row() {
        // colffts then rowffts is the 2D FFT; check against separable
        // naive computation on a small case.
        let mut m = Matrix::from_fn(8, |r, c| Complex::new((r + 2 * c) as f64, 0.0));
        let mut rows_first = m.clone();
        fft_cols(&mut m, 2);
        fft_rows(&mut m, 2);
        // Row-then-col must give the same (separability).
        fft_rows(&mut rows_first, 2);
        fft_cols(&mut rows_first, 2);
        for (a, b) in m.data.iter().zip(&rows_first.data) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn histogram_counts_all_points_and_is_threadcount_invariant() {
        let m = Matrix::from_fn(16, |r, c| Complex::new((r % 4) as f64, (c % 3) as f64));
        let h1 = histogram(&m, 10, 32.0, 1);
        let h4 = histogram(&m, 10, 32.0, 4);
        assert_eq!(h1, h4);
        assert_eq!(h1.iter().sum::<u64>(), 256);
    }

    #[test]
    fn disparity_difference_of_shifted_image_is_zero_at_true_shift() {
        // other(x) = ref(x + 3): at disparity 3 the difference vanishes
        // (away from the border).
        let reference = Image::from_fn(32, 8, |x, y| ((x * 7 + y * 13) % 251) as u8);
        let other = Image::from_fn(32, 8, |x, y| {
            if x + 3 < 32 {
                reference.pixels[y * 32 + x + 3]
            } else {
                0
            }
        });
        // Difference `d` compares first(x) with second(x + d), so the
        // pair that vanishes at d = 3 is (other, reference):
        // other(x) = ref(x + 3) = reference(x + 3).
        let flipped = disparity_differences(&other, &reference, 8, 2);
        let d3 = &flipped[3];
        let interior: u32 = (0..8)
            .flat_map(|y| (0..29).map(move |x| d3[y * 32 + x] as u32))
            .sum();
        assert_eq!(interior, 0, "true disparity should match exactly");
        // And d = 0 must not be zero.
        let d0: u32 = flipped[0].iter().map(|&v| v as u32).sum();
        assert!(d0 > 0);
    }

    #[test]
    fn min_depth_picks_true_disparity() {
        let reference = Image::from_fn(64, 16, |x, y| ((x * 31 + y * 17) % 199) as u8);
        let other = Image::from_fn(64, 16, |x, y| {
            if x + 2 < 64 {
                reference.pixels[y * 64 + x + 2]
            } else {
                0
            }
        });
        let diffs = disparity_differences(&other, &reference, 6, 3);
        let errors = error_images(&diffs, 64, 16, 1, 3);
        let depth = min_depth(&errors, 64, 16, 2);
        // Interior pixels should report disparity 2.
        let mut correct = 0;
        let mut total = 0;
        for y in 2..14 {
            for x in 2..58 {
                total += 1;
                if depth[y * 64 + x] == 2 {
                    correct += 1;
                }
            }
        }
        assert!(
            correct as f64 / total as f64 > 0.95,
            "only {correct}/{total} pixels at true disparity"
        );
    }

    #[test]
    fn fir_filter_identity_tap() {
        let channels = vec![vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]];
        let out = fir_filter(&channels, &[1.0], 2);
        assert_eq!(out, channels);
        // Two-tap moving sum.
        let out = fir_filter(&channels, &[1.0, 1.0], 1);
        assert_eq!(out[0], vec![1.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn map_units_preserves_order() {
        let units: Vec<usize> = (0..57).collect();
        let out = map_units(&units, 5, |&x| x * 2);
        assert_eq!(out, (0..57).map(|x| x * 2).collect::<Vec<_>>());
    }
}
