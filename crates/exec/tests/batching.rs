//! Property test: the batched, pooled data plane is an exact drop-in for
//! the unbatched reference path.
//!
//! For any replication degrees, batch size, queue depth, stream length
//! and input seed, running the same stage chain
//!
//! * unbatched (`batch = 1`, plain `Vec<u64>` payloads — the paper's
//!   rendezvous-style reference),
//! * batched (`batch = B`), and
//! * batched over pooled [`Lease`] payloads
//!
//! must produce bit-identical outputs in the same order: round-robin
//! dispatch keys on the sequence number, so batching only changes *when*
//! items travel, never *where* or in what final order.
//!
//! Worker threads per instance come from `PIPEMAP_THREADS` (default 1,
//! capped at 4) so CI can exercise both the serial fast path and the
//! multi-threaded kernels.

use pipemap_exec::{run_pipeline, BufferPool, Data, Lease, PipelinePlan, Stage, StagePlan};
use proptest::prelude::*;

const PAYLOAD_LEN: usize = 8;

fn env_threads() -> usize {
    std::env::var("PIPEMAP_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(1)
        .clamp(1, 4)
}

/// Deterministic per-stage transform; must be injective enough that a
/// misrouted or reordered data set cannot collide back to the right
/// answer by accident.
fn mix(x: u64, salt: u64) -> u64 {
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15 | 1)
        .rotate_left(((salt % 61) + 1) as u32)
        ^ salt.wrapping_mul(0xD131_0BA6_985D_F3A5)
}

fn input_vec(seed: u64, i: usize) -> Vec<u64> {
    (0..PAYLOAD_LEN)
        .map(|j| seed ^ ((i as u64) << 32) ^ mix(j as u64, seed))
        .collect()
}

fn plain_stage(si: usize) -> Stage {
    Stage::new(format!("s{si}"), move |mut v: Vec<u64>, _threads| {
        for x in v.iter_mut() {
            *x = mix(*x, si as u64 + 1);
        }
        v
    })
}

fn pooled_stage(si: usize) -> Stage {
    Stage::new(
        format!("s{si}"),
        move |mut lease: Lease<Vec<u64>>, _threads| {
            for x in lease.iter_mut() {
                *x = mix(*x, si as u64 + 1);
            }
            lease
        },
    )
}

fn plan(
    replicas: &[usize],
    threads: usize,
    batch: usize,
    queue_depth: usize,
    make_stage: fn(usize) -> Stage,
) -> PipelinePlan {
    let stages = replicas
        .iter()
        .enumerate()
        .map(|(si, &r)| StagePlan::new(make_stage(si), r, threads))
        .collect();
    PipelinePlan::new(stages)
        .with_queue_depth(queue_depth)
        .with_batch(batch)
}

fn run_plain(
    replicas: &[usize],
    threads: usize,
    batch: usize,
    queue_depth: usize,
    n: usize,
    seed: u64,
) -> Vec<Vec<u64>> {
    let plan = plan(replicas, threads, batch, queue_depth, plain_stage);
    let inputs: Vec<Data> = (0..n)
        .map(|i| Box::new(input_vec(seed, i)) as Data)
        .collect();
    let (out, stats) = run_pipeline(&plan, inputs);
    assert_eq!(stats.datasets, n);
    out.into_iter()
        .map(|d| *d.downcast::<Vec<u64>>().expect("plain output"))
        .collect()
}

fn run_pooled(
    replicas: &[usize],
    threads: usize,
    batch: usize,
    queue_depth: usize,
    n: usize,
    seed: u64,
) -> Vec<Vec<u64>> {
    let plan = plan(replicas, threads, batch, queue_depth, pooled_stage);
    let pool = BufferPool::new(16);
    let inputs: Vec<Data> = (0..n)
        .map(|i| {
            let mut lease = pool.take(Vec::new);
            lease.clear();
            lease.extend(input_vec(seed, i));
            Box::new(lease) as Data
        })
        .collect();
    let (out, stats) = run_pipeline(&plan, inputs);
    assert_eq!(stats.datasets, n);
    out.into_iter()
        .map(|d| {
            d.downcast::<Lease<Vec<u64>>>()
                .expect("leased output")
                .into_inner()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_and_pooled_match_unbatched_reference(
        replicas in prop::collection::vec(1..4usize, 1..4),
        batch in 1..9usize,
        queue_depth in 1..4usize,
        n in 0..80usize,
        seed in any::<u64>(),
    ) {
        let threads = env_threads();

        let reference = run_plain(&replicas, threads, 1, queue_depth, n, seed);
        prop_assert_eq!(reference.len(), n);

        let batched = run_plain(&replicas, threads, batch, queue_depth, n, seed);
        prop_assert_eq!(
            &reference, &batched,
            "batch={} replicas={:?} queue={} n={}",
            batch, replicas, queue_depth, n
        );

        let pooled = run_pooled(&replicas, threads, batch, queue_depth, n, seed);
        prop_assert_eq!(
            &reference, &pooled,
            "pooled: batch={} replicas={:?} queue={} n={}",
            batch, replicas, queue_depth, n
        );
    }
}
