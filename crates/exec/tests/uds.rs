//! Property test: the out-of-process UDS data plane is an exact drop-in
//! for the in-process executor.
//!
//! For any kernel chain, replication degrees, batch size and queue
//! depth, running the same inputs
//!
//! * in process (each [`WireKernel`] wrapped as a [`Stage`] on the
//!   threaded executor), and
//! * across worker processes over Unix sockets with coalesced frames,
//!
//! must produce bit-identical outputs in the same order: framing,
//! vectored writes and pooled receive buffers change how bytes travel,
//! never what arrives.
//!
//! A second test kills a mid-chain worker partway through a stream and
//! asserts the run returns a clean error instead of hanging.

use pipemap_exec::{
    run_pipeline, run_wire_pipeline, Data, PipelinePlan, StagePlan, WireKernel, WirePlan,
    WireStagePlan,
};
use proptest::prelude::*;

fn env_threads() -> usize {
    std::env::var("PIPEMAP_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(1)
        .clamp(1, 4)
}

/// Point the engine at the dedicated worker binary: the test harness
/// executable cannot act as a worker.
fn set_worker_bin() {
    std::env::set_var(
        pipemap_exec::WORKER_BIN_ENV,
        env!("CARGO_BIN_EXE_pipemap-worker"),
    );
}

/// Word-aligned payload whose content depends on the seed and index.
fn input_bytes(seed: u64, i: usize, words: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(words * 8);
    for j in 0..words {
        let w = seed
            .wrapping_add((i as u64) << 32)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(j as u64);
        v.extend_from_slice(&w.to_le_bytes());
    }
    v
}

fn kernel_chain(salts: &[u64]) -> Vec<WireKernel> {
    salts.iter().map(|&s| WireKernel::Mix { salt: s }).collect()
}

/// The in-process reference: the same kernels on the threaded executor.
fn run_inproc(
    kernels: &[WireKernel],
    replicas: &[usize],
    threads: usize,
    batch: usize,
    queue_depth: usize,
    inputs: &[Vec<u8>],
) -> Vec<Vec<u8>> {
    let stages = kernels
        .iter()
        .zip(replicas)
        .map(|(k, &r)| StagePlan::new(k.stage(), r, threads))
        .collect();
    let plan = PipelinePlan::new(stages)
        .with_batch(batch)
        .with_queue_depth(queue_depth);
    let data: Vec<Data> = inputs.iter().map(|v| Box::new(v.clone()) as Data).collect();
    let (out, stats) = run_pipeline(&plan, data);
    assert_eq!(stats.datasets, inputs.len());
    out.into_iter()
        .map(|d| *d.downcast::<Vec<u8>>().expect("byte output"))
        .collect()
}

fn wire_plan(
    kernels: &[WireKernel],
    replicas: &[usize],
    threads: usize,
    batch: usize,
    queue_depth: usize,
) -> WirePlan {
    let stages = kernels
        .iter()
        .zip(replicas)
        .map(|(k, &r)| WireStagePlan::new(*k, r, threads))
        .collect();
    let mut plan = WirePlan::new(stages);
    plan.batch = batch;
    plan.queue_depth = queue_depth;
    plan
}

proptest! {
    // Each case spawns real processes; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn uds_pipeline_matches_in_process_bit_for_bit(
        salts in prop::collection::vec(any::<u64>(), 1..4),
        replicas_seed in any::<u64>(),
        batch in 1..9usize,
        queue_depth in 1..4usize,
        n in 1..48usize,
        seed in any::<u64>(),
    ) {
        set_worker_bin();
        let threads = env_threads();
        let kernels = kernel_chain(&salts);
        let replicas: Vec<usize> = (0..kernels.len())
            .map(|i| 1 + ((replicas_seed >> (i * 2)) as usize & 1))
            .collect();
        let inputs: Vec<Vec<u8>> = (0..n).map(|i| input_bytes(seed, i, 8)).collect();

        let reference = run_inproc(&kernels, &replicas, threads, batch, queue_depth, &inputs);
        let plan = wire_plan(&kernels, &replicas, threads, batch, queue_depth);
        let (uds, run) = run_wire_pipeline(&plan, inputs.clone())
            .map_err(|e| TestCaseError::fail(format!("wire run: {e}")))?;

        prop_assert_eq!(
            &reference, &uds,
            "batch={} replicas={:?} queue={} n={}",
            batch, replicas, queue_depth, n
        );
        prop_assert_eq!(run.completed, n as u64);
    }
}

/// The real application kernels (FFT rows/cols, histogram) must also
/// survive the trip across processes bit-for-bit.
#[test]
fn fft_hist_chain_matches_in_process() {
    set_worker_bin();
    let threads = env_threads();
    let kernels = [
        WireKernel::FftRows,
        WireKernel::FftCols,
        WireKernel::Histogram {
            bins: 32,
            max: 64.0,
        },
    ];
    let replicas = [2usize, 1, 2];
    // 16x16 complex matrix = 256 complex = 512 f64 words.
    let inputs: Vec<Vec<u8>> = (0..12)
        .map(|i| {
            let mut v = Vec::with_capacity(512 * 8);
            for j in 0..512 {
                let x = ((i * 131 + j) % 97) as f64 / 97.0 * 60.0;
                v.extend_from_slice(&x.to_le_bytes());
            }
            v
        })
        .collect();

    let reference = run_inproc(&kernels, &replicas, threads, 4, 2, &inputs);
    let plan = wire_plan(&kernels, &replicas, threads, 4, 2);
    let (uds, _) = run_wire_pipeline(&plan, inputs).expect("wire run");
    assert_eq!(reference, uds);
}

/// Both telemetry scenarios share the process-global registry, so they
/// run sequentially inside one test: first the clean-run assertions
/// (exact totals), then the worker-kill stale marking on top.
#[test]
fn telemetry_plane_aggregates_and_survives_worker_death() {
    telemetry_aggregates_worker_series_into_parent_registry();
    killed_worker_with_telemetry_marks_series_stale();
}

/// With telemetry on, a uds run must light up the parent's global
/// registry with per-worker (stage, instance, pid) series whose totals
/// reconstruct the run exactly, plus /proc-sampled resource gauges —
/// and the drained-for-telemetry journey ring must still deliver the
/// complete timeline to `WireRun::events`.
fn telemetry_aggregates_worker_series_into_parent_registry() {
    set_worker_bin();
    pipemap_obs::install_global(pipemap_obs::Registry::new());
    let threads = env_threads();
    let kernels = [WireKernel::Mix { salt: 3 }, WireKernel::Mix { salt: 5 }];
    let replicas = [2usize, 1];
    let mut plan = wire_plan(&kernels, &replicas, threads, 4, 2);
    plan.journey_sample = 1;
    plan.telemetry_us = 2_000;
    let n = 200usize;
    let inputs: Vec<Vec<u8>> = (0..n).map(|i| input_bytes(17, i, 8)).collect();

    let (out, run) = run_wire_pipeline(&plan, inputs).expect("wire run");
    assert_eq!(out.len(), n);

    let snap = pipemap_obs::global_registry()
        .expect("installed")
        .snapshot();
    for si in 0..kernels.len() {
        let stage_prefix = format!("exec.worker.s{si}");
        let items: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with(&stage_prefix) && k.ends_with(".items"))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(items, n as u64, "stage {si} items over telemetry");
        let service: u64 = snap
            .histograms
            .iter()
            .filter(|(k, _)| k.starts_with(&stage_prefix) && k.ends_with(".service_s"))
            .map(|(_, h)| h.count)
            .sum();
        assert_eq!(service, n as u64, "stage {si} service observations");
    }
    // One pid-labelled series per worker process.
    let pids: std::collections::BTreeSet<&str> = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("exec.worker.") && k.ends_with(".items"))
        .filter_map(|(k, _)| k.split('.').find(|part| part.starts_with('p')))
        .collect();
    assert_eq!(pids.len(), replicas.iter().sum::<usize>(), "{pids:?}");
    // /proc-sampled resource gauges arrived, and nothing went stale.
    assert!(snap
        .gauges
        .iter()
        .any(|(k, _)| k.starts_with("exec.worker.") && k.ends_with(".rss_bytes")));
    assert!(snap
        .gauges
        .iter()
        .filter(|(k, _)| k.ends_with(".stale"))
        .all(|(_, v)| *v == 0.0));
    // The telemetry thread drains the worker-side journey rings, yet
    // the stdout path still reports every worker-recorded event.
    assert!(run
        .events
        .iter()
        .any(|ev| ev.kind == pipemap_obs::JourneyKind::ServiceStart));
    assert_eq!(
        run.events
            .iter()
            .filter(|ev| ev.kind == pipemap_obs::JourneyKind::Sink)
            .count(),
        n
    );
}

/// A worker killed mid-run with telemetry on must not wedge the parent:
/// the run fails cleanly and the dead worker's series are pinned stale
/// (gauge = 1) instead of silently freezing.
fn killed_worker_with_telemetry_marks_series_stale() {
    set_worker_bin();
    pipemap_obs::install_global(pipemap_obs::Registry::new());
    let kernels = [
        WireKernel::Mix { salt: 7 },
        WireKernel::CrashAfter { n: 50 },
        WireKernel::Mix { salt: 11 },
    ];
    let stages = kernels
        .iter()
        .map(|k| WireStagePlan::new(*k, 1, 1))
        .collect();
    let mut plan = WirePlan::new(stages);
    plan.batch = 4;
    plan.telemetry_us = 1_000;
    let inputs: Vec<Vec<u8>> = (0..500).map(|i| input_bytes(23, i, 8)).collect();

    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        tx.send(run_wire_pipeline(&plan, inputs)).ok();
    });
    let res = rx
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("run with a crashing worker must terminate");
    res.expect_err("crashing worker must fail the run");

    let snap = pipemap_obs::global_registry()
        .expect("installed")
        .snapshot();
    let stale: Vec<&(String, f64)> = snap
        .gauges
        .iter()
        .filter(|(k, _)| k.starts_with("exec.worker.s1i0.") && k.ends_with(".stale"))
        .collect();
    assert!(
        stale.iter().any(|(_, v)| *v == 1.0),
        "crashed worker's series must be marked stale, got {stale:?}"
    );
}

/// A worker that dies mid-stream must surface as a clean error — never
/// a hang, never silent truncation.
#[test]
fn killed_worker_mid_run_returns_clean_error() {
    set_worker_bin();
    let kernels = [
        WireKernel::Mix { salt: 7 },
        WireKernel::CrashAfter { n: 20 },
        WireKernel::Mix { salt: 11 },
    ];
    let stages = kernels
        .iter()
        .map(|k| WireStagePlan::new(*k, 1, 1))
        .collect();
    let mut plan = WirePlan::new(stages);
    plan.batch = 4;
    let inputs: Vec<Vec<u8>> = (0..500).map(|i| input_bytes(9, i, 8)).collect();

    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        tx.send(run_wire_pipeline(&plan, inputs)).ok();
    });
    // The run must fail within the deadline, not hang.
    let res = rx
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("run with a crashing worker must terminate");
    let err = res.expect_err("crashing worker must fail the run");
    assert!(
        !err.is_empty(),
        "error should describe the failure: {err:?}"
    );
}
