//! Property test: journey tracing observes the executor without
//! perturbing it, and every sampled data set leaves a complete,
//! causally ordered trail.
//!
//! For any replication degrees, batch size, queue depth, stream length
//! and sampling rate:
//!
//! * every sampled data set yields a *complete* journey — one hop per
//!   stage, each with enqueue/dequeue/service-start/service-end/send
//!   stamps, bracketed by Source and Sink events;
//! * each journey's merged timeline is monotone in time;
//! * the number of stitched journeys is exactly the sampled population
//!   (`ceil(n / sample)`), with nothing dropped by the ring;
//! * pipeline outputs are bit-identical to an untraced run; and
//! * the Chrome flow-event export round-trips through the JSON parser.
//!
//! Worker threads per instance come from `PIPEMAP_THREADS` (default 1,
//! capped at 4) so CI can exercise both the serial fast path and the
//! multi-threaded kernels.

use pipemap_exec::{run_pipeline, Data, PipelinePlan, Stage, StagePlan};
use pipemap_obs::{chrome_flow_trace, stitch, JourneyCollector, JourneyConfig, Value};
use proptest::prelude::*;

const PAYLOAD_LEN: usize = 8;

fn env_threads() -> usize {
    std::env::var("PIPEMAP_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(1)
        .clamp(1, 4)
}

fn mix(x: u64, salt: u64) -> u64 {
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15 | 1)
        .rotate_left(((salt % 61) + 1) as u32)
        ^ salt.wrapping_mul(0xD131_0BA6_985D_F3A5)
}

fn input_vec(seed: u64, i: usize) -> Vec<u64> {
    (0..PAYLOAD_LEN)
        .map(|j| seed ^ ((i as u64) << 32) ^ mix(j as u64, seed))
        .collect()
}

fn plan(replicas: &[usize], threads: usize, batch: usize, queue_depth: usize) -> PipelinePlan {
    let stages = replicas
        .iter()
        .enumerate()
        .map(|(si, &r)| {
            let stage = Stage::new(format!("s{si}"), move |mut v: Vec<u64>, _threads| {
                for x in v.iter_mut() {
                    *x = mix(*x, si as u64 + 1);
                }
                v
            });
            StagePlan::new(stage, r, threads)
        })
        .collect();
    PipelinePlan::new(stages)
        .with_queue_depth(queue_depth)
        .with_batch(batch)
}

fn run(
    replicas: &[usize],
    threads: usize,
    batch: usize,
    queue_depth: usize,
    n: usize,
    seed: u64,
    journeys: Option<&JourneyCollector>,
) -> Vec<Vec<u64>> {
    let mut plan = plan(replicas, threads, batch, queue_depth);
    if let Some(j) = journeys {
        plan = plan.with_journeys(j.clone());
    }
    let inputs: Vec<Data> = (0..n)
        .map(|i| Box::new(input_vec(seed, i)) as Data)
        .collect();
    let (out, stats) = run_pipeline(&plan, inputs);
    assert_eq!(stats.datasets, n);
    out.into_iter()
        .map(|d| *d.downcast::<Vec<u64>>().expect("plain output"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sampled_journeys_are_complete_and_monotone(
        replicas in prop::collection::vec(1..4usize, 1..4),
        batch in 1..9usize,
        queue_depth in 1..4usize,
        n in 1..80usize,
        sample in 1..5u64,
        seed in any::<u64>(),
    ) {
        let threads = env_threads();
        let stages = replicas.len();

        let collector = JourneyCollector::new(JourneyConfig::default().with_sample(sample));
        let traced = run(&replicas, threads, batch, queue_depth, n, seed, Some(&collector));
        let untraced = run(&replicas, threads, batch, queue_depth, n, seed, None);
        prop_assert_eq!(&traced, &untraced, "tracing changed pipeline outputs");

        prop_assert_eq!(collector.dropped(), 0, "ring dropped events");
        let events = collector.drain();
        let journeys = stitch(&events);
        // seq % sample == 0 selects the sampled population.
        prop_assert_eq!(
            journeys.len(),
            n.div_ceil(sample as usize),
            "sample={} n={}", sample, n
        );
        for j in &journeys {
            prop_assert_eq!(j.seq % sample, 0, "unsampled seq {} traced", j.seq);
            prop_assert!(
                j.complete(stages),
                "journey {} incomplete: {} hops of {} stages", j.seq, j.hops.len(), stages
            );
            prop_assert!(j.monotone(), "journey {} not monotone: {:?}", j.seq, j.timeline());
            for (si, hop) in j.hops.iter().enumerate() {
                prop_assert_eq!(hop.stage as usize, si);
                prop_assert!((hop.instance as usize) < replicas[si], "instance out of range");
            }
        }

        // Chrome flow export round-trips through the JSON layer.
        let names: Vec<String> = (0..stages).map(|si| format!("s{si}")).collect();
        let trace = chrome_flow_trace(&events, &names);
        let reparsed = Value::parse(&trace.to_json()).expect("exported trace parses");
        prop_assert_eq!(&reparsed, &trace, "flow trace changed across JSON round-trip");
        let arr = reparsed
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        prop_assert!(!arr.is_empty(), "no trace events exported");
    }
}
