//! The acceptance scenario from the issue: run the doctor over a
//! noise-perturbed simulated execution and check that it identifies the
//! measured bottleneck, reports the queue/service/transport
//! decomposition, and flags drift exactly when the measured bottleneck
//! differs from the DP prediction. Everything is seeded, so the verdict
//! is deterministic.

use pipemap_chain::{ChainBuilder, Edge, Mapping, ModuleAssignment, Task, TaskChain};
use pipemap_doctor::{diagnose, DoctorOptions, ModelPrediction};
use pipemap_model::{PolyEcom, PolyUnary};
use pipemap_obs::{JourneyCollector, JourneyConfig, JourneyEvent};
use pipemap_sim::{simulate_des, SimConfig};

/// A three-stage chain whose middle task is the honest bottleneck.
/// `scale_a` multiplies the first task's parallel work — the knob the
/// drift scenario turns to model a stage that got slower in production
/// than the fitted profile claimed.
fn chain(scale_a: f64) -> TaskChain {
    ChainBuilder::new()
        .task(Task::new("fft", PolyUnary::new(0.0, scale_a * 4.0, 0.0)))
        .edge(Edge::new(
            PolyUnary::zero(),
            PolyEcom::new(0.05, 0.1, 0.1, 0.0, 0.0),
        ))
        .task(Task::new("hist", PolyUnary::new(0.0, 6.0, 0.0)))
        .edge(Edge::new(
            PolyUnary::zero(),
            PolyEcom::new(0.02, 0.05, 0.05, 0.0, 0.0),
        ))
        .task(Task::new("reduce", PolyUnary::new(0.0, 2.0, 0.0)))
        .build()
}

fn mapping() -> Mapping {
    Mapping::new(vec![
        ModuleAssignment::new(0, 0, 1, 2),
        ModuleAssignment::new(1, 1, 1, 2),
        ModuleAssignment::new(2, 2, 1, 1),
    ])
}

/// Journeys from a seeded DES run of `chain`.
fn journeys_of(scale_a: f64, seed: u64) -> Vec<JourneyEvent> {
    let collector = JourneyCollector::new(JourneyConfig::default());
    let cfg = SimConfig::with_datasets(200)
        .with_noise(0.05, seed)
        .with_journeys(collector.clone());
    simulate_des(&chain(scale_a), &mapping(), &cfg);
    collector.drain()
}

#[test]
fn healthy_run_matches_the_model_and_is_drift_free() {
    let pred = ModelPrediction::from_chain(&chain(1.0), &mapping());
    // Effective responses: fft ≈ 2.0s, hist > 3.0s, reduce ≈ 2.0s.
    assert_eq!(pred.bottleneck, 1, "hist is the modelled bottleneck");

    let events = journeys_of(1.0, 42);
    let report = diagnose(&events, Some(&pred), &DoctorOptions::default());

    assert_eq!(report.stitched, 200);
    assert_eq!(report.complete, 200);
    assert_eq!(report.measured_bottleneck, 1);
    assert_eq!(report.predicted_bottleneck, Some(1));
    assert_eq!(report.drift, Some(false), "healthy run must not alarm");
    assert!(report.recommendation.is_none());

    // The decomposition recovers the model within the 5% noise spread.
    for (s, diag) in report.stages.iter().enumerate() {
        let predicted = pred.stages[s].service_s;
        assert!(
            (diag.service.mean - predicted).abs() / predicted < 0.05,
            "stage {s}: measured service {} vs predicted {predicted}",
            diag.service.mean
        );
        assert!(diag.service.n == 200 && diag.queue.n == 200);
        assert!(diag.queue.mean >= 0.0 && diag.transport.mean >= 0.0);
    }
    // Downstream of the bottleneck there is no sustained queueing; in
    // front of it the queue grows as faster stages pile work up.
    assert!(
        report.stages[1].queue.mean > report.stages[2].queue.mean,
        "queueing should concentrate at the bottleneck"
    );
    // Transport on stages with incoming edges is measured, not zero.
    assert!(report.stages[1].transport.mean > 0.0);

    let thr = report.measured_throughput.expect("sinks recorded");
    assert!(
        (thr - pred.throughput).abs() / pred.throughput < 0.10,
        "measured {thr} vs predicted {}",
        pred.throughput
    );
}

#[test]
fn perturbed_run_flags_drift_and_recommends_a_resolve() {
    // Predictions come from the fitted chain; the simulated world runs
    // a perturbed one where the first stage got 3x slower (same seed as
    // the healthy run, so the only difference is the perturbation).
    let pred = ModelPrediction::from_chain(&chain(1.0), &mapping());
    let events = journeys_of(3.0, 42);
    let report = diagnose(&events, Some(&pred), &DoctorOptions::default());

    assert_eq!(report.measured_bottleneck, 0, "fft overtook hist");
    assert_eq!(report.predicted_bottleneck, Some(1));
    assert_eq!(report.drift, Some(true));

    // The per-stage comparison pins the blame: stage 0's service is
    // ~3x its prediction, the other stages still match the model.
    let rel0 = report.stages[0].service_rel_err.expect("model given");
    assert!(rel0 > 1.5, "stage 0 rel err {rel0}");
    for s in 1..3 {
        let rel = report.stages[s].service_rel_err.expect("model given");
        assert!(rel < 0.25, "stage {s} rel err {rel}");
    }
    assert_eq!(report.stages[0].service_within_ci, Some(false));

    // The slow stage dominates most critical paths.
    let top = &report.critical[0];
    assert_eq!(top.stage, 0);
    assert!(top.share > 0.5);

    // And the doctor says what to do about it.
    let rec = report.recommendation.expect("drift recommends a re-solve");
    assert!(rec.why.contains("re-solve"));
    assert!(
        rec.options.prune,
        "defaults to the production solver config"
    );

    // Throughput degraded accordingly: measured well below predicted.
    let thr = report.measured_throughput.expect("sinks recorded");
    assert!(thr < 0.8 * pred.throughput);
}

#[test]
fn verdicts_are_deterministic_for_a_fixed_seed() {
    let pred = ModelPrediction::from_chain(&chain(1.0), &mapping());
    let a = diagnose(&journeys_of(3.0, 7), Some(&pred), &DoctorOptions::default());
    let b = diagnose(&journeys_of(3.0, 7), Some(&pred), &DoctorOptions::default());
    assert_eq!(a.drift, b.drift);
    assert_eq!(a.measured_bottleneck, b.measured_bottleneck);
    assert_eq!(a.stages[0].service.mean, b.stages[0].service.mean);
    assert_eq!(a.measured_throughput, b.measured_throughput);
}
