//! # pipemap-doctor
//!
//! The model-drift doctor: explain live throughput from per-dataset
//! journey traces, and say whether the mapping the DP solver chose is
//! still the right one.
//!
//! The paper's premise is that fitted cost models (`f_exec`, `f_icom`,
//! `f_ecom`) predict the bottleneck module, so the chosen mapping is
//! only as good as the model's fidelity at runtime. This crate closes
//! the loop: it consumes [`pipemap_obs::journey`] events from a real
//! ([`pipemap-exec`]) or simulated ([`pipemap-sim`]) execution and
//!
//! * decomposes per-stage latency into **queue wait** (`dequeue −
//!   enqueue`), **transport** (`service_start − dequeue`), **service**
//!   (`service_end − service_start`), and **batching delay**
//!   (`enqueue(s) − send(s−1)`);
//! * extracts the per-dataset **critical path** — which (stage,
//!   component) dominated each data set's journey;
//! * compares measured service/transport means against the model's
//!   predictions with 95% confidence intervals;
//! * computes the **measured bottleneck** — the stage with the largest
//!   effective response `(transport + service) / replicas`, mirroring
//!   [`pipemap_chain::bottleneck_module`] — and **flags drift** when it
//!   differs from the DP-predicted bottleneck by more than a safety
//!   margin, recommending a re-solve wired to
//!   [`pipemap_core::SolveOptions`].
//!
//! [`JourneyLog`] is the on-disk interchange format (`pipemap load
//! --journey-out`, `pipemap simulate --journey-out`): a header line
//! carrying the model prediction snapshot, then one journey event per
//! line. [`publish`] exports the verdict as `doctor.drift.*` gauges for
//! the OpenMetrics endpoint.

use pipemap_chain::{bottleneck_module, module_response, throughput, Mapping, Problem, TaskChain};
use pipemap_core::{reprice_problem, CostDeltas, MarginReport, SolveOptions};
use pipemap_obs::{journey_jsonl, stitch, Journey, JourneyEvent, Recorder, Value, JOURNEY_SCHEMA};
use pipemap_profile::OnlineModel;

/// Schema tag of the JSON drift report.
pub const DOCTOR_SCHEMA: &str = pipemap_obs::schema::DOCTOR;

/// Exact per-stage stability margins for one mapping, as produced by
/// `pipemap explain --report json` (see [`pipemap_core::stability_margins`]).
///
/// With a spec loaded (`pipemap doctor --margins explain.json`) the
/// doctor stops using the fixed near-tie percentage and instead flags
/// drift exactly when a fitted cost has crossed the drift factor at
/// which a *different* mapping becomes optimal: a stage with a wide
/// margin can drift 3× without a flag, a knife-edge stage flags at 2%.
#[derive(Clone, Debug, PartialEq)]
pub struct MarginSpec {
    /// Per-stage margins; `stage` indexes the mapping's modules.
    pub stages: Vec<StageMarginSpec>,
}

/// One stage's exact drift tolerance, as multiplicative factors on the
/// fitted costs. `1.0` is "exactly as modelled"; the mapping stays
/// optimal while the observed factor lies inside `(down, up)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StageMarginSpec {
    /// Module index in the mapping.
    pub stage: usize,
    /// Largest tolerable growth factor of this stage's execution cost
    /// (`f64::INFINITY` when no growth ever flips the mapping).
    pub exec_up: f64,
    /// Smallest tolerable shrink factor (`0.0` when none flips it).
    pub exec_down: f64,
    /// Growth tolerance of the stage's incoming transfer cost.
    pub ecom_in_up: f64,
    /// Shrink tolerance of the incoming transfer cost.
    pub ecom_in_down: f64,
}

impl MarginSpec {
    /// Adopt the margins of a freshly-computed report.
    pub fn from_report(report: &MarginReport) -> Self {
        Self {
            stages: report
                .stages
                .iter()
                .map(|s| StageMarginSpec {
                    stage: s.index,
                    exec_up: s.exec_up,
                    exec_down: s.exec_down,
                    ecom_in_up: s.ecom_in_up,
                    ecom_in_down: s.ecom_in_down,
                })
                .collect(),
        }
    }

    /// Parse an explain document (or any JSON with a `stages` array
    /// whose entries carry a `margins` object or flat margin fields).
    /// Infinite margins arrive as JSON `null` and parse back to
    /// `INFINITY` (up) / `0.0` (down).
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = Value::parse(text.trim()).map_err(|e| format!("invalid JSON: {e:?}"))?;
        let stages_v = doc
            .get("stages")
            .and_then(Value::as_array)
            .ok_or("margin spec: no 'stages' array")?;
        let mut stages = Vec::with_capacity(stages_v.len());
        for (i, s) in stages_v.iter().enumerate() {
            let m = s.get("margins").unwrap_or(s);
            let bound =
                |key: &str, absent: f64| m.get(key).and_then(Value::as_f64).unwrap_or(absent);
            stages.push(StageMarginSpec {
                stage: s
                    .get("index")
                    .or_else(|| s.get("stage"))
                    .and_then(Value::as_f64)
                    .map(|v| v as usize)
                    .unwrap_or(i),
                exec_up: bound("exec_up", f64::INFINITY),
                exec_down: bound("exec_down", 0.0),
                ecom_in_up: bound("ecom_in_up", f64::INFINITY),
                ecom_in_down: bound("ecom_in_down", 0.0),
            });
        }
        if stages.is_empty() {
            return Err("margin spec: 'stages' array is empty".into());
        }
        Ok(Self { stages })
    }
}

/// What the fitted model predicts for one stage of the pipeline.
#[derive(Clone, Debug, PartialEq)]
pub struct StagePrediction {
    /// Stage (module) name.
    pub name: String,
    /// Replication degree `r`.
    pub replicas: usize,
    /// Predicted service seconds per data set on one instance.
    pub service_s: f64,
    /// Predicted incoming-transfer seconds per data set.
    pub transport_s: f64,
}

/// The model's prediction for the whole pipeline — the baseline the
/// doctor compares measurements against.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelPrediction {
    /// Per-stage predictions in chain order.
    pub stages: Vec<StagePrediction>,
    /// The DP-predicted bottleneck stage (leftmost argmax of effective
    /// response).
    pub bottleneck: usize,
    /// Predicted steady-state throughput, data sets per second.
    pub throughput: f64,
}

/// Leftmost argmax with strict comparison, mirroring
/// [`pipemap_chain::bottleneck_module`].
fn leftmost_argmax(values: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v > values[best] {
            best = i;
        }
    }
    best
}

impl ModelPrediction {
    /// Build from a fitted chain and its chosen mapping (the simulate /
    /// map path: predictions come straight from the cost models).
    pub fn from_chain(chain: &TaskChain, mapping: &Mapping) -> Self {
        let stages = mapping
            .modules
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let r = module_response(chain, mapping, i);
                let name = chain.tasks()[m.first..=m.last]
                    .iter()
                    .map(|t| t.name.as_str())
                    .collect::<Vec<_>>()
                    .join("+");
                StagePrediction {
                    name,
                    replicas: m.replicas,
                    service_s: r.exec,
                    transport_s: r.incoming,
                }
            })
            .collect();
        Self {
            stages,
            bottleneck: bottleneck_module(chain, mapping),
            throughput: throughput(chain, mapping),
        }
    }

    /// Build from measured per-stage service means (the load path:
    /// the executor has no communication model, so transport is 0 and
    /// the "prediction" is the closed form over observed service times).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length, are empty, or a replica
    /// count is zero.
    pub fn from_measured(names: &[String], replicas: &[usize], service_s: &[f64]) -> Self {
        assert!(!names.is_empty());
        assert_eq!(names.len(), replicas.len());
        assert_eq!(names.len(), service_s.len());
        let effective: Vec<f64> = service_s
            .iter()
            .zip(replicas)
            .map(|(&s, &r)| {
                assert!(r >= 1, "replica counts must be >= 1");
                s / r as f64
            })
            .collect();
        let bottleneck = leftmost_argmax(&effective);
        let worst = effective[bottleneck];
        Self {
            stages: names
                .iter()
                .zip(replicas)
                .zip(service_s)
                .map(|((n, &r), &s)| StagePrediction {
                    name: n.clone(),
                    replicas: r,
                    service_s: s,
                    transport_s: 0.0,
                })
                .collect(),
            bottleneck,
            throughput: if worst > 0.0 {
                1.0 / worst
            } else {
                f64::INFINITY
            },
        }
    }

    /// Serialise for a [`JourneyLog`] header.
    pub fn to_value(&self) -> Value {
        let mut v = Value::object();
        v.set("predicted_bottleneck", self.bottleneck as u64);
        v.set("predicted_throughput", self.throughput);
        let stages: Vec<Value> = self
            .stages
            .iter()
            .map(|s| {
                let mut o = Value::object();
                o.set("name", s.name.as_str());
                o.set("replicas", s.replicas as u64);
                o.set("service_s", s.service_s);
                o.set("transport_s", s.transport_s);
                o
            })
            .collect();
        v.set("stages", Value::Array(stages));
        v
    }

    /// Parse a header produced by [`to_value`](Self::to_value).
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let stages_v = v
            .get("stages")
            .and_then(Value::as_array)
            .ok_or("model header missing 'stages' array")?;
        let mut stages = Vec::with_capacity(stages_v.len());
        for s in stages_v {
            let num = |key: &str| {
                s.get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("stage prediction missing numeric '{key}'"))
            };
            stages.push(StagePrediction {
                name: s
                    .get("name")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_string(),
                replicas: num("replicas")? as usize,
                service_s: num("service_s")?,
                transport_s: num("transport_s")?,
            });
        }
        if stages.is_empty() {
            return Err("model header has no stages".into());
        }
        Ok(Self {
            bottleneck: v
                .get("predicted_bottleneck")
                .and_then(Value::as_f64)
                .ok_or("model header missing 'predicted_bottleneck'")?
                as usize,
            throughput: v
                .get("predicted_throughput")
                .and_then(Value::as_f64)
                .unwrap_or(f64::NAN),
            stages,
        })
    }
}

/// The journey interchange file: a header line (schema, provenance,
/// sampling stride, model prediction snapshot) followed by one journey
/// event per line.
#[derive(Clone, Debug)]
pub struct JourneyLog {
    /// Where the journeys came from (`"load"`, `"simulate"`, …).
    pub source: String,
    /// 1-in-N sampling stride the events were recorded with.
    pub sample: u64,
    /// Journey events lost to collector-ring overflow while recording:
    /// nonzero means the file under-represents the run beyond its
    /// declared sampling stride.
    pub dropped: u64,
    /// The model prediction snapshot, when the producer had one.
    pub model: Option<ModelPrediction>,
    /// The recorded events.
    pub events: Vec<JourneyEvent>,
}

impl JourneyLog {
    /// Serialise as JSONL: header first, then events.
    pub fn to_jsonl(&self) -> String {
        let mut header = Value::object();
        header.set("journey_schema", JOURNEY_SCHEMA);
        header.set("source", self.source.as_str());
        header.set("sample", self.sample);
        header.set("dropped", self.dropped);
        match &self.model {
            Some(m) => header.set("model", m.to_value()),
            None => header.set("model", Value::Null),
        };
        let mut out = header.to_json();
        out.push('\n');
        out.push_str(&journey_jsonl(&self.events));
        out
    }

    /// Parse a journey JSONL file. The header is optional: a bare event
    /// stream (e.g. a live `/journeys.jsonl` scrape) parses with
    /// `source = "unknown"`, `sample = 1`, and no model.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut source = "unknown".to_string();
        let mut sample = 1u64;
        let mut dropped = 0u64;
        let mut model = None;
        let mut events = Vec::new();
        let mut saw_header = false;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = Value::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if let Some(schema) = v.get("journey_schema").and_then(Value::as_str) {
                if schema != JOURNEY_SCHEMA {
                    return Err(format!(
                        "journey schema '{schema}' is not the supported '{JOURNEY_SCHEMA}'"
                    ));
                }
                if saw_header {
                    return Err("duplicate journey header".into());
                }
                saw_header = true;
                if let Some(s) = v.get("source").and_then(Value::as_str) {
                    source = s.to_string();
                }
                if let Some(n) = v.get("sample").and_then(Value::as_f64) {
                    sample = (n as u64).max(1);
                }
                if let Some(n) = v.get("dropped").and_then(Value::as_f64) {
                    dropped = n as u64;
                }
                match v.get("model") {
                    Some(Value::Null) | None => {}
                    Some(m) => model = Some(ModelPrediction::from_value(m)?),
                }
                continue;
            }
            events.push(
                JourneyEvent::from_value(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?,
            );
        }
        Ok(Self {
            source,
            sample,
            dropped,
            model,
            events,
        })
    }
}

/// A latency component of one hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Component {
    /// Waiting in (or blocked at) the stage's input queue.
    Queue,
    /// Dequeue → service start (transfer; in the shared-memory executor
    /// this is dominated by in-batch serialisation behind batchmates).
    Transport,
    /// Inside the stage function.
    Service,
    /// Buffered in the upstream sender's partial batch.
    Batching,
}

impl Component {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Component::Queue => "queue",
            Component::Transport => "transport",
            Component::Service => "service",
            Component::Batching => "batching",
        }
    }
}

/// Mean / spread / count of one measured component (seconds).
#[derive(Clone, Copy, Debug, Default)]
pub struct ComponentStats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub sd: f64,
    /// Sample count.
    pub n: usize,
}

impl ComponentStats {
    /// Summarise `samples` (empty → all-zero stats).
    pub fn of(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            return Self::default();
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let sd = if n > 1 {
            (samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        Self { mean, sd, n }
    }

    /// Half-width of the 95% confidence interval of the mean.
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            return f64::INFINITY;
        }
        1.96 * self.sd / (self.n as f64).sqrt()
    }
}

/// Per-stage measurement vs prediction.
#[derive(Clone, Debug)]
pub struct StageDiagnosis {
    /// Stage index.
    pub stage: usize,
    /// Stage name (from the model header when available).
    pub name: String,
    /// Replication degree (model header, or inferred from events).
    pub replicas: usize,
    /// Queue wait per data set.
    pub queue: ComponentStats,
    /// Transport per data set.
    pub transport: ComponentStats,
    /// Service per data set.
    pub service: ComponentStats,
    /// Batching delay per data set.
    pub batching: ComponentStats,
    /// Measured effective response `(transport + service) / replicas`.
    pub effective_s: f64,
    /// Model's predicted service seconds, when a model was given.
    pub predicted_service_s: Option<f64>,
    /// Model's predicted transport seconds.
    pub predicted_transport_s: Option<f64>,
    /// `|measured − predicted| / predicted` for service (None without a
    /// model or with a non-positive prediction).
    pub service_rel_err: Option<f64>,
    /// Same for transport.
    pub transport_rel_err: Option<f64>,
    /// Whether the predicted service mean lies within the measured
    /// mean's 95% confidence interval.
    pub service_within_ci: Option<bool>,
    /// Measured-over-predicted service drift factor (`None` without a
    /// positive prediction).
    pub service_gamma: Option<f64>,
    /// Measured-over-predicted transport drift factor.
    pub transport_gamma: Option<f64>,
    /// This stage's exact `(exec_down, exec_up)` tolerance, when a
    /// [`MarginSpec`] was supplied.
    pub exec_margin: Option<(f64, f64)>,
    /// Exact `(ecom_in_down, ecom_in_up)` tolerance.
    pub ecom_margin: Option<(f64, f64)>,
    /// `Some(true)` when an observed drift factor left its exact
    /// stability interval; `None` when margins or predictions were
    /// unavailable for this stage.
    pub margin_crossed: Option<bool>,
}

/// One slice of the critical-path distribution: the fraction of data
/// sets whose journey was dominated by this (stage, component).
#[derive(Clone, Copy, Debug)]
pub struct CriticalShare {
    /// Stage index.
    pub stage: usize,
    /// Dominating component.
    pub component: Component,
    /// Fraction of analysed data sets, in `(0, 1]`.
    pub share: f64,
}

/// Collapse per-*module* drift factors onto per-*task* cost deltas for
/// the incremental re-solver. A module's measured service time is the
/// sum of its members' executions and internal redistributions, so
/// scaling every member row by the module's factor scales the sum by
/// exactly that factor — the collapse loses nothing. A module's
/// transport factor applies to its incoming chain edge (`first − 1`);
/// the first module has no incoming edge and its transport factor is
/// ignored. `None` (or non-finite / non-positive) factors mean "no
/// evidence" and leave the cost unchanged.
pub fn stage_deltas(
    mapping: &Mapping,
    num_tasks: usize,
    service: &[Option<f64>],
    transport: &[Option<f64>],
) -> CostDeltas {
    let mut deltas = CostDeltas::identity(num_tasks);
    let usable = |g: Option<&Option<f64>>| {
        g.copied()
            .flatten()
            .filter(|g| g.is_finite() && *g > 0.0 && *g != 1.0)
    };
    for (i, m) in mapping.modules.iter().enumerate() {
        if let Some(g) = usable(service.get(i)) {
            for t in m.first..=m.last {
                deltas.set_exec(t, g);
            }
            for e in m.first..m.last {
                deltas.set_icom(e, g);
            }
        }
        if let Some(g) = usable(transport.get(i)) {
            if m.first > 0 {
                deltas.set_ecom(m.first - 1, g);
            }
        }
    }
    deltas
}

/// [`stage_deltas`] fed straight from a live [`OnlineModel`]: each stage
/// estimator's fitted-over-static factor becomes the module's service
/// factor (stages without enough samples contribute nothing), each edge
/// estimator's factor becomes the downstream module's transport factor.
pub fn model_deltas(model: &OnlineModel, mapping: &Mapping, num_tasks: usize) -> CostDeltas {
    let service: Vec<Option<f64>> = model
        .stages()
        .iter()
        .map(|s| s.snapshot().map(|sn| sn.factor))
        .collect();
    let mut transport: Vec<Option<f64>> = vec![None; mapping.modules.len()];
    for (e, est) in model.edges().iter().enumerate() {
        if e + 1 < transport.len() {
            transport[e + 1] = Some(est.factor());
        }
    }
    stage_deltas(mapping, num_tasks, &service, &transport)
}

/// Apply an online model's fitted factors to a problem in one call: the
/// returned problem prices every cost at `static(p) × factor`, and the
/// returned deltas are the same factors in the re-solver's vocabulary —
/// hand them to [`pipemap_core::ResolveArtifact::resolve`] to re-plan
/// incrementally, or solve the problem cold. Both routes give
/// bit-identical mappings by the re-solver's contract.
pub fn reprice_from_model(
    problem: &Problem,
    mapping: &Mapping,
    model: &OnlineModel,
) -> (Problem, CostDeltas) {
    let deltas = model_deltas(model, mapping, problem.num_tasks());
    (reprice_problem(problem, &deltas), deltas)
}

/// Why the doctor thinks the mapping should be re-solved.
#[derive(Clone, Debug)]
pub struct Recommendation {
    /// Human-readable justification.
    pub why: String,
    /// Solver options to re-solve with.
    pub options: SolveOptions,
    /// Per-module measured-over-predicted service drift factors — the
    /// warm-start handle: feed them through [`Recommendation::deltas`]
    /// into the incremental re-solver instead of re-profiling from
    /// scratch. `None` where the model had no prediction.
    pub service_factors: Vec<Option<f64>>,
    /// Per-module transport drift factors.
    pub transport_factors: Vec<Option<f64>>,
}

impl Recommendation {
    /// The recommendation's drift factors as re-solver cost deltas for
    /// `mapping` (the mapping the journeys were measured under).
    pub fn deltas(&self, mapping: &Mapping, num_tasks: usize) -> CostDeltas {
        stage_deltas(
            mapping,
            num_tasks,
            &self.service_factors,
            &self.transport_factors,
        )
    }
}

/// Analysis thresholds.
#[derive(Clone, Copy, Debug)]
pub struct DoctorOptions {
    /// Relative error above which a per-stage prediction is called out.
    pub rel_threshold: f64,
    /// Drift is only flagged when the measured bottleneck's effective
    /// response exceeds the predicted-bottleneck stage's by this
    /// fraction — near-ties between balanced stages are not drift.
    pub margin: f64,
    /// Minimum complete journeys before drift verdicts are issued.
    pub min_samples: usize,
    /// Sampling stride the events were recorded with (scales the
    /// measured-throughput estimate).
    pub sample: u64,
    /// Journey events the producer dropped at its collector ring
    /// (sampling-completeness warning when nonzero).
    pub dropped: u64,
}

impl Default for DoctorOptions {
    fn default() -> Self {
        Self {
            rel_threshold: 0.25,
            margin: 0.10,
            min_samples: 8,
            sample: 1,
            dropped: 0,
        }
    }
}

/// The doctor's verdict.
#[derive(Clone, Debug)]
pub struct DriftReport {
    /// Journeys stitched from the event stream.
    pub stitched: usize,
    /// Journeys with every stage fully recorded (the analysed set).
    pub complete: usize,
    /// Sampling stride of the input.
    pub sample: u64,
    /// Journey events the producer dropped at its collector ring.
    pub dropped: u64,
    /// Per-stage decomposition and comparison.
    pub stages: Vec<StageDiagnosis>,
    /// Stage with the largest measured effective response.
    pub measured_bottleneck: usize,
    /// The model's predicted bottleneck, when a model was given.
    pub predicted_bottleneck: Option<usize>,
    /// `Some(true)` when the measured bottleneck materially differs
    /// from the predicted one; `None` without a model or enough data.
    pub drift: Option<bool>,
    /// Throughput estimated from sink-event spacing (datasets/s).
    pub measured_throughput: Option<f64>,
    /// The model's predicted throughput.
    pub predicted_throughput: Option<f64>,
    /// End-to-end latency (source → sink), seconds.
    pub latency: ComponentStats,
    /// Critical-path distribution, largest share first.
    pub critical: Vec<CriticalShare>,
    /// Set when drift is flagged.
    pub recommendation: Option<Recommendation>,
    /// Whether exact stability margins (not the fixed near-tie
    /// percentage) decided the drift verdict.
    pub margins_used: bool,
}

/// Analyse a journey log (uses its header's model and sample stride).
pub fn diagnose_log(log: &JourneyLog, opts: &DoctorOptions) -> DriftReport {
    diagnose_log_with_margins(log, None, opts)
}

/// [`diagnose_log`] with an exact margin spec deciding the drift
/// verdict (`pipemap doctor --margins explain.json`).
pub fn diagnose_log_with_margins(
    log: &JourneyLog,
    margins: Option<&MarginSpec>,
    opts: &DoctorOptions,
) -> DriftReport {
    let mut o = *opts;
    o.sample = log.sample;
    o.dropped = log.dropped;
    diagnose_with_margins(&log.events, log.model.as_ref(), margins, &o)
}

/// Analyse raw journey events against an optional model prediction.
pub fn diagnose(
    events: &[JourneyEvent],
    model: Option<&ModelPrediction>,
    opts: &DoctorOptions,
) -> DriftReport {
    diagnose_with_margins(events, model, None, opts)
}

/// [`diagnose`], with drift judged against exact per-stage stability
/// margins when `margins` is given: instead of "did the measured
/// bottleneck move by more than the fixed percentage", the verdict
/// becomes "did any fitted cost drift past the factor at which the DP
/// would have chosen a different mapping". This both silences false
/// positives on stages with wide margins and catches real drift the
/// bottleneck-move test cannot see (a cost can cross its margin before
/// the bottleneck visibly moves).
pub fn diagnose_with_margins(
    events: &[JourneyEvent],
    model: Option<&ModelPrediction>,
    margins: Option<&MarginSpec>,
    opts: &DoctorOptions,
) -> DriftReport {
    let journeys = stitch(events);
    let n_stages = match model {
        Some(m) => m.stages.len(),
        None => journeys
            .iter()
            .flat_map(|j| j.hops.iter().map(|h| h.stage as usize + 1))
            .max()
            .unwrap_or(0),
    };
    let complete: Vec<&Journey> = journeys.iter().filter(|j| j.complete(n_stages)).collect();

    // Replication degree: trust the model; otherwise infer from the
    // replicas actually observed serving this stage.
    let replicas: Vec<usize> = (0..n_stages)
        .map(|s| match model {
            Some(m) => m.stages[s].replicas,
            None => complete
                .iter()
                .map(|j| j.hops[s].instance as usize + 1)
                .max()
                .unwrap_or(1),
        })
        .collect();

    // Component samples per stage, in seconds.
    let mut queue: Vec<Vec<f64>> = vec![Vec::new(); n_stages];
    let mut transport: Vec<Vec<f64>> = vec![Vec::new(); n_stages];
    let mut service: Vec<Vec<f64>> = vec![Vec::new(); n_stages];
    let mut batching: Vec<Vec<f64>> = vec![Vec::new(); n_stages];
    let mut latencies: Vec<f64> = Vec::new();
    let mut critical_counts: Vec<Vec<usize>> = vec![vec![0; 4]; n_stages];
    for j in &complete {
        let mut worst = (0usize, Component::Service, f64::NEG_INFINITY);
        for (s, hop) in j.hops.iter().enumerate() {
            let enq = hop.enqueue_us.expect("complete");
            let deq = hop.dequeue_us.expect("complete");
            let ss = hop.service_start_us.expect("complete");
            let se = hop.service_end_us.expect("complete");
            let upstream_out = if s == 0 {
                j.source_us.unwrap_or(enq)
            } else {
                j.hops[s - 1].send_us.expect("complete")
            };
            let comps = [
                (Component::Queue, (deq - enq) / 1e6),
                (Component::Transport, (ss - deq) / 1e6),
                (Component::Service, (se - ss) / 1e6),
                (Component::Batching, (enq - upstream_out) / 1e6),
            ];
            queue[s].push(comps[0].1);
            transport[s].push(comps[1].1);
            service[s].push(comps[2].1);
            batching[s].push(comps[3].1);
            for (k, &(c, v)) in comps.iter().enumerate() {
                if v > worst.2 {
                    worst = (s, c, v);
                }
                let _ = k;
            }
        }
        critical_counts[worst.0][component_index(worst.1)] += 1;
        if let Some(lat) = j.latency_us() {
            latencies.push(lat / 1e6);
        }
    }

    let mut stages = Vec::with_capacity(n_stages);
    let mut effective = Vec::with_capacity(n_stages);
    for s in 0..n_stages {
        let q = ComponentStats::of(&queue[s]);
        let t = ComponentStats::of(&transport[s]);
        let sv = ComponentStats::of(&service[s]);
        let b = ComponentStats::of(&batching[s]);
        let eff = (t.mean + sv.mean) / replicas[s].max(1) as f64;
        effective.push(eff);
        let pred = model.map(|m| &m.stages[s]);
        let rel = |measured: f64, predicted: f64| {
            if predicted > 0.0 {
                Some((measured - predicted).abs() / predicted)
            } else {
                None
            }
        };
        let spec = margins.and_then(|m| m.stages.iter().find(|ms| ms.stage == s));
        let gamma = |measured: f64, predicted: Option<f64>| {
            predicted.filter(|p| *p > 0.0).map(|p| measured / p)
        };
        let service_gamma = gamma(sv.mean, pred.map(|p| p.service_s));
        let transport_gamma = gamma(t.mean, pred.map(|p| p.transport_s));
        let outside = |g: Option<f64>, bounds: Option<(f64, f64)>| match (g, bounds) {
            (Some(g), Some((down, up))) => Some(g > up || g < down),
            _ => None,
        };
        let exec_margin = spec.map(|m| (m.exec_down, m.exec_up));
        let ecom_margin = spec.map(|m| (m.ecom_in_down, m.ecom_in_up));
        let crossings = [
            outside(service_gamma, exec_margin),
            outside(transport_gamma, ecom_margin),
        ];
        let margin_crossed = if crossings.iter().all(Option::is_none) {
            None
        } else {
            Some(crossings.contains(&Some(true)))
        };
        stages.push(StageDiagnosis {
            stage: s,
            name: pred
                .map(|p| p.name.clone())
                .unwrap_or_else(|| format!("stage{s}")),
            replicas: replicas[s],
            queue: q,
            transport: t,
            service: sv,
            batching: b,
            effective_s: eff,
            predicted_service_s: pred.map(|p| p.service_s),
            predicted_transport_s: pred.map(|p| p.transport_s),
            service_rel_err: pred.and_then(|p| rel(sv.mean, p.service_s)),
            transport_rel_err: pred.and_then(|p| rel(t.mean, p.transport_s)),
            service_within_ci: pred.map(|p| (sv.mean - p.service_s).abs() <= sv.ci95()),
            service_gamma,
            transport_gamma,
            exec_margin,
            ecom_margin,
            margin_crossed,
        });
    }

    let measured_bottleneck = leftmost_argmax(&effective);
    let predicted_bottleneck = model.map(|m| m.bottleneck);
    let margins_used = margins.is_some() && stages.iter().any(|s| s.margin_crossed.is_some());
    let drift = if margins_used {
        // Margin-aware verdict: drift iff a fitted cost provably left
        // the region where the chosen mapping is optimal. The fixed
        // percentage plays no role.
        (complete.len() >= opts.min_samples)
            .then(|| stages.iter().any(|s| s.margin_crossed == Some(true)))
    } else {
        match predicted_bottleneck {
            Some(pb) if complete.len() >= opts.min_samples && !effective.is_empty() => {
                let moved = measured_bottleneck != pb;
                let material = moved
                    && effective[pb] > 0.0
                    && (effective[measured_bottleneck] - effective[pb]) / effective[pb]
                        > opts.margin;
                Some(material)
            }
            _ => None,
        }
    };

    // Throughput from sink spacing: sampled completions are `sample`
    // data sets apart, so the stream rate is the sampled rate × stride.
    let mut sinks: Vec<f64> = complete.iter().filter_map(|j| j.sink_us).collect();
    sinks.sort_by(f64::total_cmp);
    let measured_throughput = (sinks.len() >= 2 && sinks[sinks.len() - 1] > sinks[0]).then(|| {
        (sinks.len() - 1) as f64 * opts.sample as f64 / ((sinks[sinks.len() - 1] - sinks[0]) / 1e6)
    });

    let mut critical: Vec<CriticalShare> = Vec::new();
    if !complete.is_empty() {
        for (s, counts) in critical_counts.iter().enumerate() {
            for (k, &cnt) in counts.iter().enumerate() {
                if cnt > 0 {
                    critical.push(CriticalShare {
                        stage: s,
                        component: component_from_index(k),
                        share: cnt as f64 / complete.len() as f64,
                    });
                }
            }
        }
        critical.sort_by(|a, b| b.share.total_cmp(&a.share));
    }

    let service_factors: Vec<Option<f64>> = stages.iter().map(|s| s.service_gamma).collect();
    let transport_factors: Vec<Option<f64>> = stages.iter().map(|s| s.transport_gamma).collect();
    let recommendation = match drift {
        Some(true) if margins_used => {
            let why = stages
                .iter()
                .find(|s| s.margin_crossed == Some(true))
                .map(|s| {
                    let (kind, g, (down, up)) = match (
                        s.service_gamma.zip(s.exec_margin),
                        s.transport_gamma.zip(s.ecom_margin),
                    ) {
                        (Some((g, b)), _) if g > b.1 || g < b.0 => ("service", g, b),
                        (_, Some((g, b))) => ("transport", g, b),
                        (Some((g, b)), None) => ("service", g, b),
                        (None, None) => unreachable!("crossed implies a drift factor"),
                    };
                    format!(
                        "stage {} ({}) {kind} cost drifted to {g:.3}x its fitted model, \
                         outside the exact stability interval ({:.3}, {}) — a different \
                         mapping is now provably optimal; re-solve against refreshed \
                         profiles",
                        s.stage,
                        s.name,
                        down,
                        if up.is_finite() {
                            format!("{up:.3}")
                        } else {
                            "inf".into()
                        },
                    )
                })
                .expect("margin drift implies a crossed stage");
            Some(Recommendation {
                why,
                options: SolveOptions::default(),
                service_factors,
                transport_factors,
            })
        }
        Some(true) => Some(Recommendation {
            why: format!(
                "measured bottleneck is stage {} but the model predicted stage {}; \
                 the fitted costs no longer describe the run — re-solve the mapping \
                 against refreshed profiles",
                measured_bottleneck,
                predicted_bottleneck.expect("drift implies a prediction"),
            ),
            options: SolveOptions::default(),
            service_factors,
            transport_factors,
        }),
        _ => None,
    };

    DriftReport {
        stitched: journeys.len(),
        complete: complete.len(),
        sample: opts.sample,
        dropped: opts.dropped,
        stages,
        measured_bottleneck,
        predicted_bottleneck,
        drift,
        measured_throughput,
        predicted_throughput: model.map(|m| m.throughput),
        latency: ComponentStats::of(&latencies),
        critical,
        recommendation,
        margins_used,
    }
}

fn component_index(c: Component) -> usize {
    match c {
        Component::Queue => 0,
        Component::Transport => 1,
        Component::Service => 2,
        Component::Batching => 3,
    }
}

fn component_from_index(k: usize) -> Component {
    match k {
        0 => Component::Queue,
        1 => Component::Transport,
        2 => Component::Service,
        _ => Component::Batching,
    }
}

/// Export the verdict as `doctor.drift.*` gauges (no-op on a disabled
/// recorder), so a held `--serve` endpoint exposes it over OpenMetrics.
pub fn publish(report: &DriftReport, rec: &Recorder) {
    rec.gauge_set(
        pipemap_obs::names::DOCTOR_DRIFT_FLAGGED,
        match report.drift {
            Some(true) => 1.0,
            _ => 0.0,
        },
    );
    rec.gauge_set(
        pipemap_obs::names::DOCTOR_DRIFT_MEASURED_BOTTLENECK,
        report.measured_bottleneck as f64,
    );
    if let Some(pb) = report.predicted_bottleneck {
        rec.gauge_set(
            pipemap_obs::names::DOCTOR_DRIFT_PREDICTED_BOTTLENECK,
            pb as f64,
        );
    }
    let max_rel = report
        .stages
        .iter()
        .filter_map(|s| s.service_rel_err)
        .fold(0.0f64, f64::max);
    rec.gauge_set(pipemap_obs::names::DOCTOR_DRIFT_MAX_REL_ERR, max_rel);
    for s in &report.stages {
        if let Some(rel) = s.service_rel_err {
            rec.gauge_set(
                &format!("doctor.drift.stage{}.service_rel_err", s.stage),
                rel,
            );
        }
        if let Some(g) = s.service_gamma {
            rec.gauge_set(&format!("doctor.drift.stage{}.service_gamma", s.stage), g);
        }
    }
    if report.margins_used {
        rec.gauge_set("doctor.drift.margins_used", 1.0);
    }
}

/// The JSON form of the report (`pipemap doctor --report json`).
pub fn report_json(report: &DriftReport) -> Value {
    let mut v = Value::object();
    v.set("schema", DOCTOR_SCHEMA);
    v.set("journeys", report.stitched as u64);
    v.set("complete", report.complete as u64);
    v.set("sample", report.sample);
    v.set("dropped", report.dropped);
    let stats = |s: &ComponentStats| {
        let mut o = Value::object();
        o.set("mean_s", s.mean);
        o.set("sd_s", s.sd);
        o.set("n", s.n as u64);
        if s.n >= 2 {
            o.set("ci95_s", s.ci95());
        }
        o
    };
    let opt_num = |o: &mut Value, key: &str, v_: Option<f64>| {
        match v_ {
            Some(x) => o.set(key, x),
            None => o.set(key, Value::Null),
        };
    };
    let stages: Vec<Value> = report
        .stages
        .iter()
        .map(|s| {
            let mut o = Value::object();
            o.set("stage", s.stage as u64);
            o.set("name", s.name.as_str());
            o.set("replicas", s.replicas as u64);
            o.set("queue", stats(&s.queue));
            o.set("transport", stats(&s.transport));
            o.set("service", stats(&s.service));
            o.set("batching", stats(&s.batching));
            o.set("effective_s", s.effective_s);
            opt_num(&mut o, "predicted_service_s", s.predicted_service_s);
            opt_num(&mut o, "predicted_transport_s", s.predicted_transport_s);
            opt_num(&mut o, "service_rel_err", s.service_rel_err);
            opt_num(&mut o, "transport_rel_err", s.transport_rel_err);
            match s.service_within_ci {
                Some(b) => o.set("service_within_ci", b),
                None => o.set("service_within_ci", Value::Null),
            };
            if report.margins_used {
                opt_num(&mut o, "service_gamma", s.service_gamma);
                opt_num(&mut o, "transport_gamma", s.transport_gamma);
                if let Some((down, up)) = s.exec_margin {
                    let mut m = Value::object();
                    m.set("exec_down", down);
                    m.set("exec_up", up);
                    if let Some((ed, eu)) = s.ecom_margin {
                        m.set("ecom_in_down", ed);
                        m.set("ecom_in_up", eu);
                    }
                    o.set("margins", m);
                }
                match s.margin_crossed {
                    Some(b) => o.set("margin_crossed", b),
                    None => o.set("margin_crossed", Value::Null),
                };
            }
            o
        })
        .collect();
    v.set("stages", Value::Array(stages));
    v.set("measured_bottleneck", report.measured_bottleneck as u64);
    match report.predicted_bottleneck {
        Some(pb) => v.set("predicted_bottleneck", pb as u64),
        None => v.set("predicted_bottleneck", Value::Null),
    };
    match report.drift {
        Some(b) => v.set("drift", b),
        None => v.set("drift", Value::Null),
    };
    v.set("margins_used", report.margins_used);
    opt_num(&mut v, "measured_throughput", report.measured_throughput);
    opt_num(&mut v, "predicted_throughput", report.predicted_throughput);
    v.set("latency", stats(&report.latency));
    let critical: Vec<Value> = report
        .critical
        .iter()
        .map(|c| {
            let mut o = Value::object();
            o.set("stage", c.stage as u64);
            o.set("component", c.component.as_str());
            o.set("share", c.share);
            o
        })
        .collect();
    v.set("critical_path", Value::Array(critical));
    match &report.recommendation {
        Some(r) => {
            let mut o = Value::object();
            o.set("action", "resolve");
            o.set("why", r.why.as_str());
            let mut so = Value::object();
            so.set("par", r.options.par);
            so.set("prune", r.options.prune);
            so.set("dedup", r.options.dedup);
            match r.options.threads {
                Some(t) => so.set("threads", t as u64),
                None => so.set("threads", Value::Null),
            };
            o.set("solve_options", so);
            // The warm-start handle: per-module drift factors for the
            // incremental re-solver (`pipemap resolve --doctor`).
            let factor_array = |fs: &[Option<f64>]| {
                Value::Array(
                    fs.iter()
                        .map(|f| match f {
                            Some(x) => Value::Number(*x),
                            None => Value::Null,
                        })
                        .collect(),
                )
            };
            let mut factors = Value::object();
            factors.set("service", factor_array(&r.service_factors));
            factors.set("transport", factor_array(&r.transport_factors));
            o.set("factors", factors);
            v.set("recommendation", o);
        }
        None => {
            v.set("recommendation", Value::Null);
        }
    }
    v
}

/// Human-readable rendering of the report.
pub fn render(report: &DriftReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "journeys: {} stitched, {} complete (1-in-{} sampling)",
        report.stitched, report.complete, report.sample
    );
    if report.dropped > 0 {
        let _ = writeln!(
            out,
            "WARNING: {} journey events were dropped at the collector ring — the \
             timeline under-represents the run beyond its sampling stride, so the \
             decomposition below may be biased toward quieter periods",
            report.dropped
        );
    }
    if let Some(thr) = report.measured_throughput {
        match report.predicted_throughput {
            Some(p) if p.is_finite() => {
                let _ = writeln!(
                    out,
                    "throughput: measured {thr:.2} datasets/s, model predicted {p:.2}"
                );
            }
            _ => {
                let _ = writeln!(out, "throughput: measured {thr:.2} datasets/s");
            }
        }
    }
    if report.latency.n > 0 {
        let _ = writeln!(
            out,
            "end-to-end latency: mean {:.6}s over {} sampled data sets",
            report.latency.mean, report.latency.n
        );
    }
    let _ = writeln!(
        out,
        "\n{:<4} {:<14} {:>3} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "#",
        "stage",
        "r",
        "queue ms",
        "transport ms",
        "service ms",
        "batching ms",
        "pred ms",
        "rel err"
    );
    for s in &report.stages {
        let ms = |x: f64| x * 1e3;
        let pred = s
            .predicted_service_s
            .map(|p| format!("{:.4}", ms(p)))
            .unwrap_or_else(|| "-".into());
        let rel = s
            .service_rel_err
            .map(|r| format!("{:+.1}%", r * 100.0))
            .unwrap_or_else(|| "-".into());
        let mark = if s.stage == report.measured_bottleneck {
            "*"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "{:<4} {:<14} {:>3} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>12} {:>8}",
            format!("{}{}", s.stage, mark),
            s.name,
            s.replicas,
            ms(s.queue.mean),
            ms(s.transport.mean),
            ms(s.service.mean),
            ms(s.batching.mean),
            pred,
            rel
        );
    }
    if let Some(c) = report.critical.first() {
        let _ = writeln!(
            out,
            "\ncritical path: {:.0}% of data sets dominated by stage {} {}",
            c.share * 100.0,
            c.stage,
            c.component.as_str()
        );
    }
    if report.margins_used {
        let _ = writeln!(
            out,
            "\nexact stability margins (drift factor vs tolerance):"
        );
        let bound = |b: f64| {
            if b.is_finite() {
                format!("{b:.3}")
            } else {
                "inf".into()
            }
        };
        for s in &report.stages {
            let (Some(g), Some((down, up))) = (s.service_gamma, s.exec_margin) else {
                continue;
            };
            let verdict = match s.margin_crossed {
                Some(true) => "CROSSED",
                Some(false) => "ok",
                None => "-",
            };
            let transport = match (s.transport_gamma, s.ecom_margin) {
                (Some(tg), Some((td, tu))) => {
                    format!(", transport {tg:.3}x in ({:.3}, {})", td, bound(tu))
                }
                _ => String::new(),
            };
            let _ = writeln!(
                out,
                "  stage {} {:<14} service {g:.3}x in ({:.3}, {}){transport}  [{verdict}]",
                s.stage,
                s.name,
                down,
                bound(up),
            );
        }
        match report.drift {
            Some(true) => {
                let _ = writeln!(
                    out,
                    "\nMARGIN DRIFT: a fitted cost left the region where the chosen \
                     mapping is optimal"
                );
                if let Some(r) = &report.recommendation {
                    let _ = writeln!(out, "recommendation: {}", r.why);
                }
            }
            Some(false) => {
                let _ = writeln!(
                    out,
                    "\nno drift: every fitted cost is inside its exact stability margin \
                     (mapping still provably optimal)"
                );
            }
            None => {
                let _ = writeln!(out, "\nnot enough complete journeys for a margin verdict");
            }
        }
        return out;
    }
    match (report.drift, report.predicted_bottleneck) {
        (Some(true), Some(pb)) => {
            let _ = writeln!(
                out,
                "\nDRIFT: measured bottleneck is stage {} but the model predicted stage {pb}",
                report.measured_bottleneck
            );
            if let Some(r) = &report.recommendation {
                let _ = writeln!(out, "recommendation: re-solve the mapping ({})", r.why);
            }
        }
        (Some(false), Some(pb)) if report.measured_bottleneck == pb => {
            let _ = writeln!(
                out,
                "\nno drift: measured bottleneck stage {} agrees with the model's stage {pb}",
                report.measured_bottleneck
            );
        }
        (Some(false), Some(pb)) => {
            let _ = writeln!(
                out,
                "\nno drift: measured bottleneck stage {} differs from the model's stage {pb} \
                 but within the near-tie margin",
                report.measured_bottleneck
            );
        }
        _ => {
            let _ = writeln!(
                out,
                "\nno model prediction available: decomposition only (measured bottleneck: stage {})",
                report.measured_bottleneck
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_obs::JourneyKind;

    /// Synthesise complete journeys: per stage `s` a fixed breakdown of
    /// (queue, transport, service, batching) microseconds.
    fn synth(n: usize, per_stage: &[(f64, f64, f64, f64)], period_us: f64) -> Vec<JourneyEvent> {
        let mut events = Vec::new();
        let mut push = |seq: usize, stage: u32, kind: JourneyKind, t: f64| {
            events.push(JourneyEvent {
                seq: seq as u64,
                stage,
                instance: 0,
                kind,
                t_us: t,
                batch: 0,
            });
        };
        for seq in 0..n {
            let mut t = seq as f64 * period_us;
            push(seq, 0, JourneyKind::Source, t);
            for (s, &(q, tr, sv, b)) in per_stage.iter().enumerate() {
                t += b;
                push(seq, s as u32, JourneyKind::Enqueue, t);
                t += q;
                push(seq, s as u32, JourneyKind::Dequeue, t);
                t += tr;
                push(seq, s as u32, JourneyKind::ServiceStart, t);
                t += sv;
                push(seq, s as u32, JourneyKind::ServiceEnd, t);
                push(seq, s as u32, JourneyKind::Send, t);
            }
            push(seq, per_stage.len() as u32, JourneyKind::Sink, t);
        }
        events
    }

    fn model2(s0: f64, s1: f64) -> ModelPrediction {
        ModelPrediction::from_measured(&["a".to_string(), "b".to_string()], &[1, 1], &[s0, s1])
    }

    #[test]
    fn decomposition_recovers_the_synthetic_breakdown() {
        let events = synth(20, &[(5.0, 2.0, 40.0, 1.0), (10.0, 3.0, 20.0, 4.0)], 100.0);
        let report = diagnose(&events, None, &DoctorOptions::default());
        assert_eq!(report.stitched, 20);
        assert_eq!(report.complete, 20);
        let s0 = &report.stages[0];
        assert!((s0.queue.mean - 5e-6).abs() < 1e-12);
        assert!((s0.transport.mean - 2e-6).abs() < 1e-12);
        assert!((s0.service.mean - 40e-6).abs() < 1e-12);
        assert!((s0.batching.mean - 1e-6).abs() < 1e-12);
        let s1 = &report.stages[1];
        assert!((s1.queue.mean - 10e-6).abs() < 1e-12);
        assert!((s1.service.mean - 20e-6).abs() < 1e-12);
        // Stage 0 dominates: effective (2+40)µs > (3+20)µs.
        assert_eq!(report.measured_bottleneck, 0);
        assert!(report.drift.is_none(), "no model, no drift verdict");
        // Critical path: service of stage 0 dominates every journey.
        assert_eq!(report.critical.len(), 1);
        assert_eq!(report.critical[0].stage, 0);
        assert_eq!(report.critical[0].component, Component::Service);
        assert!((report.critical[0].share - 1.0).abs() < 1e-12);
        // Throughput from sink spacing: one data set per 100 µs.
        let thr = report.measured_throughput.expect("sinks recorded");
        assert!((thr - 10_000.0).abs() < 1e-6, "thr {thr}");
    }

    #[test]
    fn drift_flagged_iff_bottleneck_moved_materially() {
        // Model says stage 0 (40 µs) beats stage 1 (20 µs).
        let model = model2(40e-6, 20e-6);
        assert_eq!(model.bottleneck, 0);

        // Run agrees with the model: no drift.
        let agree = synth(20, &[(0.0, 0.0, 40.0, 0.0), (0.0, 0.0, 20.0, 0.0)], 100.0);
        let r = diagnose(&agree, Some(&model), &DoctorOptions::default());
        assert_eq!(r.drift, Some(false));
        assert!(r.recommendation.is_none());
        assert_eq!(r.stages[0].service_within_ci, Some(true));

        // Stage 1 ballooned to 90 µs: the bottleneck moved — drift.
        let moved = synth(20, &[(0.0, 0.0, 40.0, 0.0), (0.0, 0.0, 90.0, 0.0)], 150.0);
        let r = diagnose(&moved, Some(&model), &DoctorOptions::default());
        assert_eq!(r.measured_bottleneck, 1);
        assert_eq!(r.drift, Some(true));
        let rec = r.recommendation.expect("drift recommends a re-solve");
        assert!(rec.why.contains("stage 1"));
        assert!((r.stages[1].service_rel_err.unwrap() - 3.5).abs() < 1e-9);

        // A hair over the model's stage 0 on stage 1 (41 vs 40 µs):
        // nominally moved, but within the margin — not drift.
        let near = synth(20, &[(0.0, 0.0, 40.0, 0.0), (0.0, 0.0, 41.0, 0.0)], 100.0);
        let r = diagnose(&near, Some(&model), &DoctorOptions::default());
        assert_eq!(r.measured_bottleneck, 1);
        assert_eq!(r.drift, Some(false), "near-tie is not drift");

        // Too few samples: no verdict.
        let few = synth(3, &[(0.0, 0.0, 40.0, 0.0), (0.0, 0.0, 90.0, 0.0)], 150.0);
        let r = diagnose(&few, Some(&model), &DoctorOptions::default());
        assert_eq!(r.drift, None);
    }

    fn spec2(up0: f64, up1: f64) -> MarginSpec {
        MarginSpec {
            stages: vec![
                StageMarginSpec {
                    stage: 0,
                    exec_up: up0,
                    exec_down: 0.5,
                    ecom_in_up: f64::INFINITY,
                    ecom_in_down: 0.0,
                },
                StageMarginSpec {
                    stage: 1,
                    exec_up: up1,
                    exec_down: 0.5,
                    ecom_in_up: f64::INFINITY,
                    ecom_in_down: 0.0,
                },
            ],
        }
    }

    #[test]
    fn margins_silence_false_positives_and_catch_hidden_drift() {
        let model = model2(40e-6, 20e-6);
        let opts = DoctorOptions::default();

        // Stage 1 balloons 41/20 = 2.05x and overtakes the bottleneck —
        // the fixed-percentage doctor flags drift. But stage 1's exact
        // margin says anything under 2.5x still leaves the mapping
        // optimal: the margin-aware doctor stays quiet.
        let overtaken = synth(20, &[(0.0, 0.0, 40.0, 0.0), (0.0, 0.0, 41.0, 0.0)], 100.0);
        let fixed = diagnose(&overtaken, Some(&model), &opts);
        assert_eq!(fixed.measured_bottleneck, 1);
        assert!(!fixed.margins_used);
        let wide = spec2(3.0, 2.5);
        let margin = diagnose_with_margins(&overtaken, Some(&model), Some(&wide), &opts);
        assert!(margin.margins_used);
        assert_eq!(margin.drift, Some(false), "inside margins is not drift");
        let g = margin.stages[1].service_gamma.expect("prediction present");
        assert!((g - 41.0 / 20.0).abs() < 1e-9, "gamma {g}");
        assert_eq!(margin.stages[1].margin_crossed, Some(false));
        assert!(margin.recommendation.is_none());

        // Stage 0 creeps only 10% (44/40) and stays the bottleneck — the
        // fixed doctor sees nothing. On a knife-edge mapping (margin
        // 1.05x) that creep already makes a different mapping optimal:
        // only the margin-aware doctor catches it.
        let creep = synth(20, &[(0.0, 0.0, 44.0, 0.0), (0.0, 0.0, 20.0, 0.0)], 100.0);
        let fixed = diagnose(&creep, Some(&model), &opts);
        assert_eq!(fixed.drift, Some(false), "bottleneck never moved");
        let knife = spec2(1.05, 3.0);
        let margin = diagnose_with_margins(&creep, Some(&model), Some(&knife), &opts);
        assert_eq!(margin.drift, Some(true));
        assert_eq!(margin.stages[0].margin_crossed, Some(true));
        let rec = margin
            .recommendation
            .expect("crossing recommends a re-solve");
        assert!(rec.why.contains("stage 0"), "{}", rec.why);
        assert!(rec.why.contains("1.100"), "{}", rec.why);

        // Shrink direction: stage 1 collapses to 0.25x its model, below
        // exec_down = 0.5 — procs are provably misallocated.
        let shrink = synth(20, &[(0.0, 0.0, 40.0, 0.0), (0.0, 0.0, 5.0, 0.0)], 100.0);
        let margin = diagnose_with_margins(&shrink, Some(&model), Some(&wide), &opts);
        assert_eq!(margin.drift, Some(true));
        assert_eq!(margin.stages[1].margin_crossed, Some(true));

        // The JSON report carries the margin fields.
        let v = report_json(&margin);
        let parsed = Value::parse(&v.to_json()).unwrap();
        assert_eq!(parsed.get("margins_used"), Some(&Value::Bool(true)));
        let stages = parsed.get("stages").and_then(Value::as_array).unwrap();
        assert_eq!(
            stages[1].get("service_gamma").and_then(Value::as_f64),
            Some(0.25)
        );
        assert_eq!(stages[1].get("margin_crossed"), Some(&Value::Bool(true)));
        // And the rendering names the verdict.
        let text = render(&margin);
        assert!(text.contains("MARGIN DRIFT"), "{text}");
        assert!(text.contains("CROSSED"), "{text}");
    }

    #[test]
    fn margin_spec_parses_explain_json() {
        // The shape `pipemap explain --report json` produces: stages
        // with nested margins; infinities serialised as null.
        let text = r#"{
            "schema": "pipemap-explain/v1",
            "throughput": 0.5,
            "stages": [
                {"index": 0, "margins": {"exec_up": 1.25, "exec_down": 0.8,
                                          "ecom_in_up": null, "ecom_in_down": 0.0}},
                {"index": 1, "margins": {"exec_up": null, "exec_down": 0.0}}
            ]
        }"#;
        let spec = MarginSpec::parse(text).expect("parses");
        assert_eq!(spec.stages.len(), 2);
        assert_eq!(spec.stages[0].exec_up, 1.25);
        assert_eq!(spec.stages[0].ecom_in_up, f64::INFINITY);
        assert_eq!(spec.stages[1].exec_up, f64::INFINITY);
        assert_eq!(spec.stages[1].ecom_in_down, 0.0);

        assert!(MarginSpec::parse("{}").is_err());
        assert!(MarginSpec::parse("{\"stages\": []}").is_err());
        assert!(MarginSpec::parse("not json").is_err());
    }

    #[test]
    fn journey_log_round_trips_with_model_header() {
        let model = model2(1e-3, 2e-3);
        let events = synth(4, &[(1.0, 1.0, 10.0, 0.0), (0.0, 0.0, 20.0, 0.0)], 50.0);
        let log = JourneyLog {
            source: "simulate".into(),
            sample: 8,
            dropped: 3,
            model: Some(model.clone()),
            events,
        };
        let text = log.to_jsonl();
        let back = JourneyLog::parse(&text).expect("parses");
        assert_eq!(back.source, "simulate");
        assert_eq!(back.sample, 8);
        assert_eq!(back.dropped, 3);
        assert_eq!(back.model, Some(model));
        assert_eq!(back.events, log.events);

        // A lossy log triggers the sampling-completeness warning; a
        // complete one stays quiet.
        let lossy = diagnose_log(&back, &DoctorOptions::default());
        assert_eq!(lossy.dropped, 3);
        assert!(render(&lossy).contains("WARNING: 3 journey events were dropped"));
        let complete = diagnose_log(
            &JourneyLog {
                dropped: 0,
                ..back.clone()
            },
            &DoctorOptions::default(),
        );
        assert!(!render(&complete).contains("WARNING"));

        // Headerless event streams still parse.
        let raw = pipemap_obs::journey_jsonl(&log.events);
        let bare = JourneyLog::parse(&raw).expect("parses without header");
        assert_eq!(bare.source, "unknown");
        assert_eq!(bare.sample, 1);
        assert!(bare.model.is_none());

        // A wrong schema is rejected loudly.
        let bad = text.replace("pipemap-journey/v1", "pipemap-journey/v9");
        let err = JourneyLog::parse(&bad).unwrap_err();
        assert!(err.contains("pipemap-journey/v9"), "{err}");
    }

    #[test]
    fn json_report_is_well_formed() {
        let model = model2(40e-6, 20e-6);
        let events = synth(20, &[(0.0, 0.0, 40.0, 0.0), (0.0, 0.0, 90.0, 0.0)], 150.0);
        let report = diagnose(&events, Some(&model), &DoctorOptions::default());
        let v = report_json(&report);
        let parsed = Value::parse(&v.to_json()).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(Value::as_str),
            Some(DOCTOR_SCHEMA)
        );
        assert_eq!(parsed.get("drift"), Some(&Value::Bool(true)));
        assert_eq!(
            parsed.get("measured_bottleneck").and_then(Value::as_f64),
            Some(1.0)
        );
        let stages = parsed.get("stages").and_then(Value::as_array).unwrap();
        assert_eq!(stages.len(), 2);
        assert!(stages[0]
            .get("service")
            .and_then(|s| s.get("mean_s"))
            .and_then(Value::as_f64)
            .is_some());
        assert!(parsed
            .get("recommendation")
            .and_then(|r| r.get("solve_options"))
            .is_some());
        // Human rendering mentions the verdict either way.
        let text = render(&report);
        assert!(text.contains("DRIFT"), "{text}");
        let snap = {
            let reg = pipemap_obs::Registry::new();
            let rec = reg.recorder();
            publish(&report, &rec);
            reg.snapshot()
        };
        let gauge = |name: &str| snap.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v);
        assert_eq!(gauge(pipemap_obs::names::DOCTOR_DRIFT_FLAGGED), Some(1.0));
        assert_eq!(
            gauge(pipemap_obs::names::DOCTOR_DRIFT_MEASURED_BOTTLENECK),
            Some(1.0)
        );
        assert!(gauge("doctor.drift.stage1.service_rel_err").is_some());
    }

    #[test]
    fn stage_deltas_collapse_module_factors_onto_tasks() {
        use pipemap_chain::ModuleAssignment;
        // [t0+t1][t2]: module 0's service factor covers both member
        // tasks and the internal edge; module 1's transport factor lands
        // on its incoming chain edge; module 0's transport factor has no
        // incoming edge and is dropped.
        let mapping = Mapping {
            modules: vec![
                ModuleAssignment {
                    first: 0,
                    last: 1,
                    replicas: 1,
                    procs: 2,
                },
                ModuleAssignment {
                    first: 2,
                    last: 2,
                    replicas: 1,
                    procs: 1,
                },
            ],
        };
        let d = stage_deltas(&mapping, 3, &[Some(1.5), None], &[Some(9.0), Some(2.0)]);
        assert_eq!(d.exec(), &[1.5, 1.5, 1.0]);
        assert_eq!(d.icom(), &[1.5, 1.0]);
        assert_eq!(d.ecom(), &[1.0, 2.0]);
        // No evidence anywhere → identity (the re-solver short-circuits).
        let id = stage_deltas(&mapping, 3, &[None, None], &[None, None]);
        assert!(id.is_identity());
        // Garbage factors are evidence of nothing.
        let id = stage_deltas(&mapping, 3, &[Some(f64::NAN), Some(0.0)], &[None, None]);
        assert!(id.is_identity());
    }

    #[test]
    fn model_deltas_feed_the_resolver_from_live_estimators() {
        use pipemap_chain::{ChainBuilder, Edge, ModuleAssignment, Task};
        use pipemap_model::{PolyEcom, PolyUnary};
        use pipemap_profile::OnlineConfig;

        let s0 = PolyUnary::new(0.0, 2.0, 0.0);
        let s1 = PolyUnary::new(0.0, 1.0, 0.0);
        let e0 = PolyEcom::new(0.01, 0.5, 0.5, 0.0, 0.0);
        let mut model = OnlineModel::new(&[s0, s1], &[e0], OnlineConfig::default());
        // Stage 0 runs 1.5× its static model; edge 0 transfers at 2×;
        // stage 1 is never observed.
        for _ in 0..200 {
            model.observe_exec(0, 8, 1.5 * s0.eval(8));
            model.observe_ecom(0, 8, 4, 2.0 * e0.eval(8, 4));
        }
        model.refit();

        let mapping = Mapping {
            modules: vec![
                ModuleAssignment {
                    first: 0,
                    last: 0,
                    replicas: 1,
                    procs: 8,
                },
                ModuleAssignment {
                    first: 1,
                    last: 1,
                    replicas: 1,
                    procs: 4,
                },
            ],
        };
        let d = model_deltas(&model, &mapping, 2);
        assert!(
            (d.exec()[0] - 1.5).abs() < 0.2,
            "exec factor {:?}",
            d.exec()
        );
        assert_eq!(d.exec()[1], 1.0, "unobserved stage stays unchanged");
        assert!(
            (d.ecom()[0] - 2.0).abs() < 0.4,
            "ecom factor {:?}",
            d.ecom()
        );

        // The one-call helper prices the problem at static × factor.
        let chain = ChainBuilder::new()
            .task(Task::new("a", s0))
            .edge(Edge::new(PolyUnary::new(0.0, 0.0, 0.0), e0))
            .task(Task::new("b", s1))
            .build();
        let problem = Problem::new(chain, 12, 1e9);
        let (repriced, deltas) = reprice_from_model(&problem, &mapping, &model);
        let g = deltas.exec()[0];
        for p in 1..=12 {
            let want = g * problem.chain.task(0).exec.eval(p);
            let got = repriced.chain.task(0).exec.eval(p);
            assert_eq!(got.to_bits(), want.to_bits(), "exec @ {p}");
            assert_eq!(
                repriced.chain.task(1).exec.eval(p).to_bits(),
                problem.chain.task(1).exec.eval(p).to_bits(),
                "unobserved stage repriced @ {p}"
            );
        }
    }

    #[test]
    fn recommendation_carries_the_warm_start_factors() {
        use pipemap_chain::ModuleAssignment;
        let model = model2(40e-6, 20e-6);
        let knife = spec2(1.05, 3.0);
        let creep = synth(20, &[(0.0, 0.0, 44.0, 0.0), (0.0, 0.0, 20.0, 0.0)], 100.0);
        let report = diagnose_with_margins(
            &creep,
            Some(&model),
            Some(&knife),
            &DoctorOptions::default(),
        );
        let rec = report.recommendation.as_ref().expect("margin crossed");
        let g = rec.service_factors[0].expect("stage 0 has a prediction");
        assert!((g - 1.1).abs() < 1e-9, "gamma {g}");
        // The factors collapse to re-solver deltas for the live mapping.
        let mapping = Mapping {
            modules: vec![
                ModuleAssignment {
                    first: 0,
                    last: 0,
                    replicas: 1,
                    procs: 1,
                },
                ModuleAssignment {
                    first: 1,
                    last: 1,
                    replicas: 1,
                    procs: 1,
                },
            ],
        };
        let d = rec.deltas(&mapping, 2);
        assert!((d.exec()[0] - 1.1).abs() < 1e-9, "{:?}", d.exec());
        // And they survive the JSON report for `pipemap resolve --doctor`.
        let v = report_json(&report);
        let parsed = Value::parse(&v.to_json()).unwrap();
        let factors = parsed
            .get("recommendation")
            .and_then(|r| r.get("factors"))
            .expect("factors object");
        let service = factors.get("service").and_then(Value::as_array).unwrap();
        assert_eq!(service.len(), 2);
        assert!((service[0].as_f64().unwrap() - 1.1).abs() < 1e-9);
    }

    #[test]
    fn component_stats_ci() {
        let s = ComponentStats::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.n, 4);
        assert!(s.sd > 0.0 && s.ci95() > 0.0 && s.ci95().is_finite());
        assert_eq!(ComponentStats::of(&[]).n, 0);
        assert!(ComponentStats::of(&[1.0]).ci95().is_infinite());
    }
}
