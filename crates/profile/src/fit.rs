//! Fitting the §5 polynomial forms to timing samples.

use pipemap_model::{PolyEcom, PolyUnary, Procs, Seconds};

use crate::linalg::least_squares;

/// Options for the fitting routines.
#[derive(Clone, Copy, Debug)]
pub struct FitOptions {
    /// Constrain coefficients to be non-negative by iteratively dropping
    /// the most negative column and re-fitting (a small active-set NNLS).
    /// A negative `C2` or `C3` can predict *negative* times outside the
    /// sampled range, which breaks the optimiser; the true coefficients of
    /// the paper's model are physically non-negative.
    pub nonnegative: bool,
    /// Minimise *relative* residuals by weighting each sample with
    /// `1/observed`. Communication samples span two or more orders of
    /// magnitude across the processor range; unweighted least squares
    /// sacrifices the cheap (large-`p`) corner, which is exactly where the
    /// optimiser operates.
    pub relative: bool,
}

impl Default for FitOptions {
    fn default() -> Self {
        Self {
            nonnegative: true,
            relative: true,
        }
    }
}

/// A fitted model plus its goodness-of-fit diagnostics.
#[derive(Clone, Debug)]
pub struct FitReport<M> {
    /// The fitted model.
    pub model: M,
    /// Root-mean-square of absolute residuals (seconds).
    pub rmse: Seconds,
    /// Mean relative error over the samples (|residual| / observed),
    /// skipping zero observations.
    pub mean_rel_error: f64,
    /// Largest relative error over the samples.
    pub max_rel_error: f64,
}

/// Solve a least-squares problem with optional non-negativity by column
/// elimination and optional relative weighting. `design` is row-major
/// `rows × cols`.
fn constrained_ls(
    design: &[f64],
    y: &[f64],
    rows: usize,
    cols: usize,
    options: FitOptions,
) -> Vec<f64> {
    // Relative weighting: scale each row by 1/|y| so residuals are
    // fractions of the observed time.
    let mut scaled_design;
    let mut scaled_y;
    let (design, y): (&[f64], &[f64]) = if options.relative {
        scaled_design = design.to_vec();
        scaled_y = y.to_vec();
        // Weight floor: a (near-)zero observation must not get unbounded
        // weight, or it alone would pin the fit (e.g. an internal
        // redistribution that is free at p = 1).
        let magnitude = y.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        let floor = (0.01 * magnitude).max(1e-12);
        for r in 0..rows {
            let w = 1.0 / (y[r].abs() + floor);
            for c in 0..cols {
                scaled_design[r * cols + c] *= w;
            }
            scaled_y[r] *= w;
        }
        (&scaled_design, &scaled_y)
    } else {
        (design, y)
    };
    let nonnegative = options.nonnegative;
    let mut active: Vec<usize> = (0..cols).collect();
    loop {
        // Build the reduced design over active columns.
        let acols = active.len();
        if acols == 0 {
            return vec![0.0; cols];
        }
        let mut reduced = Vec::with_capacity(rows * acols);
        for r in 0..rows {
            for &c in &active {
                reduced.push(design[r * cols + c]);
            }
        }
        let sol = least_squares(&reduced, y, rows, acols).unwrap_or_else(|| vec![0.0; acols]);
        if !nonnegative {
            let mut full = vec![0.0; cols];
            for (i, &c) in active.iter().enumerate() {
                full[c] = sol[i];
            }
            return full;
        }
        // Drop the most negative coefficient, if any. The threshold is
        // relative to the solution's magnitude so that float noise on a
        // genuinely-zero coefficient doesn't eliminate its column.
        let magnitude = sol.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-30);
        let threshold = -1e-7 * magnitude;
        let mut worst: Option<(usize, f64)> = None;
        for (i, &v) in sol.iter().enumerate() {
            if v < threshold && worst.is_none_or(|(_, w)| v < w) {
                worst = Some((i, v));
            }
        }
        match worst {
            Some((i, _)) => {
                active.remove(i);
            }
            None => {
                let mut full = vec![0.0; cols];
                for (i, &c) in active.iter().enumerate() {
                    full[c] = sol[i].max(0.0);
                }
                return full;
            }
        }
    }
}

fn diagnostics(observed: &[f64], predicted: &[f64]) -> (f64, f64, f64) {
    let n = observed.len() as f64;
    let mut sq = 0.0;
    let mut rel_sum = 0.0;
    let mut rel_max: f64 = 0.0;
    let mut rel_n = 0.0;
    for (&o, &p) in observed.iter().zip(predicted) {
        let e = p - o;
        sq += e * e;
        if o.abs() > 1e-30 {
            let r = (e / o).abs();
            rel_sum += r;
            rel_max = rel_max.max(r);
            rel_n += 1.0;
        }
    }
    (
        (sq / n).sqrt(),
        if rel_n > 0.0 { rel_sum / rel_n } else { 0.0 },
        rel_max,
    )
}

/// Fit the three-term `C1 + C2/p + C3·p` model to `(p, time)` samples.
///
/// # Panics
///
/// Panics if `samples` is empty or contains `p = 0`.
pub fn fit_unary(samples: &[(Procs, Seconds)], options: FitOptions) -> FitReport<PolyUnary> {
    assert!(!samples.is_empty(), "need at least one sample");
    // Zero observations (e.g. a redistribution that is free on one
    // processor) are structural discontinuities the polynomial family
    // cannot pass through; fit the non-zero samples and accept a
    // conservative over-estimate at the free points.
    let nonzero: Vec<(Procs, Seconds)> = samples
        .iter()
        .copied()
        .filter(|&(_, t)| t.abs() > 1e-30)
        .collect();
    let samples: &[(Procs, Seconds)] = if nonzero.is_empty() {
        samples
    } else {
        &nonzero
    };
    let rows = samples.len();
    let mut design = Vec::with_capacity(rows * 3);
    let mut y = Vec::with_capacity(rows);
    for &(p, t) in samples {
        assert!(p >= 1, "cannot profile at p = 0");
        design.extend([1.0, 1.0 / p as f64, p as f64]);
        y.push(t);
    }
    let c = constrained_ls(&design, &y, rows, 3, options);
    let model = PolyUnary::new(c[0], c[1], c[2]);
    let predicted: Vec<f64> = samples.iter().map(|&(p, _)| model.eval(p)).collect();
    let (rmse, mean_rel_error, max_rel_error) = diagnostics(&y, &predicted);
    FitReport {
        model,
        rmse,
        mean_rel_error,
        max_rel_error,
    }
}

/// Fit the five-term external-communication model to
/// `((ps, pr), time)` samples.
///
/// # Panics
///
/// Panics if `samples` is empty or contains a zero processor count.
pub fn fit_ecom(samples: &[((Procs, Procs), Seconds)], options: FitOptions) -> FitReport<PolyEcom> {
    assert!(!samples.is_empty(), "need at least one sample");
    let nonzero: Vec<((Procs, Procs), Seconds)> = samples
        .iter()
        .copied()
        .filter(|&(_, t)| t.abs() > 1e-30)
        .collect();
    let samples: &[((Procs, Procs), Seconds)] = if nonzero.is_empty() {
        samples
    } else {
        &nonzero
    };
    let rows = samples.len();
    let mut design = Vec::with_capacity(rows * 5);
    let mut y = Vec::with_capacity(rows);
    for &((ps, pr), t) in samples {
        assert!(ps >= 1 && pr >= 1, "cannot profile at p = 0");
        let (s, r) = (ps as f64, pr as f64);
        design.extend([1.0, 1.0 / s, 1.0 / r, s, r]);
        y.push(t);
    }
    let c = constrained_ls(&design, &y, rows, 5, options);
    let model = PolyEcom::new(c[0], c[1], c[2], c[3], c[4]);
    let predicted: Vec<f64> = samples
        .iter()
        .map(|&((ps, pr), _)| model.eval(ps, pr))
        .collect();
    let (rmse, mean_rel_error, max_rel_error) = diagnostics(&y, &predicted);
    FitReport {
        model,
        rmse,
        mean_rel_error,
        max_rel_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_unary_model() {
        let truth = PolyUnary::new(0.5, 8.0, 0.125);
        let samples: Vec<(Procs, f64)> = [1, 2, 4, 8, 16, 32, 48, 64]
            .iter()
            .map(|&p| (p, truth.eval(p)))
            .collect();
        let fit = fit_unary(&samples, FitOptions::default());
        assert!((fit.model.c1 - 0.5).abs() < 1e-6, "{:?}", fit.model);
        assert!((fit.model.c2 - 8.0).abs() < 1e-6);
        assert!((fit.model.c3 - 0.125).abs() < 1e-6);
        assert!(fit.max_rel_error < 1e-6);
    }

    #[test]
    fn recovers_exact_ecom_model() {
        let truth = PolyEcom::new(0.1, 2.0, 3.0, 0.01, 0.02);
        let samples: Vec<((Procs, Procs), f64)> = [
            (1, 1),
            (2, 2),
            (4, 4),
            (8, 8),
            (2, 8),
            (8, 2),
            (4, 16),
            (16, 4),
        ]
        .iter()
        .map(|&(s, r)| ((s, r), truth.eval(s, r)))
        .collect();
        let fit = fit_ecom(&samples, FitOptions::default());
        assert!(fit.max_rel_error < 1e-6, "{:?}", fit);
    }

    #[test]
    fn nonnegativity_enforced() {
        // Superlinear-looking data would drive C3 negative without the
        // constraint.
        let samples: Vec<(Procs, f64)> = vec![(1, 10.0), (2, 4.0), (4, 1.5), (8, 0.4), (16, 0.05)];
        let fit = fit_unary(&samples, FitOptions::default());
        assert!(fit.model.c1 >= 0.0);
        assert!(fit.model.c2 >= 0.0);
        assert!(fit.model.c3 >= 0.0);
        // And the model never predicts negative times.
        for p in 1..=64 {
            assert!(fit.model.eval(p) >= 0.0, "negative time at p={p}");
        }
    }

    #[test]
    fn unconstrained_fit_can_go_negative() {
        let samples: Vec<(Procs, f64)> = vec![(1, 10.0), (2, 4.0), (4, 1.5), (8, 0.4), (16, 0.05)];
        let fit = fit_unary(
            &samples,
            FitOptions {
                nonnegative: false,
                relative: false,
            },
        );
        // The data's curvature forces some coefficient below zero.
        assert!(
            fit.model.c1 < 0.0 || fit.model.c3 < 0.0,
            "expected a negative coefficient, got {:?}",
            fit.model
        );
    }

    #[test]
    fn fit_with_noise_stays_close() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let truth = PolyUnary::new(1.0, 16.0, 0.05);
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<(Procs, f64)> = [1, 2, 3, 4, 8, 16, 32, 64]
            .iter()
            .map(|&p| (p, truth.eval(p) * rng.gen_range(0.95..1.05)))
            .collect();
        let fit = fit_unary(&samples, FitOptions::default());
        // Model error within ~paper's 10% on the sampled range.
        for p in 1..=64 {
            let rel = (fit.model.eval(p) - truth.eval(p)).abs() / truth.eval(p);
            assert!(rel < 0.12, "rel error {rel} at p={p}");
        }
    }

    #[test]
    fn minimal_sample_counts() {
        // 8 samples fit 3 unknowns comfortably; even 3 exact samples
        // identify the model.
        let truth = PolyUnary::new(2.0, 4.0, 0.5);
        let samples: Vec<(Procs, f64)> = [1, 2, 4].iter().map(|&p| (p, truth.eval(p))).collect();
        let fit = fit_unary(&samples, FitOptions::default());
        assert!((fit.model.eval(8) - truth.eval(8)).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_panic() {
        let _ = fit_unary(&[], FitOptions::default());
    }
}
