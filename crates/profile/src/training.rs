//! Training-run driver: profile a chain, fit its polynomial twin.
//!
//! §6.3: "the program was run through a training set of sample mappings to
//! build a computation and communication model for the tasks … All the
//! parameters of this model can be computed using 8 executions." Here a
//! "training execution" samples each ground-truth cost function at one
//! processor count (per-task timers around each task and each
//! communication step, as the Fx tool instrumented), optionally with
//! measurement noise; the fitted chain replaces every cost with its
//! polynomial fit while keeping memory requirements and replicability.
//!
//! [`model_accuracy`] then reproduces the paper's validation step —
//! "comparing the predicted and actual communication and computation times
//! … the difference averaged less than 10%".

use pipemap_chain::{ChainBuilder, Edge, Problem, Task, TaskChain};
use pipemap_model::{Procs, Seconds};
use pipemap_sim::NoiseModel;

use crate::fit::{fit_ecom, fit_unary, FitOptions, FitReport};

/// Training configuration.
#[derive(Clone, Debug)]
pub struct TrainingConfig {
    /// Processor counts sampled for the unary functions (the paper's
    /// "8 executions").
    pub procs: Vec<Procs>,
    /// Sender/receiver pairs sampled for external communication.
    pub pairs: Vec<(Procs, Procs)>,
    /// Optional measurement noise (spread, seed).
    pub noise: Option<(f64, u64)>,
    /// Fit options.
    pub fit: FitOptions,
}

/// The paper-style sample set: eight processor counts spread over
/// `[1, max_p]` geometrically with the small counts kept dense.
pub fn default_training_procs(max_p: Procs) -> Vec<Procs> {
    let candidates = [1, 2, 3, 4, 8, 16, 32, 64, 128, 256];
    let mut out: Vec<Procs> = candidates.iter().copied().filter(|&p| p <= max_p).collect();
    if out.last() != Some(&max_p) {
        out.push(max_p);
    }
    out.truncate(8);
    out
}

impl TrainingConfig {
    /// Defaults for a machine with `max_p` processors: eight unary samples
    /// and eight (diagonal + skewed) pair samples.
    pub fn for_procs(max_p: Procs) -> Self {
        let procs = default_training_procs(max_p);
        let mut pairs: Vec<(Procs, Procs)> = procs.iter().map(|&p| (p, p)).collect();
        // Skewed pairs exercise the asymmetric terms. One symmetric pair
        // (a,b),(b,a) leaves the 5-term design rank-deficient (the null
        // vector couples the 1/p and p columns with ratio −ab), so two
        // skewed pairs with *different products* are required for unique
        // identification.
        let hi = *procs.last().unwrap();
        let mid = procs[procs.len() / 2];
        pairs.push((1.max(mid / 2), hi));
        pairs.push((hi, 1.max(mid / 2)));
        if mid >= 2 {
            pairs.push((2.min(hi), mid));
            pairs.push((mid, 2.min(hi)));
        }
        pairs.sort_unstable();
        pairs.dedup();
        Self {
            procs,
            pairs,
            noise: None,
            fit: FitOptions::default(),
        }
    }

    /// Add measurement noise.
    pub fn with_noise(mut self, spread: f64, seed: u64) -> Self {
        self.noise = Some((spread, seed));
        self
    }
}

/// Raw profile: timing samples for every task and edge of a chain.
#[derive(Clone, Debug)]
pub struct ProfileData {
    /// Per-task `(p, exec time)` samples.
    pub exec: Vec<Vec<(Procs, Seconds)>>,
    /// Per-edge `(p, internal redistribution time)` samples.
    pub icom: Vec<Vec<(Procs, Seconds)>>,
    /// Per-edge `((ps, pr), external transfer time)` samples.
    pub ecom: Vec<Vec<((Procs, Procs), Seconds)>>,
}

/// Profile `chain`'s ground-truth cost functions at the configured sample
/// points (the stand-in for instrumented training executions).
pub fn profile_chain(chain: &TaskChain, config: &TrainingConfig) -> ProfileData {
    let mut noise = config.noise.map(|(s, seed)| NoiseModel::new(s, seed));
    let mut measure = |t: Seconds| -> Seconds {
        match noise.as_mut() {
            Some(n) => n.perturb(t),
            None => t,
        }
    };
    let exec = (0..chain.len())
        .map(|i| {
            config
                .procs
                .iter()
                .map(|&p| (p, measure(chain.task(i).exec.eval(p))))
                .collect()
        })
        .collect();
    let icom = (0..chain.len().saturating_sub(1))
        .map(|e| {
            config
                .procs
                .iter()
                .map(|&p| (p, measure(chain.edge(e).icom.eval(p))))
                .collect()
        })
        .collect();
    let ecom = (0..chain.len().saturating_sub(1))
        .map(|e| {
            config
                .pairs
                .iter()
                .map(|&(s, r)| ((s, r), measure(chain.edge(e).ecom.eval(s, r))))
                .collect()
        })
        .collect();
    ProfileData { exec, icom, ecom }
}

/// Fit a polynomial twin of `chain` from profile data: every cost function
/// becomes its fitted polynomial; memory, floors, and replicability carry
/// over unchanged. Returns the fitted chain and the per-function reports.
pub fn fit_chain(
    chain: &TaskChain,
    profile: &ProfileData,
    options: FitOptions,
) -> (TaskChain, Vec<FitReport<pipemap_model::PolyUnary>>) {
    let mut reports = Vec::new();
    let mut builder = ChainBuilder::new();
    for i in 0..chain.len() {
        let fit = fit_unary(&profile.exec[i], options);
        let src = chain.task(i);
        let mut task = Task::new(src.name.clone(), fit.model).with_memory(src.memory);
        if !src.replicable {
            task = task.not_replicable();
        }
        if let Some(m) = src.min_procs {
            task = task.with_min_procs(m);
        }
        reports.push(fit);
        builder = builder.task(task);
        if i + 1 < chain.len() {
            let ic = fit_unary(&profile.icom[i], options);
            let ec = fit_ecom(&profile.ecom[i], options);
            reports.push(ic.clone());
            builder = builder.edge(Edge::new(ic.model, ec.model));
        }
    }
    (builder.build(), reports)
}

/// Convenience: profile + fit a problem's chain, returning the fitted
/// problem (same processors, memory, and replication policy).
pub fn fit_problem(problem: &Problem, config: &TrainingConfig) -> Problem {
    let profile = profile_chain(&problem.chain, config);
    let (fitted, _) = fit_chain(&problem.chain, &profile, config.fit);
    let mut p = Problem::new(fitted, problem.total_procs, problem.mem_per_proc);
    p.replication = problem.replication;
    p
}

/// Accuracy of a fitted chain against the ground truth over the full
/// processor range (the §6.3 "difference averaged less than 10%" check).
#[derive(Clone, Copy, Debug)]
pub struct AccuracyReport {
    /// Mean relative error over all evaluated points of all functions.
    pub mean_rel_error: f64,
    /// Worst relative error.
    pub max_rel_error: f64,
    /// Number of points compared.
    pub points: usize,
}

/// Compare `fitted` against `truth` at every processor count in
/// `1..=max_p` (unary) and on a subsampled pair grid (binary), skipping
/// points where the true time is ~zero.
pub fn model_accuracy(truth: &TaskChain, fitted: &TaskChain, max_p: Procs) -> AccuracyReport {
    assert_eq!(truth.len(), fitted.len());
    let mut sum = 0.0;
    let mut max: f64 = 0.0;
    let mut n = 0usize;
    let mut add = |t: f64, f: f64| {
        if t.abs() > 1e-30 {
            let r = ((f - t) / t).abs();
            sum += r;
            max = max.max(r);
            n += 1;
        }
    };
    for i in 0..truth.len() {
        for p in 1..=max_p {
            add(truth.task(i).exec.eval(p), fitted.task(i).exec.eval(p));
        }
    }
    for e in 0..truth.len().saturating_sub(1) {
        for p in 1..=max_p {
            add(truth.edge(e).icom.eval(p), fitted.edge(e).icom.eval(p));
        }
        let step = (max_p / 8).max(1);
        for s in (1..=max_p).step_by(step) {
            for r in (1..=max_p).step_by(step) {
                add(
                    truth.edge(e).ecom.eval(s, r),
                    fitted.edge(e).ecom.eval(s, r),
                );
            }
        }
    }
    AccuracyReport {
        mean_rel_error: if n > 0 { sum / n as f64 } else { 0.0 },
        max_rel_error: max,
        points: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_model::{PolyEcom, PolyUnary, UnaryCost};

    fn poly_chain() -> TaskChain {
        ChainBuilder::new()
            .task(Task::new("a", PolyUnary::new(0.2, 6.0, 0.01)))
            .edge(Edge::new(
                PolyUnary::new(0.05, 0.5, 0.0),
                PolyEcom::new(0.1, 1.0, 1.5, 0.005, 0.004),
            ))
            .task(Task::new("b", PolyUnary::new(0.1, 9.0, 0.02)))
            .build()
    }

    #[test]
    fn default_procs_are_eight_and_sorted() {
        let p = default_training_procs(64);
        assert_eq!(p.len(), 8);
        assert!(p.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*p.first().unwrap(), 1);
        assert!(p.contains(&64));
        let small = default_training_procs(4);
        assert!(small.iter().all(|&x| x <= 4));
        assert!(small.contains(&4));
    }

    #[test]
    fn polynomial_truth_is_recovered_exactly() {
        let chain = poly_chain();
        let cfg = TrainingConfig::for_procs(64);
        let profile = profile_chain(&chain, &cfg);
        let (fitted, _) = fit_chain(&chain, &profile, FitOptions::default());
        let acc = model_accuracy(&chain, &fitted, 64);
        assert!(
            acc.max_rel_error < 1e-6,
            "exact polynomial should refit exactly: {acc:?}"
        );
    }

    #[test]
    fn nonpolynomial_truth_fits_within_paper_error() {
        // Ground truth with ceil-imbalance and a log collective — not in
        // the polynomial family. The fit should land in the paper's
        // "averaged less than 10%" regime.
        let truth = ChainBuilder::new()
            .task(Task::new(
                "fft",
                UnaryCost::custom(|p| {
                    let units = 64u64.div_ceil(p as u64) as f64;
                    0.1 + 0.05 * units + 0.001 * (p as f64)
                }),
            ))
            .edge(Edge::new(
                UnaryCost::custom(|p| {
                    0.05 + 0.3 / p as f64 + 0.004 * p as f64 + 0.005 * (p as f64).log2().ceil()
                }),
                PolyEcom::new(0.05, 0.8, 0.8, 0.002, 0.002),
            ))
            .task(Task::new(
                "hist",
                UnaryCost::custom(|p| 0.2 + 2.0 / p as f64 + 0.01 * (p as f64).log2().max(0.0)),
            ))
            .build();
        let cfg = TrainingConfig::for_procs(64);
        let profile = profile_chain(&truth, &cfg);
        let (fitted, _) = fit_chain(&truth, &profile, FitOptions::default());
        let acc = model_accuracy(&truth, &fitted, 64);
        assert!(
            acc.mean_rel_error < 0.10,
            "mean error {:.3} exceeds the paper's 10%",
            acc.mean_rel_error
        );
        assert!(acc.mean_rel_error > 1e-6, "fit should not be exact");
    }

    #[test]
    fn fitted_chain_preserves_metadata() {
        let chain = ChainBuilder::new()
            .task(
                Task::new("a", PolyUnary::new(0.0, 2.0, 0.0))
                    .with_memory(pipemap_model::MemoryReq::new(1.0, 2.0))
                    .not_replicable()
                    .with_min_procs(2),
            )
            .build();
        let cfg = TrainingConfig::for_procs(16);
        let profile = profile_chain(&chain, &cfg);
        let (fitted, _) = fit_chain(&chain, &profile, FitOptions::default());
        let t = fitted.task(0);
        assert!(!t.replicable);
        assert_eq!(t.min_procs, Some(2));
        assert_eq!(t.memory, pipemap_model::MemoryReq::new(1.0, 2.0));
    }

    #[test]
    fn noisy_training_still_fits_reasonably() {
        let chain = poly_chain();
        let cfg = TrainingConfig::for_procs(64).with_noise(0.05, 11);
        let profile = profile_chain(&chain, &cfg);
        let (fitted, _) = fit_chain(&chain, &profile, FitOptions::default());
        let acc = model_accuracy(&chain, &fitted, 64);
        assert!(acc.mean_rel_error < 0.15, "{acc:?}");
    }

    #[test]
    fn fit_problem_roundtrip() {
        let p = Problem::new(poly_chain(), 32, 1e9).without_replication();
        let fitted = fit_problem(&p, &TrainingConfig::for_procs(32));
        assert_eq!(fitted.total_procs, 32);
        assert_eq!(fitted.num_tasks(), 2);
        assert_eq!(fitted.replication, p.replication);
    }

    #[test]
    fn profile_counts_match_paper_budget() {
        // Eight unary samples per function — the paper's 8 executions.
        let chain = poly_chain();
        let cfg = TrainingConfig::for_procs(64);
        let profile = profile_chain(&chain, &cfg);
        assert_eq!(profile.exec[0].len(), 8);
        assert_eq!(profile.icom[0].len(), 8);
        assert!(profile.ecom[0].len() >= 8);
    }
}
