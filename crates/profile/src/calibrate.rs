//! Transport calibration: fit the paper's `f_ecom` from *measured*
//! cross-process runs instead of assuming a model constant.
//!
//! The executor measures mean seconds per message for a handful of
//! payload sizes (see `pipemap_exec::measure_transport`); this module
//! fits the affine cost
//!
//! ```text
//! t(B) = per_msg_s + per_byte_s · B
//! ```
//!
//! by least squares over those samples. `per_msg_s` captures framing,
//! syscall and scheduling overhead paid once per message; `per_byte_s`
//! is the marginal copy/transfer cost. The fitted pair prices chain
//! edges (`f_ecom` for a known edge payload) so `pipemap map` optimises
//! against the transport the machine actually has.

use crate::linalg::least_squares;

/// Schema tag of the serialized calibration file (re-exported from
/// `pipemap_obs::schema`, the single home of all tags).
pub const CALIBRATION_SCHEMA: &str = pipemap_obs::schema::CALIBRATION;

/// One measured point: mean seconds per message at a payload size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CalibrationSample {
    /// Payload bytes per message.
    pub payload_bytes: f64,
    /// Observed mean seconds per message at that size.
    pub seconds_per_message: f64,
}

/// The fitted affine transport cost `t(B) = per_msg_s + per_byte_s·B`.
#[derive(Clone, Debug, PartialEq)]
pub struct TransportCalibration {
    /// Fixed cost per message (framing, syscalls, scheduling), seconds.
    pub per_msg_s: f64,
    /// Marginal cost per payload byte, seconds.
    pub per_byte_s: f64,
    /// Coefficient of determination of the fit over the samples.
    pub r2: f64,
    /// The samples the fit was computed from.
    pub samples: Vec<CalibrationSample>,
}

impl TransportCalibration {
    /// Least-squares fit over `samples`. Needs at least two distinct
    /// payload sizes to separate the fixed from the marginal cost;
    /// returns `None` otherwise. Coefficients are clamped to be
    /// non-negative — a negative cost is always measurement noise and
    /// would predict negative transport times.
    pub fn fit(samples: &[CalibrationSample]) -> Option<Self> {
        if samples.len() < 2 {
            return None;
        }
        let first = samples[0].payload_bytes;
        if samples.iter().all(|s| s.payload_bytes == first) {
            return None;
        }
        let rows = samples.len();
        let mut design = Vec::with_capacity(rows * 2);
        let mut y = Vec::with_capacity(rows);
        for s in samples {
            design.push(1.0);
            design.push(s.payload_bytes);
            y.push(s.seconds_per_message);
        }
        let coeff = least_squares(&design, &y, rows, 2)?;
        let per_msg_s = coeff[0].max(0.0);
        let per_byte_s = coeff[1].max(0.0);

        let mean = y.iter().sum::<f64>() / rows as f64;
        let ss_tot: f64 = y.iter().map(|v| (v - mean).powi(2)).sum();
        let ss_res: f64 = samples
            .iter()
            .map(|s| {
                let pred = per_msg_s + per_byte_s * s.payload_bytes;
                (s.seconds_per_message - pred).powi(2)
            })
            .sum();
        let r2 = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            1.0
        };
        Some(Self {
            per_msg_s,
            per_byte_s,
            r2,
            samples: samples.to_vec(),
        })
    }

    /// Predicted transport seconds for one message of `bytes` payload —
    /// the calibrated `f_ecom` for an edge of that size.
    pub fn ecom_seconds(&self, bytes: f64) -> f64 {
        self.per_msg_s + self.per_byte_s * bytes.max(0.0)
    }

    /// Serialize to the `pipemap-calibration/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{CALIBRATION_SCHEMA}\",\n"));
        s.push_str(&format!("  \"per_msg_s\": {:e},\n", self.per_msg_s));
        s.push_str(&format!("  \"per_byte_s\": {:e},\n", self.per_byte_s));
        s.push_str(&format!("  \"r2\": {:e},\n", self.r2));
        s.push_str("  \"samples\": [\n");
        for (i, sm) in self.samples.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"payload_bytes\": {:e}, \"seconds_per_message\": {:e}}}{}\n",
                sm.payload_bytes,
                sm.seconds_per_message,
                if i + 1 < self.samples.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse a `pipemap-calibration/v1` document produced by
    /// [`to_json`](Self::to_json).
    pub fn parse(text: &str) -> Result<Self, String> {
        if !text.contains(CALIBRATION_SCHEMA) {
            return Err(format!("not a {CALIBRATION_SCHEMA} document"));
        }
        let per_msg_s = scan_number(text, "per_msg_s")?;
        let per_byte_s = scan_number(text, "per_byte_s")?;
        let r2 = scan_number(text, "r2")?;
        let mut samples = Vec::new();
        let mut rest = text;
        while let Some(pos) = rest.find("\"payload_bytes\"") {
            let obj = &rest[pos..];
            let payload_bytes = scan_number(obj, "payload_bytes")?;
            let seconds_per_message = scan_number(obj, "seconds_per_message")?;
            samples.push(CalibrationSample {
                payload_bytes,
                seconds_per_message,
            });
            rest = &obj["\"payload_bytes\"".len()..];
        }
        Ok(Self {
            per_msg_s,
            per_byte_s,
            r2,
            samples,
        })
    }
}

/// Find `"key": <number>` in `text` and parse the number.
fn scan_number(text: &str, key: &str) -> Result<f64, String> {
    let tag = format!("\"{key}\"");
    let pos = text
        .find(&tag)
        .ok_or_else(|| format!("missing field '{key}'"))?;
    let after = &text[pos + tag.len()..];
    let after = after
        .trim_start()
        .strip_prefix(':')
        .ok_or_else(|| format!("malformed field '{key}'"))?
        .trim_start();
    let end = after
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(after.len());
    after[..end]
        .parse::<f64>()
        .map_err(|e| format!("field '{key}': {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_samples(per_msg: f64, per_byte: f64) -> Vec<CalibrationSample> {
        [1024.0, 8192.0, 65536.0, 262144.0]
            .iter()
            .map(|&b| CalibrationSample {
                payload_bytes: b,
                seconds_per_message: per_msg + per_byte * b,
            })
            .collect()
    }

    #[test]
    fn fit_recovers_exact_affine_costs() {
        let cal = TransportCalibration::fit(&exact_samples(5e-6, 2e-10)).expect("fit");
        assert!((cal.per_msg_s - 5e-6).abs() < 1e-12, "{}", cal.per_msg_s);
        assert!((cal.per_byte_s - 2e-10).abs() < 1e-16, "{}", cal.per_byte_s);
        assert!(cal.r2 > 0.999999, "r2 {}", cal.r2);
        assert!((cal.ecom_seconds(10_000.0) - (5e-6 + 2e-6)).abs() < 1e-10);
    }

    #[test]
    fn fit_refuses_degenerate_sample_sets() {
        assert!(TransportCalibration::fit(&[]).is_none());
        let one = [CalibrationSample {
            payload_bytes: 1024.0,
            seconds_per_message: 1e-5,
        }];
        assert!(TransportCalibration::fit(&one).is_none());
        // Two samples at the same size cannot separate the two costs.
        let same = [one[0], one[0]];
        assert!(TransportCalibration::fit(&same).is_none());
    }

    #[test]
    fn negative_noise_is_clamped() {
        // A decreasing trend would fit a negative per-byte cost; the
        // clamp keeps predictions physical.
        let samples = [
            CalibrationSample {
                payload_bytes: 1024.0,
                seconds_per_message: 1e-5,
            },
            CalibrationSample {
                payload_bytes: 65536.0,
                seconds_per_message: 5e-6,
            },
        ];
        let cal = TransportCalibration::fit(&samples).expect("fit");
        assert!(cal.per_byte_s >= 0.0);
        assert!(cal.ecom_seconds(1e9) >= 0.0);
    }

    #[test]
    fn json_round_trips_bitwise() {
        let cal = TransportCalibration::fit(&exact_samples(3.5e-6, 1.25e-10)).expect("fit");
        let parsed = TransportCalibration::parse(&cal.to_json()).expect("parse");
        assert_eq!(cal.per_msg_s.to_bits(), parsed.per_msg_s.to_bits());
        assert_eq!(cal.per_byte_s.to_bits(), parsed.per_byte_s.to_bits());
        assert_eq!(cal.r2.to_bits(), parsed.r2.to_bits());
        assert_eq!(cal.samples.len(), parsed.samples.len());
        for (a, b) in cal.samples.iter().zip(&parsed.samples) {
            assert_eq!(a.payload_bytes.to_bits(), b.payload_bytes.to_bits());
            assert_eq!(
                a.seconds_per_message.to_bits(),
                b.seconds_per_message.to_bits()
            );
        }
    }

    #[test]
    fn parse_rejects_foreign_documents() {
        assert!(TransportCalibration::parse("{}").is_err());
        assert!(TransportCalibration::parse("per_msg_s: 3").is_err());
    }
}
