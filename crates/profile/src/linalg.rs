//! Minimal dense linear algebra: linear solve and least squares.
//!
//! The fitting problems here are tiny (3–5 unknowns, a handful of
//! samples), so a textbook implementation — normal equations plus
//! partial-pivot Gaussian elimination with a ridge term for rank-deficient
//! designs — is both sufficient and dependency-free.

/// Solve `A x = b` for square `A` (row-major, `n × n`) by Gaussian
/// elimination with partial pivoting. Returns `None` if the matrix is
/// numerically singular.
pub fn solve_linear(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "matrix shape mismatch");
    assert_eq!(b.len(), n, "rhs shape mismatch");
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Partial pivot: the largest |entry| in this column at/below row.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                m[i * n + col]
                    .abs()
                    .partial_cmp(&m[j * n + col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap();
        if m[pivot_row * n + col].abs() < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for k in 0..n {
                m.swap(col * n + k, pivot_row * n + k);
            }
            rhs.swap(col, pivot_row);
        }
        let pivot = m[col * n + col];
        for row in col + 1..n {
            let factor = m[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= factor * m[col * n + k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = rhs[row];
        for k in row + 1..n {
            sum -= m[row * n + k] * x[k];
        }
        x[row] = sum / m[row * n + row];
    }
    Some(x)
}

/// Least-squares solution of `D x ≈ y` for a design matrix `D` with
/// `rows × cols` entries (row-major, `rows ≥ 1`), via the normal equations
/// `(DᵀD + λI) x = Dᵀy` with a tiny ridge `λ` scaled to the matrix so
/// rank-deficient designs (e.g. two samples for three unknowns) still
/// yield a stable solution.
pub fn least_squares(design: &[f64], y: &[f64], rows: usize, cols: usize) -> Option<Vec<f64>> {
    assert_eq!(design.len(), rows * cols, "design shape mismatch");
    assert_eq!(y.len(), rows, "rhs shape mismatch");
    let mut ata = vec![0.0; cols * cols];
    let mut aty = vec![0.0; cols];
    for r in 0..rows {
        for i in 0..cols {
            let di = design[r * cols + i];
            aty[i] += di * y[r];
            for j in 0..cols {
                ata[i * cols + j] += di * design[r * cols + j];
            }
        }
    }
    // Try the plain normal equations first — exact when well-conditioned.
    if let Some(x) = solve_linear(&ata, &aty, cols) {
        return Some(x);
    }
    // Rank-deficient design: fall back to a tiny ridge scaled to the
    // diagonal magnitude.
    let scale = (0..cols)
        .map(|i| ata[i * cols + i])
        .fold(0.0_f64, f64::max)
        .max(1e-30);
    let lambda = 1e-9 * scale;
    for i in 0..cols {
        ata[i * cols + i] += lambda;
    }
    solve_linear(&ata, &aty, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let x = solve_linear(&a, &[3.0, 4.0], 2).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn solves_requiring_pivoting() {
        // First pivot is zero: must swap rows.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let x = solve_linear(&a, &[5.0, 7.0], 2).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn solves_3x3() {
        let a = vec![2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0];
        let b = vec![8.0, -11.0, -3.0];
        let x = solve_linear(&a, &b, 3).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        assert!((x[2] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn singular_detected() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(solve_linear(&a, &[1.0, 2.0], 2).is_none());
    }

    #[test]
    fn least_squares_exact_fit() {
        // y = 2 + 3x sampled exactly.
        let xs = [1.0, 2.0, 3.0, 4.0];
        let mut design = Vec::new();
        let mut y = Vec::new();
        for &x in &xs {
            design.extend([1.0, x]);
            y.push(2.0 + 3.0 * x);
        }
        let c = least_squares(&design, &y, xs.len(), 2).unwrap();
        assert!((c[0] - 2.0).abs() < 1e-6);
        assert!((c[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn least_squares_overdetermined_minimizes() {
        // Noisy line: solution should be near the true coefficients and
        // the residual orthogonal to the design columns.
        let pts = [(0.0, 1.1), (1.0, 2.9), (2.0, 5.2), (3.0, 6.8)];
        let mut design = Vec::new();
        let mut y = Vec::new();
        for &(x, v) in &pts {
            design.extend([1.0, x]);
            y.push(v);
        }
        let c = least_squares(&design, &y, pts.len(), 2).unwrap();
        assert!((c[0] - 1.04).abs() < 0.1, "intercept {}", c[0]);
        assert!((c[1] - 1.95).abs() < 0.1, "slope {}", c[1]);
    }

    #[test]
    fn least_squares_rank_deficient_is_stable() {
        // One sample, two unknowns: ridge keeps it solvable.
        let c = least_squares(&[1.0, 1.0], &[4.0], 1, 2).unwrap();
        let predicted = c[0] + c[1];
        assert!((predicted - 4.0).abs() < 1e-3);
    }
}
