//! Streaming (online) cost-model estimation.
//!
//! The paper fits `f_exec` / `f_ecom` once, from a small set of training
//! runs (§5), and the mapping stays optimal only while those fits match
//! reality. This module keeps the fits *live*: per-stage and per-edge
//! estimators absorb measured service and transfer times one sample at a
//! time — a numerically-stable Welford accumulator for the all-time view
//! plus an exponentially-decayed window that forgets old behaviour with a
//! configurable half-life — and periodically refit the polynomial
//! coefficients.
//!
//! Two refit regimes, chosen automatically:
//!
//! * **Full least-squares** when samples cover at least three distinct
//!   processor counts (five distinct `(ps, pr)` pairs for the external
//!   form): the same [`crate::fit`] solvers the offline trainer uses run
//!   on the decayed per-count means, so a long-lived deployment that has
//!   seen several replication degrees re-derives all coefficients.
//! * **Scale refit** otherwise: a running system usually executes each
//!   stage at *one* fixed processor count, which under-determines the
//!   three-coefficient model. The estimator then scales the static
//!   model's coefficients by `measured_mean / static(p)` — exact when
//!   the drift is a uniform cost change (the common case: data grew, a
//!   cache stopped fitting), and the best single-point update available
//!   otherwise.
//!
//! Each estimator exposes the *drift* of the fitted model from the
//! static one, the residual of the fit against the measured means, and a
//! sample-count/variance-based confidence, so consumers (the event
//! engine, `pipemap doctor --model online`, `pipemap top`) can tell "the
//! model moved" from "the data is noisy".

use pipemap_model::{PolyEcom, PolyUnary, Procs, Seconds};

use crate::fit::{fit_ecom, fit_unary, FitOptions};

/// Numerically-stable streaming mean/variance (Welford's algorithm).
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// A new empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Exponentially-decayed mean/variance: each new sample multiplies the
/// weight of history by `0.5^(1/half_life)`, so behaviour from more than
/// a few half-lives ago no longer influences the estimate. This is what
/// lets the fit track a mid-stream cost change instead of averaging it
/// away.
#[derive(Clone, Copy, Debug)]
pub struct Decayed {
    alpha: f64,
    weight: f64,
    mean: f64,
    var: f64,
    n: u64,
}

impl Decayed {
    /// A new window whose history halves in weight every `half_life`
    /// samples.
    pub fn new(half_life: f64) -> Self {
        let half_life = half_life.max(1.0);
        Self {
            alpha: 0.5f64.powf(1.0 / half_life),
            weight: 0.0,
            mean: 0.0,
            var: 0.0,
            n: 0,
        }
    }

    /// Absorb one observation.
    pub fn push(&mut self, x: f64) {
        self.weight = self.weight * self.alpha + 1.0;
        let eta = 1.0 / self.weight;
        let d = x - self.mean;
        self.mean += eta * d;
        self.var = (1.0 - eta) * (self.var + eta * d * d);
        self.n += 1;
    }

    /// Total observations absorbed (undecayed count).
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Effective (decayed) sample weight; converges to ~1.44 ×
    /// half-life under steady input.
    pub fn effective_weight(&self) -> f64 {
        self.weight
    }

    /// Decay-weighted mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Decay-weighted variance.
    pub fn variance(&self) -> f64 {
        self.var.max(0.0)
    }

    /// Decay-weighted standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Configuration shared by the per-stage and per-edge estimators.
#[derive(Clone, Copy, Debug)]
pub struct OnlineConfig {
    /// Half-life of the decayed window, in samples.
    pub half_life: f64,
    /// Refit the polynomial after this many new samples per estimator.
    pub refit_every: u64,
    /// Minimum (decayed-window) samples at a processor count before it
    /// participates in a full least-squares refit.
    pub min_samples_per_point: u64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            half_life: 64.0,
            refit_every: 32,
            min_samples_per_point: 4,
        }
    }
}

/// A point-in-time view of one estimator, ready for rendering.
#[derive(Clone, Copy, Debug)]
pub struct EstimatorSnapshot {
    /// The static (offline-fitted) model the estimator started from.
    pub static_model: PolyUnary,
    /// The current online-fitted model.
    pub fitted: PolyUnary,
    /// Total samples absorbed.
    pub samples: u64,
    /// The processor count carrying the most sample weight.
    pub p: Procs,
    /// Decayed mean service time at that count.
    pub mean_s: f64,
    /// Decayed standard deviation at that count.
    pub sd_s: f64,
    /// Relative deviation of the fitted model from the static one at the
    /// dominant count: `|fitted(p) − static(p)| / static(p)`.
    pub drift: f64,
    /// Signed drift factor `fitted(p) / static(p)` at the dominant count
    /// (`1.0` when the static model is non-positive). This is the γ the
    /// solver's exact stability margins are expressed in: the mapping is
    /// provably still optimal while `exec_down < factor < exec_up`.
    pub factor: f64,
    /// Relative error of the fitted model against the measured decayed
    /// mean at the dominant count.
    pub fit_rel_err: f64,
    /// Sample-count/variance confidence in `[0, 1]`.
    pub confidence: f64,
}

/// Per-count accumulators for one stage (or one identified edge count).
#[derive(Clone, Debug)]
struct PointStats {
    welford: Welford,
    decayed: Decayed,
}

/// Online estimator for one stage's three-term `f_exec` model.
#[derive(Clone, Debug)]
pub struct StageEstimator {
    static_model: PolyUnary,
    fitted: PolyUnary,
    points: Vec<(Procs, PointStats)>,
    cfg: OnlineConfig,
    since_refit: u64,
    refits: u64,
}

impl StageEstimator {
    /// A new estimator seeded with the static model.
    pub fn new(static_model: PolyUnary, cfg: OnlineConfig) -> Self {
        Self {
            static_model,
            fitted: static_model,
            points: Vec::new(),
            cfg,
            since_refit: 0,
            refits: 0,
        }
    }

    /// Absorb one measured service time at `p` processors, refitting
    /// when due. Non-finite or negative observations are ignored.
    pub fn observe(&mut self, p: Procs, seconds: Seconds) {
        if p == 0 || !seconds.is_finite() || seconds < 0.0 {
            return;
        }
        let half_life = self.cfg.half_life;
        let stats = match self.points.iter_mut().find(|(q, _)| *q == p) {
            Some((_, s)) => s,
            None => {
                self.points.push((
                    p,
                    PointStats {
                        welford: Welford::new(),
                        decayed: Decayed::new(half_life),
                    },
                ));
                &mut self.points.last_mut().expect("just pushed").1
            }
        };
        stats.welford.push(seconds);
        stats.decayed.push(seconds);
        self.since_refit += 1;
        if self.since_refit >= self.cfg.refit_every {
            self.refit();
        }
    }

    /// Re-derive the fitted model from the current decayed means.
    pub fn refit(&mut self) {
        self.since_refit = 0;
        let usable: Vec<(Procs, Seconds)> = self
            .points
            .iter()
            .filter(|(_, s)| s.decayed.count() >= self.cfg.min_samples_per_point)
            .map(|(p, s)| (*p, s.decayed.mean()))
            .collect();
        if usable.is_empty() {
            return;
        }
        self.refits += 1;
        if usable.len() >= 3 {
            // Enough distinct processor counts to determine all three
            // coefficients: run the offline least-squares solver on the
            // decayed means.
            self.fitted = fit_unary(&usable, FitOptions::default()).model;
            return;
        }
        // Under-determined (the running system executes this stage at a
        // fixed count): scale the static shape to the measured level.
        let (p, mean) = *usable
            .iter()
            .max_by(|a, b| {
                let wa = self.weight_at(a.0);
                let wb = self.weight_at(b.0);
                wa.total_cmp(&wb)
            })
            .expect("non-empty");
        let predicted = self.static_model.eval(p);
        if predicted.is_finite() && predicted > 0.0 {
            self.fitted = self.static_model.scale(mean / predicted);
        } else {
            self.fitted = PolyUnary::new(mean, 0.0, 0.0);
        }
    }

    fn weight_at(&self, p: Procs) -> f64 {
        self.points
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, s)| s.decayed.effective_weight())
            .unwrap_or(0.0)
    }

    /// The processor count carrying the most decayed sample weight.
    fn dominant(&self) -> Option<(Procs, &PointStats)> {
        self.points
            .iter()
            .max_by(|a, b| {
                a.1.decayed
                    .effective_weight()
                    .total_cmp(&b.1.decayed.effective_weight())
            })
            .map(|(p, s)| (*p, s))
    }

    /// The current online-fitted model.
    pub fn fitted(&self) -> PolyUnary {
        self.fitted
    }

    /// The static model the estimator started from.
    pub fn static_model(&self) -> PolyUnary {
        self.static_model
    }

    /// Total samples absorbed across all counts.
    pub fn samples(&self) -> u64 {
        self.points.iter().map(|(_, s)| s.welford.count()).sum()
    }

    /// Completed refits.
    pub fn refits(&self) -> u64 {
        self.refits
    }

    /// Snapshot for rendering; `None` until the first observation.
    pub fn snapshot(&self) -> Option<EstimatorSnapshot> {
        let (p, stats) = self.dominant()?;
        let mean = stats.decayed.mean();
        let sd = stats.decayed.sd();
        let stat = self.static_model.eval(p);
        let fit = self.fitted.eval(p);
        let (drift, factor) = if stat.is_finite() && stat > 0.0 {
            ((fit - stat).abs() / stat, fit / stat)
        } else {
            (0.0, 1.0)
        };
        let fit_rel_err = if mean > 0.0 {
            (fit - mean).abs() / mean
        } else {
            0.0
        };
        let n = stats.decayed.count() as f64;
        // Confidence grows with samples and shrinks with relative
        // spread: ~0.5 after 8 quiet samples, →1 as the window fills.
        let rel_sd = if mean > 0.0 { sd / mean } else { 0.0 };
        let confidence = ((n / (n + 8.0)) * (1.0 / (1.0 + rel_sd))).clamp(0.0, 1.0);
        Some(EstimatorSnapshot {
            static_model: self.static_model,
            fitted: self.fitted,
            samples: self.samples(),
            p,
            mean_s: mean,
            sd_s: sd,
            drift,
            factor,
            fit_rel_err,
            confidence,
        })
    }
}

/// Online estimator for one edge's five-term `f_ecom` model. Same
/// regimes as [`StageEstimator`]: full [`fit_ecom`] when five distinct
/// `(ps, pr)` pairs have enough samples, scale refit otherwise.
#[derive(Clone, Debug)]
pub struct EdgeEstimator {
    static_model: PolyEcom,
    fitted: PolyEcom,
    points: Vec<((Procs, Procs), PointStats)>,
    cfg: OnlineConfig,
    since_refit: u64,
}

impl EdgeEstimator {
    /// A new estimator seeded with the static model.
    pub fn new(static_model: PolyEcom, cfg: OnlineConfig) -> Self {
        Self {
            static_model,
            fitted: static_model,
            points: Vec::new(),
            cfg,
            since_refit: 0,
        }
    }

    /// Absorb one measured transfer time between `ps` senders and `pr`
    /// receivers.
    pub fn observe(&mut self, ps: Procs, pr: Procs, seconds: Seconds) {
        if ps == 0 || pr == 0 || !seconds.is_finite() || seconds < 0.0 {
            return;
        }
        let half_life = self.cfg.half_life;
        let key = (ps, pr);
        let stats = match self.points.iter_mut().find(|(q, _)| *q == key) {
            Some((_, s)) => s,
            None => {
                self.points.push((
                    key,
                    PointStats {
                        welford: Welford::new(),
                        decayed: Decayed::new(half_life),
                    },
                ));
                &mut self.points.last_mut().expect("just pushed").1
            }
        };
        stats.welford.push(seconds);
        stats.decayed.push(seconds);
        self.since_refit += 1;
        if self.since_refit >= self.cfg.refit_every {
            self.refit();
        }
    }

    /// Re-derive the fitted model from the current decayed means.
    pub fn refit(&mut self) {
        self.since_refit = 0;
        let usable: Vec<((Procs, Procs), Seconds)> = self
            .points
            .iter()
            .filter(|(_, s)| s.decayed.count() >= self.cfg.min_samples_per_point)
            .map(|(k, s)| (*k, s.decayed.mean()))
            .collect();
        if usable.is_empty() {
            return;
        }
        if usable.len() >= 5 {
            self.fitted = fit_ecom(&usable, FitOptions::default()).model;
            return;
        }
        let ((ps, pr), mean) = *usable
            .iter()
            .max_by(|a, b| {
                let w = |k: (Procs, Procs)| {
                    self.points
                        .iter()
                        .find(|(q, _)| *q == k)
                        .map(|(_, s)| s.decayed.effective_weight())
                        .unwrap_or(0.0)
                };
                w(a.0).total_cmp(&w(b.0))
            })
            .expect("non-empty");
        let predicted = self.static_model.eval(ps, pr);
        if predicted.is_finite() && predicted > 0.0 {
            self.fitted = self.static_model.scale(mean / predicted);
        } else {
            self.fitted = PolyEcom::new(mean, 0.0, 0.0, 0.0, 0.0);
        }
    }

    /// The current online-fitted model.
    pub fn fitted(&self) -> PolyEcom {
        self.fitted
    }

    /// The static model the estimator started from.
    pub fn static_model(&self) -> PolyEcom {
        self.static_model
    }

    /// Total samples absorbed.
    pub fn samples(&self) -> u64 {
        self.points.iter().map(|(_, s)| s.welford.count()).sum()
    }

    /// Relative deviation of the fitted model from the static one at the
    /// dominant pair (0 until the first refit).
    pub fn drift(&self) -> f64 {
        let stat = self.static_at_dominant();
        match stat {
            Some((stat, fit)) => (fit - stat).abs() / stat,
            None => 0.0,
        }
    }

    /// Signed drift factor `fitted / static` at the dominant pair
    /// (`1.0` until observations arrive or when the static model is
    /// non-positive) — the γ that `ecom_in_up` / `ecom_in_down` margins
    /// bound.
    pub fn factor(&self) -> f64 {
        match self.static_at_dominant() {
            Some((stat, fit)) => fit / stat,
            None => 1.0,
        }
    }

    /// `(static, fitted)` evaluated at the dominant pair, when positive.
    fn static_at_dominant(&self) -> Option<(f64, f64)> {
        let ((ps, pr), _) = self
            .points
            .iter()
            .max_by(|a, b| {
                a.1.decayed
                    .effective_weight()
                    .total_cmp(&b.1.decayed.effective_weight())
            })
            .map(|(k, s)| (*k, s))?;
        let stat = self.static_model.eval(ps, pr);
        if stat.is_finite() && stat > 0.0 {
            Some((stat, self.fitted.eval(ps, pr)))
        } else {
            None
        }
    }
}

/// The full online model of a pipeline: one [`StageEstimator`] per stage
/// and one [`EdgeEstimator`] per inter-stage edge.
#[derive(Clone, Debug)]
pub struct OnlineModel {
    stages: Vec<StageEstimator>,
    edges: Vec<EdgeEstimator>,
}

impl OnlineModel {
    /// Build from the static per-stage and per-edge models.
    pub fn new(stage_models: &[PolyUnary], edge_models: &[PolyEcom], cfg: OnlineConfig) -> Self {
        Self {
            stages: stage_models
                .iter()
                .map(|m| StageEstimator::new(*m, cfg))
                .collect(),
            edges: edge_models
                .iter()
                .map(|m| EdgeEstimator::new(*m, cfg))
                .collect(),
        }
    }

    /// Build for a pipeline whose static knowledge is just a measured
    /// service mean per stage (the executor case): the static model is
    /// the constant polynomial at that mean.
    pub fn from_service_means(means: &[Seconds], cfg: OnlineConfig) -> Self {
        let stages: Vec<PolyUnary> = means
            .iter()
            .map(|&m| PolyUnary::new(m.max(0.0), 0.0, 0.0))
            .collect();
        Self::new(&stages, &[], cfg)
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Absorb one stage service sample.
    pub fn observe_exec(&mut self, stage: usize, p: Procs, seconds: Seconds) {
        if let Some(e) = self.stages.get_mut(stage) {
            e.observe(p, seconds);
        }
    }

    /// Absorb one edge transfer sample (edge `i` joins stage `i` to
    /// stage `i + 1`).
    pub fn observe_ecom(&mut self, edge: usize, ps: Procs, pr: Procs, seconds: Seconds) {
        if let Some(e) = self.edges.get_mut(edge) {
            e.observe(ps, pr, seconds);
        }
    }

    /// Force a refit of every estimator (they also refit themselves
    /// every `refit_every` samples).
    pub fn refit(&mut self) {
        for e in &mut self.stages {
            e.refit();
        }
        for e in &mut self.edges {
            e.refit();
        }
    }

    /// The per-stage estimators.
    pub fn stages(&self) -> &[StageEstimator] {
        &self.stages
    }

    /// The per-edge estimators.
    pub fn edges(&self) -> &[EdgeEstimator] {
        &self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [1.0, 2.0, 4.0, 8.0, 16.0, 3.5];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), 6);
    }

    #[test]
    fn decayed_window_tracks_a_step_change() {
        let mut d = Decayed::new(8.0);
        for _ in 0..100 {
            d.push(1.0);
        }
        assert!((d.mean() - 1.0).abs() < 1e-9);
        // Step to 3.0: after a few half-lives the old level is gone.
        for _ in 0..40 {
            d.push(3.0);
        }
        assert!((d.mean() - 3.0).abs() < 0.1, "mean {}", d.mean());
        // The all-time Welford over the same stream would still sit
        // near 1.57 — that is exactly why the decayed window exists.
    }

    #[test]
    fn full_refit_recovers_coefficients_from_three_counts() {
        let truth = PolyUnary::new(0.02, 1.5, 0.001);
        // Start from a deliberately wrong static model.
        let mut est = StageEstimator::new(
            PolyUnary::new(1.0, 1.0, 1.0),
            OnlineConfig {
                refit_every: 1_000_000, // manual refit below
                ..OnlineConfig::default()
            },
        );
        for p in [1usize, 4, 16] {
            for _ in 0..8 {
                est.observe(p, truth.eval(p));
            }
        }
        est.refit();
        for p in [1usize, 2, 4, 8, 16] {
            let rel = (est.fitted().eval(p) - truth.eval(p)).abs() / truth.eval(p);
            assert!(rel < 0.05, "p={p}: fitted {:?}", est.fitted());
        }
    }

    #[test]
    fn scale_refit_tracks_a_perturbation_at_fixed_p() {
        let static_model = PolyUnary::new(0.02, 1.5, 0.001);
        let g = 3.0; // the stage got 3x slower mid-stream
        let mut est = StageEstimator::new(
            static_model,
            OnlineConfig {
                half_life: 16.0,
                refit_every: 16,
                ..OnlineConfig::default()
            },
        );
        let p = 4usize;
        for _ in 0..64 {
            est.observe(p, static_model.eval(p));
        }
        for _ in 0..128 {
            est.observe(p, static_model.eval(p) * g);
        }
        let fitted = est.fitted();
        let want = static_model.eval(p) * g;
        let rel = (fitted.eval(p) - want).abs() / want;
        assert!(rel < 0.10, "fitted {:?} want {want}", fitted);
        // Uniform scaling: every coefficient moved by ~g.
        assert!((fitted.c2 / static_model.c2 - g).abs() / g < 0.10);
        let snap = est.snapshot().unwrap();
        assert!(snap.drift > 1.5, "drift {}", snap.drift);
        // The signed factor tracks γ itself, not just its magnitude.
        assert!((snap.factor - g).abs() < 0.3, "factor {}", snap.factor);
        assert!(snap.fit_rel_err < 0.05, "fit err {}", snap.fit_rel_err);
        assert!(snap.confidence > 0.5, "confidence {}", snap.confidence);
    }

    #[test]
    fn snapshot_reports_quiet_stage_as_undrifted() {
        let static_model = PolyUnary::new(0.0, 2.0, 0.0);
        let mut est = StageEstimator::new(static_model, OnlineConfig::default());
        for _ in 0..100 {
            est.observe(8, static_model.eval(8));
        }
        let snap = est.snapshot().unwrap();
        assert!(snap.drift < 0.01, "drift {}", snap.drift);
        assert!((snap.factor - 1.0).abs() < 0.01, "factor {}", snap.factor);
        assert_eq!(snap.p, 8);
        assert_eq!(snap.samples, 100);
    }

    #[test]
    fn rejects_garbage_observations() {
        let mut est = StageEstimator::new(PolyUnary::new(1.0, 0.0, 0.0), OnlineConfig::default());
        est.observe(0, 1.0);
        est.observe(4, f64::NAN);
        est.observe(4, -1.0);
        assert_eq!(est.samples(), 0);
        assert!(est.snapshot().is_none());
    }

    #[test]
    fn edge_estimator_full_and_scale_refits() {
        let truth = PolyEcom::new(0.002, 0.08, 0.08, 0.0001, 0.0002);
        let mut est = EdgeEstimator::new(
            PolyEcom::new(1.0, 1.0, 1.0, 0.0, 0.0),
            OnlineConfig {
                refit_every: 1_000_000,
                ..OnlineConfig::default()
            },
        );
        for (ps, pr) in [(1usize, 1usize), (2, 4), (4, 2), (8, 8), (16, 4)] {
            for _ in 0..8 {
                est.observe(ps, pr, truth.eval(ps, pr));
            }
        }
        est.refit();
        for (ps, pr) in [(2usize, 2usize), (8, 4), (16, 16)] {
            let want = truth.eval(ps, pr);
            let got = est.fitted().eval(ps, pr);
            assert!(
                (got - want).abs() / want < 0.05,
                "({ps},{pr}): {got} vs {want}"
            );
        }

        // Single-pair stream: scale refit.
        let static_model = PolyEcom::new(0.002, 0.08, 0.08, 0.0, 0.0);
        let mut est = EdgeEstimator::new(
            static_model,
            OnlineConfig {
                half_life: 16.0,
                refit_every: 16,
                ..OnlineConfig::default()
            },
        );
        for _ in 0..64 {
            est.observe(4, 4, static_model.eval(4, 4) * 2.0);
        }
        let rel = (est.fitted().eval(4, 4) - static_model.eval(4, 4) * 2.0).abs()
            / static_model.eval(4, 4);
        assert!(rel < 0.2, "fitted {:?}", est.fitted());
        assert!(est.drift() > 0.5);
        assert!(
            (est.factor() - 2.0).abs() < 0.4,
            "factor {} should sit near the 2x perturbation",
            est.factor()
        );
    }

    #[test]
    fn online_model_routes_samples_and_refits() {
        let statics = [PolyUnary::new(0.0, 1.0, 0.0), PolyUnary::new(0.0, 2.0, 0.0)];
        let mut model = OnlineModel::new(
            &statics,
            &[],
            OnlineConfig {
                half_life: 8.0,
                refit_every: 8,
                ..OnlineConfig::default()
            },
        );
        for _ in 0..32 {
            model.observe_exec(0, 2, 0.5);
            model.observe_exec(1, 2, 4.0); // 4x the static prediction of 1.0
        }
        model.refit();
        let snap0 = model.stages()[0].snapshot().unwrap();
        let snap1 = model.stages()[1].snapshot().unwrap();
        assert!(snap0.drift < 0.01, "{snap0:?}");
        assert!((snap1.fitted.eval(2) - 4.0).abs() < 0.2, "{snap1:?}");
        assert!(snap1.drift > 2.0, "{snap1:?}");
        // Out-of-range stage indices are ignored, not a panic.
        model.observe_exec(9, 2, 1.0);
    }

    #[test]
    fn from_service_means_builds_constant_statics() {
        let model = OnlineModel::from_service_means(&[0.25, 0.5], OnlineConfig::default());
        assert_eq!(model.num_stages(), 2);
        assert_eq!(
            model.stages()[0].static_model(),
            PolyUnary::new(0.25, 0.0, 0.0)
        );
        assert!((model.stages()[1].static_model().eval(7) - 0.5).abs() < 1e-12);
    }
}
