//! Per-process resource sampling from `/proc` (Linux).
//!
//! The telemetry plane ships each worker's CPU time, resident set, and
//! context-switch counts alongside its metrics so the parent (and
//! `pipemap top`) can tell a *busy* worker from a *starved* one without
//! instrumenting every code path. Parsing sticks to the two stable
//! files:
//!
//! * `/proc/self/stat` — utime/stime in clock ticks (fields 14/15,
//!   counted after the comm field, which is why parsing starts at the
//!   last `)` — comm may itself contain spaces and parentheses);
//! * `/proc/self/status` — `VmRSS`, `voluntary_ctxt_switches`,
//!   `nonvoluntary_ctxt_switches`.
//!
//! On non-Linux hosts (or a masked `/proc`) sampling returns `None`
//! and the telemetry plane simply omits the resource gauges.

use std::fs;
use std::time::Instant;

/// Kernel USER_HZ. Linux fixes the value reported through `/proc` at
/// 100 regardless of the scheduler tick; reading it properly needs
/// `sysconf(_SC_CLK_TCK)`, which std does not expose, and the
/// workspace takes no libc dependency.
pub const CLK_TCK: f64 = 100.0;

/// One point-in-time reading of a process's resource usage.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResourceSample {
    /// User-mode CPU time, in clock ticks (`1/CLK_TCK` seconds each).
    pub utime_ticks: u64,
    /// Kernel-mode CPU time, in clock ticks.
    pub stime_ticks: u64,
    /// Resident set size, bytes.
    pub rss_bytes: u64,
    /// Voluntary context switches (blocked on I/O or a queue).
    pub vol_ctx: u64,
    /// Involuntary context switches (preempted while runnable).
    pub invol_ctx: u64,
}

impl ResourceSample {
    /// Total CPU seconds (user + system) this process has consumed.
    pub fn cpu_s(&self) -> f64 {
        (self.utime_ticks + self.stime_ticks) as f64 / CLK_TCK
    }
}

/// Sample the calling process. `None` when `/proc` is unavailable or
/// unparseable (non-Linux, masked proc, hardened container).
pub fn sample_self() -> Option<ResourceSample> {
    let stat = fs::read_to_string("/proc/self/stat").ok()?;
    let status = fs::read_to_string("/proc/self/status").ok()?;
    parse(&stat, &status)
}

fn parse(stat: &str, status: &str) -> Option<ResourceSample> {
    // Fields after the comm: `... ) S ppid pgrp session tty tpgid flags
    // minflt cminflt majflt cmajflt utime stime ...` — utime is the
    // 12th and stime the 13th space-separated field after ")".
    let after_comm = &stat[stat.rfind(')')? + 1..];
    let mut fields = after_comm.split_ascii_whitespace();
    let utime_ticks: u64 = fields.nth(11)?.parse().ok()?;
    let stime_ticks: u64 = fields.next()?.parse().ok()?;

    let mut rss_bytes = 0u64;
    let mut vol_ctx = 0u64;
    let mut invol_ctx = 0u64;
    for line in status.lines() {
        let field =
            |line: &str| -> Option<u64> { line.split_ascii_whitespace().nth(1)?.parse().ok() };
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            // "VmRSS:   12345 kB"
            rss_bytes = rest
                .split_ascii_whitespace()
                .next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0)
                * 1024;
        } else if line.starts_with("voluntary_ctxt_switches:") {
            vol_ctx = field(line).unwrap_or(0);
        } else if line.starts_with("nonvoluntary_ctxt_switches:") {
            invol_ctx = field(line).unwrap_or(0);
        }
    }
    Some(ResourceSample {
        utime_ticks,
        stime_ticks,
        rss_bytes,
        vol_ctx,
        invol_ctx,
    })
}

/// Derives CPU% between successive samples: `Δcpu_s / Δwall_s · 100`.
/// The first call establishes the baseline and reports 0.
#[derive(Debug)]
pub struct CpuTracker {
    prev: Option<(Instant, f64)>,
}

impl Default for CpuTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl CpuTracker {
    /// A tracker with no baseline yet.
    pub fn new() -> Self {
        Self { prev: None }
    }

    /// CPU utilisation (percent of one core; >100 means multiple
    /// cores) since the previous call, given a fresh sample.
    pub fn cpu_pct(&mut self, sample: &ResourceSample) -> f64 {
        let now = Instant::now();
        let cpu_s = sample.cpu_s();
        let pct = match self.prev {
            Some((t0, cpu0)) => {
                let wall = now.duration_since(t0).as_secs_f64();
                if wall > 0.0 {
                    ((cpu_s - cpu0) / wall * 100.0).max(0.0)
                } else {
                    0.0
                }
            }
            None => 0.0,
        };
        self.prev = Some((now, cpu_s));
        pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_canonical_proc_files() {
        // A comm with spaces and a ")" — the documented trap.
        let stat = "1234 (pipe ma)p) R 1 1234 1234 0 -1 4194304 500 0 0 0 \
                    250 125 0 0 20 0 4 0 100000 200000000 3000 \
                    18446744073709551615 1 1 0 0 0 0 0 0 0 0 0 0 17 3 0 0";
        let status = "Name:\tpipemap-worker\nVmRSS:\t  14336 kB\n\
                      voluntary_ctxt_switches:\t42\n\
                      nonvoluntary_ctxt_switches:\t7\n";
        let s = parse(stat, status).expect("parses");
        assert_eq!(s.utime_ticks, 250);
        assert_eq!(s.stime_ticks, 125);
        assert_eq!(s.rss_bytes, 14336 * 1024);
        assert_eq!(s.vol_ctx, 42);
        assert_eq!(s.invol_ctx, 7);
        assert!((s.cpu_s() - 3.75).abs() < 1e-12);
    }

    #[test]
    fn self_sample_is_plausible_on_linux() {
        if let Some(s) = sample_self() {
            // The test itself has run, so the process has an RSS and
            // has consumed at least zero ticks.
            assert!(s.rss_bytes > 0, "test process has resident memory");
            let again = sample_self().expect("second sample");
            assert!(again.utime_ticks >= s.utime_ticks);
            assert!(again.vol_ctx >= s.vol_ctx);
        }
        // No /proc (non-Linux): None is the contract, nothing to check.
    }

    #[test]
    fn cpu_tracker_baselines_then_derives() {
        let mut t = CpuTracker::new();
        let s0 = ResourceSample {
            utime_ticks: 100,
            ..Default::default()
        };
        assert_eq!(t.cpu_pct(&s0), 0.0, "first call is the baseline");
        // Busy-wait a little so wall time advances, then report 50
        // more ticks (0.5 CPU-seconds).
        let start = Instant::now();
        while start.elapsed().as_micros() < 2_000 {}
        let s1 = ResourceSample {
            utime_ticks: 150,
            ..Default::default()
        };
        let pct = t.cpu_pct(&s1);
        assert!(pct > 0.0, "ticks advanced, so utilisation is positive");
    }

    #[test]
    fn malformed_proc_content_is_rejected() {
        assert_eq!(parse("no closing paren", "x"), None);
        assert_eq!(parse("1 (c) R 1 2", "short"), None);
    }
}
