//! Execution-style profiling: the paper's "8 executions".
//!
//! §5 derives every model parameter "by analyzing the profile information
//! from a set of executions" — each training run executes the *whole
//! program* under one task-parallel assignment, and per-task timers yield
//! one sample of every `f_exec_i` and every `f_ecom_e` simultaneously.
//! That is stricter than sampling each cost function independently (as
//! [`crate::training::profile_chain`] does): eight runs really do mean
//! eight samples per function, and the sender/receiver counts of an
//! edge's samples are tied to the assignments actually run.
//!
//! The training assignments are staggered so that eight runs cover the
//! processor range for every task *and* give each edge asymmetric
//! `(ps, pr)` pairs with distinct products — the condition under which
//! the five-term communication model is identifiable (see
//! `TrainingConfig::for_procs`).

use pipemap_chain::{Assignment, ChainBuilder, Edge, Problem, Task, TaskChain};
use pipemap_model::{Procs, Seconds};
use pipemap_sim::NoiseModel;

use crate::fit::{fit_ecom, fit_unary, FitOptions};
use crate::training::{default_training_procs, ProfileData};

/// The training assignments: even-numbered runs are *uniform* (every
/// task at the same count — these sample the near-diagonal region of
/// every `f_ecom`, which is where real mappings operate), odd-numbered
/// runs are *staggered* in alternating directions (ascending
/// `base[(i + j) mod n]` and descending `base[(n + j − i) mod n]`), so
/// each edge sees asymmetric pairs in **both** orientations — needed to
/// pin down communication costs whose send and receive sides differ,
/// like a `max(send, recv)` transfer.
pub fn training_assignments(chain_len: usize, max_p: Procs) -> Vec<Assignment> {
    let base = default_training_procs(max_p);
    let n = base.len();
    (0..n)
        .map(|j| {
            Assignment(
                (0..chain_len)
                    .map(|i| {
                        if j % 2 == 0 {
                            base[j]
                        } else if j % 4 == 1 {
                            base[(i + j) % n]
                        } else {
                            base[(n + j - (i % n)) % n]
                        }
                    })
                    .collect(),
            )
        })
        .collect()
}

/// One profiled execution: the per-task and per-edge timings observed
/// when the chain runs under `assignment`.
#[derive(Clone, Debug)]
pub struct ExecutionProfile {
    /// The assignment that was run.
    pub assignment: Assignment,
    /// `exec[i]` — task `i`'s execution time at `assignment.procs(i)`.
    pub exec: Vec<Seconds>,
    /// `ecom[e]` — edge `e`'s transfer time at the endpoint counts.
    pub ecom: Vec<Seconds>,
    /// `icom[e]` — edge `e`'s redistribution time measured on the
    /// *union* group (profiled from a co-located variant of the run,
    /// as the Fx tool instruments redistributions separately).
    pub icom: Vec<Seconds>,
}

/// Run (i.e. evaluate the ground-truth costs of) one training execution.
pub fn run_execution(
    chain: &TaskChain,
    assignment: &Assignment,
    noise: &mut Option<NoiseModel>,
) -> ExecutionProfile {
    let mut measure = |t: Seconds| -> Seconds {
        match noise.as_mut() {
            Some(n) => n.perturb(t),
            None => t,
        }
    };
    let k = chain.len();
    let exec = (0..k)
        .map(|i| measure(chain.task(i).exec.eval(assignment.procs(i))))
        .collect();
    let ecom = (0..k.saturating_sub(1))
        .map(|e| {
            measure(
                chain
                    .edge(e)
                    .ecom
                    .eval(assignment.procs(e), assignment.procs(e + 1)),
            )
        })
        .collect();
    let icom = (0..k.saturating_sub(1))
        .map(|e| {
            // The redistribution is profiled on the group the two tasks
            // would share if co-located: the union of their allocations.
            let union = assignment.procs(e) + assignment.procs(e + 1);
            measure(chain.edge(e).icom.eval(union))
        })
        .collect();
    ExecutionProfile {
        assignment: assignment.clone(),
        exec,
        ecom,
        icom,
    }
}

/// Collect the samples of a set of executions into per-function sample
/// lists (the shape the fitting routines consume).
pub fn collect_profiles(chain: &TaskChain, profiles: &[ExecutionProfile]) -> ProfileData {
    let k = chain.len();
    let mut exec = vec![Vec::new(); k];
    let mut icom = vec![Vec::new(); k.saturating_sub(1)];
    let mut ecom = vec![Vec::new(); k.saturating_sub(1)];
    for p in profiles {
        for (i, samples) in exec.iter_mut().enumerate() {
            samples.push((p.assignment.procs(i), p.exec[i]));
        }
        for e in 0..k.saturating_sub(1) {
            let union = p.assignment.procs(e) + p.assignment.procs(e + 1);
            icom[e].push((union, p.icom[e]));
            ecom[e].push((
                (p.assignment.procs(e), p.assignment.procs(e + 1)),
                p.ecom[e],
            ));
        }
    }
    ProfileData { exec, icom, ecom }
}

/// Profile a problem with the paper's methodology — `runs` whole-program
/// executions under staggered assignments — and fit its polynomial twin.
pub fn fit_problem_from_executions(
    problem: &Problem,
    noise: Option<(f64, u64)>,
    options: FitOptions,
) -> Problem {
    let chain = &problem.chain;
    let assignments = training_assignments(chain.len(), problem.total_procs);
    let mut noise_model = noise.map(|(s, seed)| NoiseModel::new(s, seed));
    let profiles: Vec<ExecutionProfile> = assignments
        .iter()
        .map(|a| run_execution(chain, a, &mut noise_model))
        .collect();
    let data = collect_profiles(chain, &profiles);

    let mut builder = ChainBuilder::new();
    for i in 0..chain.len() {
        let fit = fit_unary(&data.exec[i], options);
        let src = chain.task(i);
        let mut task = Task::new(src.name.clone(), fit.model).with_memory(src.memory);
        if !src.replicable {
            task = task.not_replicable();
        }
        if let Some(m) = src.min_procs {
            task = task.with_min_procs(m);
        }
        builder = builder.task(task);
        if i + 1 < chain.len() {
            let ic = fit_unary(&data.icom[i], options);
            let ec = fit_ecom(&data.ecom[i], options);
            builder = builder.edge(Edge::new(ic.model, ec.model));
        }
    }
    let mut fitted = Problem::new(builder.build(), problem.total_procs, problem.mem_per_proc);
    fitted.replication = problem.replication;
    fitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::model_accuracy;
    use pipemap_model::{PolyEcom, PolyUnary};

    fn poly_chain() -> TaskChain {
        ChainBuilder::new()
            .task(Task::new("a", PolyUnary::new(0.2, 6.0, 0.01)))
            .edge(Edge::new(
                PolyUnary::new(0.05, 0.5, 0.001),
                PolyEcom::new(0.1, 1.0, 1.5, 0.005, 0.004),
            ))
            .task(Task::new("b", PolyUnary::new(0.1, 9.0, 0.02)))
            .edge(Edge::new(
                PolyUnary::new(0.02, 0.8, 0.0),
                PolyEcom::new(0.05, 2.0, 0.5, 0.002, 0.006),
            ))
            .task(Task::new("c", PolyUnary::new(0.3, 3.0, 0.005)))
            .build()
    }

    #[test]
    fn eight_mixed_assignments() {
        let a = training_assignments(3, 64);
        assert_eq!(a.len(), 8, "the paper's eight executions");
        // Every task sees a good spread of counts across the runs.
        for i in 0..3 {
            let mut counts: Vec<usize> = a.iter().map(|x| x.procs(i)).collect();
            counts.sort_unstable();
            counts.dedup();
            // Four-plus distinct counts identify the 3-term unary model;
            // parity of the stagger means odd-indexed tasks revisit the
            // uniform runs' counts.
            assert!(counts.len() >= 4, "task {i} sees only {counts:?}");
        }
        // Even runs are uniform (diagonal pairs), odd runs staggered
        // (asymmetric pairs).
        for (j, run) in a.iter().enumerate() {
            if j % 2 == 0 {
                assert_eq!(run.procs(0), run.procs(1));
                assert_eq!(run.procs(1), run.procs(2));
            } else {
                assert_ne!(run.procs(0), run.procs(1));
                assert_ne!(run.procs(1), run.procs(2));
            }
        }
        // Edge products vary across runs (identifiability), including
        // between the asymmetric runs alone.
        let asym_products: std::collections::HashSet<usize> = a
            .iter()
            .enumerate()
            .filter(|(j, _)| j % 2 == 1)
            .map(|(_, r)| r.procs(0) * r.procs(1))
            .collect();
        assert!(asym_products.len() >= 2, "need distinct (ps·pr) products");
    }

    #[test]
    fn executions_recover_polynomial_models() {
        let chain = poly_chain();
        let problem = Problem::new(chain.clone(), 64, 1e12);
        let fitted = fit_problem_from_executions(&problem, None, FitOptions::default());
        let acc = model_accuracy(&chain, &fitted.chain, 64);
        assert!(
            acc.mean_rel_error < 0.02,
            "execution-profiled fit should be near exact: {acc:?}"
        );
    }

    #[test]
    fn noisy_executions_stay_close() {
        let chain = poly_chain();
        let problem = Problem::new(chain.clone(), 64, 1e12);
        let fitted = fit_problem_from_executions(&problem, Some((0.04, 3)), FitOptions::default());
        let acc = model_accuracy(&chain, &fitted.chain, 64);
        assert!(acc.mean_rel_error < 0.15, "{acc:?}");
    }

    #[test]
    fn profile_counts_are_exactly_the_run_count() {
        let chain = poly_chain();
        let assignments = training_assignments(3, 16);
        let profiles: Vec<ExecutionProfile> = assignments
            .iter()
            .map(|a| run_execution(&chain, a, &mut None))
            .collect();
        let data = collect_profiles(&chain, &profiles);
        for samples in &data.exec {
            assert_eq!(samples.len(), assignments.len());
        }
        for samples in &data.ecom {
            assert_eq!(samples.len(), assignments.len());
        }
    }
}
