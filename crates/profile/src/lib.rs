//! # pipemap-profile
//!
//! Estimation of execution behaviour (§5 of the paper): derive the
//! polynomial cost models
//!
//! ```text
//! f_exec(p)      = C1 + C2/p + C3·p
//! f_icom(p)      = C1 + C2/p + C3·p
//! f_ecom(ps, pr) = C1 + C2/ps + C3/pr + C4·ps + C5·pr
//! ```
//!
//! automatically from profiled executions. The paper computes all model
//! parameters from eight training runs; [`training`] mirrors that with a
//! configurable set of sample processor counts, collects (optionally
//! noisy) timings from the ground-truth cost functions, and [`fit`] solves
//! the least-squares problems — with a non-negativity refinement, since a
//! negative coefficient can predict negative times and derail the
//! optimiser. [`linalg`] is the small dense solver underneath (normal
//! equations with partial-pivot Gaussian elimination); no external linear
//! algebra dependency is used.

pub mod calibrate;
pub mod executions;
pub mod fit;
pub mod linalg;
pub mod online;
pub mod resource;
pub mod training;

pub use calibrate::{CalibrationSample, TransportCalibration, CALIBRATION_SCHEMA};
pub use executions::{
    collect_profiles, fit_problem_from_executions, run_execution, training_assignments,
    ExecutionProfile,
};
pub use fit::{fit_ecom, fit_unary, FitOptions, FitReport};
pub use linalg::{least_squares, solve_linear};
pub use online::{
    Decayed, EdgeEstimator, EstimatorSnapshot, OnlineConfig, OnlineModel, StageEstimator, Welford,
};
pub use resource::{sample_self, CpuTracker, ResourceSample};
pub use training::{
    default_training_procs, fit_chain, model_accuracy, profile_chain, AccuracyReport, ProfileData,
    TrainingConfig,
};
