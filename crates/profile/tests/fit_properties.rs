//! Property tests of the fitting pipeline: exact recovery of in-family
//! models, non-negativity, and sanity of the produced predictions.

use pipemap_model::{PolyEcom, PolyUnary};
use pipemap_profile::{fit_ecom, fit_unary, least_squares, solve_linear, FitOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn exact_polynomials_are_recovered(
        c1 in 0.0..5.0f64,
        c2 in 0.0..20.0f64,
        c3 in 0.0..1.0f64,
    ) {
        let truth = PolyUnary::new(c1, c2, c3);
        let samples: Vec<(usize, f64)> = [1, 2, 3, 4, 8, 16, 32, 64]
            .iter()
            .map(|&p| (p, truth.eval(p)))
            .collect();
        let fit = fit_unary(&samples, FitOptions::default());
        for p in 1..=64 {
            let (t, f) = (truth.eval(p), fit.model.eval(p));
            prop_assert!(
                (t - f).abs() <= 1e-6 * t.abs().max(1e-9),
                "p={p}: truth {t} vs fit {f} (model {:?})",
                fit.model
            );
        }
    }

    #[test]
    fn exact_ecom_polynomials_are_recovered(
        c in (0.0..2.0f64, 0.0..8.0f64, 0.0..8.0f64, 0.0..0.2f64, 0.0..0.2f64),
    ) {
        let truth = PolyEcom::new(c.0, c.1, c.2, c.3, c.4);
        // Two skewed pairs with different products keep the design full
        // rank (see TrainingConfig).
        // Note: the two symmetric skewed pairs must have *different*
        // products (2·16 = 32 vs 2·4 = 8), or the design has a null
        // vector coupling the 1/p and p columns with ratio −(s·r).
        let pairs = [
            (1, 1), (2, 2), (4, 4), (8, 8), (16, 16),
            (2, 16), (16, 2), (2, 4), (4, 2),
        ];
        let samples: Vec<((usize, usize), f64)> =
            pairs.iter().map(|&(s, r)| ((s, r), truth.eval(s, r))).collect();
        let fit = fit_ecom(&samples, FitOptions::default());
        for &(s, r) in &pairs {
            let (t, f) = (truth.eval(s, r), fit.model.eval(s, r));
            prop_assert!((t - f).abs() <= 1e-6 * t.abs().max(1e-9));
        }
    }

    #[test]
    fn fitted_models_never_predict_negative_times(
        samples in prop::collection::vec((1..64usize, 0.0..10.0f64), 3..10),
    ) {
        let fit = fit_unary(&samples, FitOptions::default());
        for p in 1..=256 {
            prop_assert!(fit.model.eval(p) >= -1e-12, "negative prediction at p={p}");
        }
    }

    #[test]
    fn noise_bounded_fit_error(
        c1 in 0.1..2.0f64,
        c2 in 1.0..20.0f64,
        seed_vals in prop::collection::vec(-0.02..0.02f64, 8),
    ) {
        // ±2% multiplicative perturbation on an in-family model: the fit
        // must stay within a small multiple of the noise.
        let truth = PolyUnary::new(c1, c2, 0.0);
        let samples: Vec<(usize, f64)> = [1usize, 2, 3, 4, 8, 16, 32, 64]
            .iter()
            .zip(&seed_vals)
            .map(|(&p, &n)| (p, truth.eval(p) * (1.0 + n)))
            .collect();
        let fit = fit_unary(&samples, FitOptions::default());
        for p in 1..=64 {
            let rel = (fit.model.eval(p) - truth.eval(p)).abs() / truth.eval(p);
            prop_assert!(rel < 0.10, "rel error {rel} at p={p}");
        }
    }

    #[test]
    fn linear_solver_roundtrips(
        x in prop::collection::vec(-10.0..10.0f64, 3),
        m in prop::collection::vec(-5.0..5.0f64, 9),
    ) {
        // b = Mx; solving must recover x when M is non-singular.
        let n = 3;
        let b: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| m[i * n + j] * x[j]).sum())
            .collect();
        if let Some(sol) = solve_linear(&m, &b, n) {
            // Verify the residual rather than x (M may be near-singular).
            for i in 0..n {
                let ri: f64 = (0..n).map(|j| m[i * n + j] * sol[j]).sum::<f64>() - b[i];
                prop_assert!(ri.abs() < 1e-6, "residual {ri} in row {i}");
            }
        }
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_columns(
        design_rows in prop::collection::vec((1.0..10.0f64,), 4..10),
        ys in prop::collection::vec(0.0..10.0f64, 10),
    ) {
        // Design: [1, x]; LS residual must be orthogonal to both columns.
        let rows = design_rows.len();
        let mut design = Vec::new();
        let mut y = Vec::new();
        for (i, (x,)) in design_rows.iter().enumerate() {
            design.extend([1.0, *x]);
            y.push(ys[i % ys.len()]);
        }
        if let Some(c) = least_squares(&design, &y, rows, 2) {
            let mut dot0 = 0.0;
            let mut dot1 = 0.0;
            for r in 0..rows {
                let pred = c[0] + c[1] * design[r * 2 + 1];
                let res = y[r] - pred;
                dot0 += res;
                dot1 += res * design[r * 2 + 1];
            }
            prop_assert!(dot0.abs() < 1e-5, "residual not orthogonal to 1s: {dot0}");
            prop_assert!(dot1.abs() < 1e-4, "residual not orthogonal to x: {dot1}");
        }
    }
}
